"""Reproduction of "Cashmere: Heterogeneous Many-Core Computing" (IPDPS 2015).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.sim` — discrete-event simulation substrate,
* :mod:`repro.cluster` — the simulated DAS-4,
* :mod:`repro.devices` — the seven many-core devices and their models,
* :mod:`repro.mcl` — Many-Core Levels (HDL, MCPL, compiler, kernels),
* :mod:`repro.satin` — the divide-and-conquer runtime,
* :mod:`repro.core` — Cashmere (the paper's contribution),
* :mod:`repro.apps` — the four evaluation applications,
* :mod:`repro.experiments` — runners for every table and figure.
"""

__version__ = "1.0.0"

from .apps import KMeansApp, MatmulApp, NBodyApp, RaytracerApp  # noqa: F401
from .apps.base import run_cashmere, run_satin  # noqa: F401
from .cluster import (  # noqa: F401
    ClusterConfig,
    SimCluster,
    gtx480_cluster,
    heterogeneous_kmeans,
    heterogeneous_nbody,
    heterogeneous_small,
    satin_cpu_cluster,
)
from .core import Cashmere, CashmereConfig, CashmereRuntime, MCL  # noqa: F401
from .mcl import KernelLibrary  # noqa: F401
from .satin import DivideConquerApp, RuntimeConfig, SatinRuntime  # noqa: F401

__all__ = [
    "__version__",
    "run_cashmere",
    "run_satin",
    "CashmereRuntime",
    "CashmereConfig",
    "Cashmere",
    "MCL",
    "SatinRuntime",
    "RuntimeConfig",
    "DivideConquerApp",
    "KernelLibrary",
    "SimCluster",
    "ClusterConfig",
    "gtx480_cluster",
    "satin_cpu_cluster",
    "heterogeneous_small",
    "heterogeneous_kmeans",
    "heterogeneous_nbody",
    "MatmulApp",
    "KMeansApp",
    "NBodyApp",
    "RaytracerApp",
]
