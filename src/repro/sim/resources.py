"""Shared-resource primitives for the simulation engine.

These model contention: a :class:`Resource` is a set of interchangeable
slots (e.g. CPU cores, DMA engines), a :class:`Store` is a FIFO buffer of
items (e.g. a device's job queue), and a :class:`Container` holds a
continuous amount (e.g. device memory in bytes).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .engine import _PENDING, Environment, Event, SimulationError

__all__ = ["Resource", "Store", "PriorityStore", "Container"]


class _Request(Event):
    """A pending claim on a resource slot; usable as a context manager."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        # Inlined Event.__init__ — one _Request per cpu_delay/NIC claim
        # makes this one of the hottest allocations of a run.
        env = resource.env
        self.env = env
        pool = env._cb_pool
        self.callbacks = pool.pop() if pool else []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        # Uncontended grant inline (what _trigger would do, minus the
        # queue round-trip) — the common case for CPU cores and NICs.
        if len(resource._users) < resource.capacity and not resource._queue:
            resource._users.append(self)
            self.succeed(self)
        else:
            resource._queue.append(self)

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Resource:
    """``capacity`` interchangeable slots granted in FIFO order."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: List[_Request] = []
        # deque: grants pop from the left on every release; a list's
        # pop(0) is O(waiters) and CPU cores queue deeply under load
        self._queue: Deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> _Request:
        return _Request(self)

    def release(self, request: _Request) -> None:
        try:
            self._users.remove(request)
        except ValueError:
            request.cancel()
        self._trigger()

    def _trigger(self) -> None:
        users = self._users
        queue = self._queue
        capacity = self.capacity
        while queue and len(users) < capacity:
            req = queue.popleft()
            users.append(req)
            req.succeed(req)


class _StoreGet(Event):
    __slots__ = ("filt", "env_store")

    def __init__(self, store: "Store", filt: Optional[Callable[[Any], bool]] = None):
        env = store.env
        self.env = env
        pool = env._cb_pool
        self.callbacks = pool.pop() if pool else []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.filt = filt
        store._getters.append(self)
        store._trigger()

    def cancel(self) -> None:
        if self in self.env_store._getters:  # pragma: no cover - defensive
            self.env_store._getters.remove(self)


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        env = store.env
        self.env = env
        pool = env._cb_pool
        self.callbacks = pool.pop() if pool else []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.item = item
        store._putters.append(self)
        store._trigger()


class Store:
    """FIFO item buffer with optional capacity and filtered gets."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List[_StoreGet] = []
        self._putters: Deque[_StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> _StorePut:
        return _StorePut(self, item)

    def get(self, filt: Optional[Callable[[Any], bool]] = None) -> _StoreGet:
        """Get the first item (matching ``filt`` if given)."""
        ev = _StoreGet(self, filt)
        ev.env_store = self
        return ev

    def cancel_get(self, ev: _StoreGet) -> None:
        if ev in self._getters:
            self._getters.remove(ev)

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def put_nowait(self, item: Any) -> None:
        """Insert ``item`` synchronously, with no queue event.

        Valid only when the store has room and no queued putters — callers
        (the network delivery fast path) check both.  Waiting getters are
        satisfied exactly as a queued :meth:`put` would have, in the same
        order, just without the intermediate ``_StorePut`` event.
        """
        self._insert(item)
        if self._getters:
            self._trigger()

    def _trigger(self) -> None:
        items = self.items
        putters = self._putters
        getters = self._getters
        if not putters:
            # Fast paths for the common shapes: nothing to match, or one
            # waiting getter and an item for it.  Grant order and filter
            # semantics are exactly the general loop's below.
            if not items or not getters:
                return
            if len(getters) == 1:
                get = getters[0]
                filt = get.filt
                if filt is None:
                    del getters[0]
                    get.succeed(items.pop(0))
                    return
                for item in items:
                    if filt(item):
                        del getters[0]
                        items.remove(item)
                        get.succeed(item)
                        return
                return
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while putters and len(items) < self.capacity:
                put = putters.popleft()
                self._insert(put.item)
                put.succeed()
                progress = True
            # Satisfy getters (no matches are possible while empty).
            if not items or not getters:
                continue
            for get in list(getters):
                matched = None
                if get.filt is None:
                    if items:
                        matched = items[0]
                else:
                    for item in items:
                        if get.filt(item):
                            matched = item
                            break
                if matched is not None:
                    items.remove(matched)
                    getters.remove(get)
                    get.succeed(matched)
                    progress = True


class PriorityStore(Store):
    """Store whose items come out lowest-key first.

    Items must be orderable, or a ``key`` function must be supplied.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 key: Optional[Callable[[Any], Any]] = None):
        super().__init__(env, capacity)
        self._key = key

    def _insert(self, item: Any) -> None:
        self.items.append(item)
        self.items.sort(key=self._key)


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.amount = amount
        container._getters.append(self)
        container._trigger()


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.amount = amount
        container._putters.append(self)
        container._trigger()


class Container:
    """A continuous quantity with blocking get/put (e.g. device memory)."""

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._getters: List[_ContainerGet] = []
        self._putters: List[_ContainerPut] = []

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> _ContainerGet:
        if amount < 0:
            raise SimulationError("negative get amount")
        return _ContainerGet(self, amount)

    def put(self, amount: float) -> _ContainerPut:
        if amount < 0:
            raise SimulationError("negative put amount")
        return _ContainerPut(self, amount)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            for put in list(self._putters):
                if self._level + put.amount <= self.capacity:
                    self._level += put.amount
                    self._putters.remove(put)
                    put.succeed()
                    progress = True
            for get in list(self._getters):
                if get.amount <= self._level:
                    self._level -= get.amount
                    self._getters.remove(get)
                    get.succeed(get.amount)
                    progress = True
