"""Cluster interconnect model.

Models a switched fabric (the DAS-4 uses QDR InfiniBand): every node owns a
full-duplex NIC.  Sending a message serializes it onto the sender's injection
link at the link bandwidth, the fabric adds a fixed latency, and the message
then lands in the receiver's mailbox.  Concurrent sends from one node queue
on its NIC; sends from different nodes proceed in parallel — this is what
produces the "skewed computation/communication ratio" the paper discusses
when fast many-core leaves meet a relatively slow network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, Optional

from .engine import Environment, SimulationError, Timeout
from .resources import Resource, Store

__all__ = ["NetworkSpec", "Message", "Network", "Endpoint", "QDR_INFINIBAND", "GIGABIT_ETHERNET"]


@dataclass(frozen=True)
class NetworkSpec:
    """Static parameters of an interconnect."""

    name: str
    bandwidth_bps: float  #: bytes per second on each injection link
    latency_s: float      #: one-way fabric latency in seconds
    per_message_overhead_s: float = 0.0  #: software/protocol overhead per message

    def transfer_time(self, nbytes: float) -> float:
        """Serialization + latency for one message of ``nbytes``."""
        return self.per_message_overhead_s + self.latency_s + nbytes / self.bandwidth_bps


#: QDR InfiniBand as on DAS-4: ~32 Gbit/s signal, ~3.2 GB/s effective
#: payload bandwidth and a few microseconds of latency; we add a modest
#: per-message software overhead for the (Java, in the paper) messaging layer.
QDR_INFINIBAND = NetworkSpec(
    name="qdr-infiniband",
    bandwidth_bps=3.2e9,
    latency_s=2.0e-6,
    per_message_overhead_s=15.0e-6,
)

#: A slower commodity network, used by ablation benches.
GIGABIT_ETHERNET = NetworkSpec(
    name="gigabit-ethernet",
    bandwidth_bps=118e6,
    latency_s=50e-6,
    per_message_overhead_s=60e-6,
)


@dataclass(slots=True)
class Message:
    """A message in flight or delivered.

    ``payload`` is an arbitrary Python object; ``nbytes`` is the size that is
    *charged* to the network (the model size of the data, which for simulated
    paper-scale runs is much larger than the in-memory payload).
    """

    src: int
    dst: int
    tag: str
    payload: Any = None
    nbytes: float = 0.0
    send_time: float = 0.0
    recv_time: float = 0.0


class Endpoint:
    """A node's attachment to the network: NIC plus mailbox."""

    def __init__(self, env: Environment, network: "Network", rank: int):
        self.env = env
        self.network = network
        self.rank = rank
        self.nic = Resource(env, capacity=1)
        self.mailbox: Store = Store(env)
        #: cumulative statistics
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.messages_sent = 0
        self.messages_received = 0

    def send(self, dst: int, tag: str, payload: Any = None, nbytes: float = 0.0) -> Generator:
        """Process: transmit a message to node ``dst`` (blocks the NIC)."""
        yield from self.network.transmit(self, dst, tag, payload, nbytes)

    def recv(self, tag: Optional[str] = None):
        """Event: receive the next message (optionally filtered by tag)."""
        if tag is None:
            return self.mailbox.get()
        return self.mailbox.get(lambda m: m.tag == tag)

    def recv_match(self, predicate):
        """Event: receive the next message matching an arbitrary predicate."""
        return self.mailbox.get(predicate)


class Network:
    """The fabric connecting all endpoints."""

    def __init__(self, env: Environment, spec: NetworkSpec):
        self.env = env
        self.spec = spec
        self.endpoints: Dict[int, Endpoint] = {}
        self.total_bytes = 0.0
        self.total_messages = 0

    def attach(self, rank: int) -> Endpoint:
        if rank in self.endpoints:
            raise SimulationError(f"rank {rank} already attached")
        ep = Endpoint(self.env, self, rank)
        self.endpoints[rank] = ep
        return ep

    def transmit(self, src_ep: Endpoint, dst: int, tag: str,
                 payload: Any, nbytes: float) -> Generator:
        """Process body implementing one message transfer."""
        if dst not in self.endpoints:
            raise SimulationError(f"no endpoint with rank {dst}")
        env = self.env
        spec = self.spec
        msg = Message(src=src_ep.rank, dst=dst, tag=tag, payload=payload,
                      nbytes=nbytes, send_time=env.now)
        # Hot path (one per protocol message): claim the NIC with an
        # explicit try/finally instead of the context-manager protocol,
        # and build Timeouts directly.  Event order is unchanged.
        nic = src_ep.nic
        req = yield nic.request()
        try:
            # Serialization occupies the sender's injection link.
            inject_start = env.now
            yield Timeout(env, spec.per_message_overhead_s
                          + nbytes / spec.bandwidth_bps)
        finally:
            nic.release(req)
        # Fabric latency does not occupy the NIC.
        yield Timeout(env, spec.latency_s)
        msg.recv_time = env.now
        src_ep.bytes_sent += nbytes
        src_ep.messages_sent += 1
        dst_ep = self.endpoints[dst]
        dst_ep.bytes_received += nbytes
        dst_ep.messages_received += 1
        self.total_bytes += nbytes
        self.total_messages += 1
        obs = env.obs
        if obs.enabled:
            # One interval per message on the sender's NIC lane: NIC
            # injection start to delivery (the paper's node<->node bars).
            obs.emit("send", node=src_ep.rank,
                     lane=f"node{src_ep.rank}/net",
                     start=inject_start, end=env.now,
                     label=tag, dst=dst, nbytes=nbytes)
        yield dst_ep.mailbox.put(msg)
        return msg

    def broadcast(self, src_ep: Endpoint, tag: str, payload: Any,
                  nbytes: float, ranks: Optional[Iterable[int]] = None) -> Generator:
        """Process: send to every (other) endpoint, serialized on the NIC.

        A flat broadcast matches the paper's master-to-slaves runtime-info
        broadcast at initialization; it is O(P) on the master's NIC, which is
        fine because it happens once.
        """
        targets = sorted(self.endpoints if ranks is None else ranks)
        for dst in targets:
            if dst == src_ep.rank:
                continue
            yield from self.transmit(src_ep, dst, tag, payload, nbytes)
