"""Cluster interconnect model.

Models a switched fabric (the DAS-4 uses QDR InfiniBand): every node owns a
full-duplex NIC.  Sending a message serializes it onto the sender's injection
link at the link bandwidth, the fabric adds a fixed latency, and the message
then lands in the receiver's mailbox.  Concurrent sends from one node queue
on its NIC; sends from different nodes proceed in parallel — this is what
produces the "skewed computation/communication ratio" the paper discusses
when fast many-core leaves meet a relatively slow network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, Optional

from .engine import Environment, Event, SimulationError, Timeout
from .resources import Resource, Store


def _exact(nbytes: float) -> Any:
    """Counter charge for a payload size: exact int when integral.

    Byte counters accumulate millions of terms; float accumulation loses
    integer exactness past 2**53.  Integral sizes (the only kind the stack
    produces) are charged as Python ints, whose sums are exact at any
    magnitude; non-integral sizes fall back to the float itself.
    """
    i = int(nbytes)
    return i if i == nbytes else nbytes

__all__ = ["NetworkSpec", "Message", "Network", "Endpoint", "QDR_INFINIBAND", "GIGABIT_ETHERNET"]


@dataclass(frozen=True)
class NetworkSpec:
    """Static parameters of an interconnect."""

    name: str
    bandwidth_bps: float  #: bytes per second on each injection link
    latency_s: float      #: one-way fabric latency in seconds
    per_message_overhead_s: float = 0.0  #: software/protocol overhead per message

    def transfer_time(self, nbytes: float) -> float:
        """Serialization + latency for one message of ``nbytes``."""
        return self.per_message_overhead_s + self.latency_s + nbytes / self.bandwidth_bps


#: QDR InfiniBand as on DAS-4: ~32 Gbit/s signal, ~3.2 GB/s effective
#: payload bandwidth and a few microseconds of latency; we add a modest
#: per-message software overhead for the (Java, in the paper) messaging layer.
QDR_INFINIBAND = NetworkSpec(
    name="qdr-infiniband",
    bandwidth_bps=3.2e9,
    latency_s=2.0e-6,
    per_message_overhead_s=15.0e-6,
)

#: A slower commodity network, used by ablation benches.
GIGABIT_ETHERNET = NetworkSpec(
    name="gigabit-ethernet",
    bandwidth_bps=118e6,
    latency_s=50e-6,
    per_message_overhead_s=60e-6,
)


@dataclass(slots=True)
class Message:
    """A message in flight or delivered.

    ``payload`` is an arbitrary Python object; ``nbytes`` is the size that is
    *charged* to the network (the model size of the data, which for simulated
    paper-scale runs is much larger than the in-memory payload).
    """

    src: int
    dst: int
    tag: str
    payload: Any = None
    nbytes: float = 0.0
    send_time: float = 0.0
    recv_time: float = 0.0


class Endpoint:
    """A node's attachment to the network: NIC plus mailbox."""

    def __init__(self, env: Environment, network: "Network", rank: int):
        self.env = env
        self.network = network
        self.rank = rank
        self.nic = Resource(env, capacity=1)
        self.mailbox: Store = Store(env)
        #: cumulative statistics — byte counters start at int 0 so that
        #: integral charges (see :func:`_exact`) accumulate exactly
        self.bytes_sent: Any = 0
        self.bytes_received: Any = 0
        self.messages_sent = 0
        self.messages_received = 0

    def send(self, dst: int, tag: str, payload: Any = None, nbytes: float = 0.0) -> Generator:
        """Process: transmit a message to node ``dst`` (blocks the NIC)."""
        yield from self.network.transmit(self, dst, tag, payload, nbytes)

    def recv(self, tag: Optional[str] = None):
        """Event: receive the next message (optionally filtered by tag)."""
        if tag is None:
            return self.mailbox.get()
        return self.mailbox.get(lambda m: m.tag == tag)

    def recv_match(self, predicate):
        """Event: receive the next message matching an arbitrary predicate."""
        return self.mailbox.get(predicate)


class _TransmitOp:
    """One in-flight transfer on the zero-process fast path.

    A small callback chain that replays the slow generator's event
    structure exactly — same events, created at the same virtual times, so
    every heap seq (and therefore every downstream resumption order) is
    unchanged:

    ========================  ==================================  =========
    slow path                 fast path                           queue pop
    ========================  ==================================  =========
    ``yield nic.request()``   ``_Request`` created in __init__    grant
    resume → ser ``Timeout``  ``_granted`` → ser hop ``Timeout``  ser done
    resume → release + lat    ``_ser_done`` → release + lat hop   delivered
    resume → counters + put   ``_deliver`` → counters + succeed   caller
    ========================  ==================================  =========

    The difference is that only the *last* pop resumes a generator (the
    blocking caller waiting on ``done``); the other three dispatch to these
    plain methods.  Fire-and-forget sends (``done is None``) resume nobody.

    Interrupt parity: a blocking caller's ``transmit`` wrapper calls
    :meth:`cancel` from its ``finally`` when interrupted mid-transfer,
    which frees the NIC at interrupt-delivery time — the same moment the
    slow generator's ``try/finally`` would — and marks the op dead so the
    already-queued hop events pop inert, exactly like the slow path's
    orphaned Timeouts.
    """

    __slots__ = ("network", "src_ep", "dst_ep", "msg", "nbytes", "done",
                 "req", "inject_start", "dead", "released")

    def __init__(self, network: "Network", src_ep: Endpoint, dst_ep: Endpoint,
                 msg: Message, nbytes: float, done: Optional[Event]):
        self.network = network
        self.src_ep = src_ep
        self.dst_ep = dst_ep
        self.msg = msg
        self.nbytes = nbytes
        self.done = done
        self.inject_start = 0.0
        self.dead = False
        self.released = False
        req = src_ep.nic.request()
        req.callbacks.append(self._granted)
        self.req = req

    def cancel(self) -> None:
        """Abort like the slow path's ``finally``: free the NIC *now*."""
        self.dead = True
        if not self.released:
            self.released = True
            # Not granted yet: release() falls through to req.cancel() and
            # withdraws the queued claim.  Granted: frees the slot.
            self.src_ep.nic.release(self.req)

    def _granted(self, _event: Event) -> None:
        if self.dead:
            return
        network = self.network
        env = network.env
        spec = network.spec
        # Serialization occupies the sender's injection link.
        self.inject_start = env._now
        hop = Timeout(env, spec.per_message_overhead_s
                      + self.nbytes / spec.bandwidth_bps)
        hop.callbacks.append(self._ser_done)

    def _ser_done(self, _event: Event) -> None:
        if not self.released:
            self.released = True
            self.src_ep.nic.release(self.req)
        if self.dead:
            return
        network = self.network
        # Fabric latency does not occupy the NIC.
        hop = Timeout(network.env, network.spec.latency_s)
        hop.callbacks.append(self._deliver)

    def _deliver(self, _event: Event) -> None:
        if self.dead:
            return
        network = self.network
        env = network.env
        msg = self.msg
        nbytes = self.nbytes
        src_ep = self.src_ep
        dst_ep = self.dst_ep
        msg.recv_time = env._now
        charge = _exact(nbytes)
        src_ep.bytes_sent += charge
        src_ep.messages_sent += 1
        dst_ep.bytes_received += charge
        dst_ep.messages_received += 1
        network.total_bytes += charge
        network.total_messages += 1
        obs = env.obs
        if obs.enabled:
            # Same interval the slow path emits, fields byte-for-byte.
            obs.emit("send", node=src_ep.rank,
                     lane=f"node{src_ep.rank}/net",
                     start=self.inject_start, end=env._now,
                     label=msg.tag, dst=msg.dst, nbytes=nbytes)
        done = self.done
        mailbox = dst_ep.mailbox
        if not mailbox._putters and len(mailbox.items) < mailbox.capacity:
            if done is not None:
                # The caller's resume event takes the slow path's put-pop
                # slot (same seq position), preceding the getter's.
                done.succeed(msg)
                mailbox.put_nowait(msg)
            else:
                # Fire-and-forget: the spawned sender would have popped a
                # put event and then its process-completion event.  Keep
                # both pops (as inert events in the identical seq slots) so
                # fast and slow runs process *exactly* the same events —
                # the determinism contract, and what keeps sim_events
                # comparable across the recorded perf trajectory.
                filler = Event(env)
                filler.callbacks.append(self._completed)
                filler.succeed(msg)
                mailbox.put_nowait(msg)
        else:
            # Bounded/contended mailbox: fall back to a queued put and
            # resume the caller when it lands, as the slow path does.
            put = mailbox.put(msg)
            if done is not None:
                put.callbacks.append(lambda _e, d=done, m=msg: d.succeed(m))
            else:
                put.callbacks.append(self._completed)

    def _completed(self, _event: Event) -> None:
        """Inert stand-in for the spawned sender's completion-event pop."""
        Event(self.network.env).succeed(None)


class Network:
    """The fabric connecting all endpoints."""

    def __init__(self, env: Environment, spec: NetworkSpec):
        self.env = env
        self.spec = spec
        self.endpoints: Dict[int, Endpoint] = {}
        #: int 0 start: integral charges accumulate exactly (see _exact)
        self.total_bytes: Any = 0
        self.total_messages = 0
        #: When True (default), transfers use the zero-process callback
        #: chain (:class:`_TransmitOp`); when False, the original generator
        #: path.  Both produce byte-identical event streams — the switch
        #: exists for A/B regression tests and debugging.
        self.fast_transmit = True

    def attach(self, rank: int) -> Endpoint:
        if rank in self.endpoints:
            raise SimulationError(f"rank {rank} already attached")
        ep = Endpoint(self.env, self, rank)
        self.endpoints[rank] = ep
        return ep

    def _begin(self, src_ep: Endpoint, dst: int, tag: str, payload: Any,
               nbytes: float, done: Optional[Event]) -> _TransmitOp:
        """Start a fast-path transfer; returns the op driving it."""
        dst_ep = self.endpoints.get(dst)
        if dst_ep is None:
            raise SimulationError(f"no endpoint with rank {dst}")
        msg = Message(src=src_ep.rank, dst=dst, tag=tag, payload=payload,
                      nbytes=nbytes, send_time=self.env._now)
        return _TransmitOp(self, src_ep, dst_ep, msg, nbytes, done)

    def post(self, src_ep: Endpoint, dst: int, tag: str,
             payload: Any, nbytes: float) -> None:
        """Fire-and-forget transfer, no Process spawned.

        Drop-in replacement for ``env.process(network.transmit(...))``:
        the front-priority starter event below occupies exactly the queue
        slot the Process's ``Initialize`` event would have, so the NIC is
        claimed at the same virtual moment with the same heap seq — event
        order relative to the caller's subsequent sends is unchanged.
        """
        env = self.env
        if not self.fast_transmit:
            env.process(self.transmit(src_ep, dst, tag, payload, nbytes))
            return
        starter = Event(env)
        starter._ok = True
        starter._value = None
        starter.callbacks.append(
            lambda _e: self._begin(src_ep, dst, tag, payload, nbytes, None))
        env._schedule(starter, 0, front=True)

    def transmit(self, src_ep: Endpoint, dst: int, tag: str,
                 payload: Any, nbytes: float) -> Generator:
        """Process body implementing one message transfer."""
        if self.fast_transmit:
            done = Event(self.env)
            op = self._begin(src_ep, dst, tag, payload, nbytes, done)
            try:
                result = yield done
            finally:
                if not done.triggered:
                    # Interrupted mid-transfer: behave like the slow
                    # generator's try/finally at this exact moment.
                    op.cancel()
            return result
        msg = yield from self._transmit_slow(src_ep, dst, tag, payload, nbytes)
        return msg

    def _transmit_slow(self, src_ep: Endpoint, dst: int, tag: str,
                       payload: Any, nbytes: float) -> Generator:
        """Original generator transfer (kept as the A/B reference path)."""
        if dst not in self.endpoints:
            raise SimulationError(f"no endpoint with rank {dst}")
        env = self.env
        spec = self.spec
        msg = Message(src=src_ep.rank, dst=dst, tag=tag, payload=payload,
                      nbytes=nbytes, send_time=env.now)
        # Hot path (one per protocol message): claim the NIC with an
        # explicit try/finally instead of the context-manager protocol,
        # and build Timeouts directly.  Event order is unchanged.
        nic = src_ep.nic
        req = yield nic.request()
        try:
            # Serialization occupies the sender's injection link.
            inject_start = env.now
            yield Timeout(env, spec.per_message_overhead_s
                          + nbytes / spec.bandwidth_bps)
        finally:
            nic.release(req)
        # Fabric latency does not occupy the NIC.
        yield Timeout(env, spec.latency_s)
        msg.recv_time = env.now
        charge = _exact(nbytes)
        src_ep.bytes_sent += charge
        src_ep.messages_sent += 1
        dst_ep = self.endpoints[dst]
        dst_ep.bytes_received += charge
        dst_ep.messages_received += 1
        self.total_bytes += charge
        self.total_messages += 1
        obs = env.obs
        if obs.enabled:
            # One interval per message on the sender's NIC lane: NIC
            # injection start to delivery (the paper's node<->node bars).
            obs.emit("send", node=src_ep.rank,
                     lane=f"node{src_ep.rank}/net",
                     start=inject_start, end=env.now,
                     label=tag, dst=dst, nbytes=nbytes)
        yield dst_ep.mailbox.put(msg)
        return msg

    def broadcast(self, src_ep: Endpoint, tag: str, payload: Any,
                  nbytes: float, ranks: Optional[Iterable[int]] = None) -> Generator:
        """Process: send to every (other) endpoint, serialized on the NIC.

        A flat broadcast matches the paper's master-to-slaves runtime-info
        broadcast at initialization; it is O(P) on the master's NIC, which is
        fine because it happens once.
        """
        targets = sorted(self.endpoints if ranks is None else ranks)
        for dst in targets:
            if dst == src_ep.rank:
                continue
            yield from self.transmit(src_ep, dst, tag, payload, nbytes)
