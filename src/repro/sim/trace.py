"""Activity tracing for Gantt charts and post-run analysis.

The paper's Figs. 16 and 17 are Gantt charts of a heterogeneous k-means run:
per-queue bars for CPU tasks, host<->device transfers, node<->node sends and
kernel executions.  :class:`TraceRecorder` collects exactly those intervals;
:func:`render_gantt_ascii` draws them as text so the benchmark harness can
print the figures.

Since the introduction of the unified observability layer
(:mod:`repro.obs`), the recorder is a *view* over the event bus: nodes,
devices and the network emit structured interval events to
``Environment.obs``, and a recorder attached to that bus converts them into
Gantt :class:`Activity` bars.  Standalone use (construct a recorder, call
:meth:`TraceRecorder.record` directly) keeps working for tests and ad-hoc
analysis — both paths feed the same activity list, so Gantt figures and the
ablation tables come from one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..obs.bus import INTERVAL_KINDS, EventBus, ObsEvent

__all__ = ["Activity", "TraceRecorder", "render_gantt_ascii"]


@dataclass
class Activity:
    """One bar in the Gantt chart."""

    queue: str        #: lane identifier, e.g. "node3/gtx480/kernel"
    kind: str         #: "kernel" | "h2d" | "d2h" | "send" | "recv" | "cpu" | "steal"
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects :class:`Activity` records during a simulated run.

    Pass ``bus`` to attach the recorder to an observability event bus
    (``Environment.obs``): every *interval* event emitted on the bus then
    becomes one Gantt activity.  Without a bus the recorder is a plain
    container fed through :meth:`record`.
    """

    def __init__(self, enabled: bool = True, bus: Optional[EventBus] = None):
        self.enabled = enabled
        self.activities: List[Activity] = []
        self.bus = bus
        if bus is not None:
            bus.subscribe(self._on_event)

    def _on_event(self, ev: ObsEvent) -> None:
        """Bus subscriber: interval events become Gantt bars."""
        if not self.enabled or ev.lane is None or not ev.is_interval:
            return
        if ev.kind not in INTERVAL_KINDS:
            return
        label = ev.fields.get("label", ev.kind)
        self.record(ev.lane, ev.kind, str(label), ev.start, ev.end)

    def record(self, queue: str, kind: str, label: str, start: float, end: float) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"activity ends before it starts: {label}")
        self.activities.append(Activity(queue, kind, label, start, end))

    # -- queries -----------------------------------------------------------
    def queues(self) -> List[str]:
        seen: Dict[str, None] = {}
        for act in self.activities:
            seen.setdefault(act.queue, None)
        return list(seen)

    def by_queue(self, queue: str) -> List[Activity]:
        return [a for a in self.activities if a.queue == queue]

    def by_kind(self, kind: str) -> List[Activity]:
        return [a for a in self.activities if a.kind == kind]

    def span(self) -> float:
        """Total time covered by any activity (makespan of the trace)."""
        if not self.activities:
            return 0.0
        return max(a.end for a in self.activities) - min(a.start for a in self.activities)

    def busy_time(self, queue: str) -> float:
        """Sum of (merged) activity durations in a lane."""
        intervals = sorted((a.start, a.end) for a in self.by_queue(queue))
        busy = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for s, e in intervals:
            if cur_start is None:
                cur_start, cur_end = s, e
            elif s <= cur_end:
                cur_end = max(cur_end, e)
            else:
                busy += cur_end - cur_start
                cur_start, cur_end = s, e
        if cur_start is not None:
            busy += cur_end - cur_start
        return busy

    def utilization(self, queue: str) -> float:
        span = self.span()
        return self.busy_time(queue) / span if span > 0 else 0.0


_KIND_CHAR = {
    "kernel": "#",
    "h2d": ">",
    "d2h": "<",
    "send": "s",
    "recv": "r",
    "cpu": "=",
    "steal": "?",
}


def render_gantt_ascii(trace: TraceRecorder, width: int = 100,
                       queues: Optional[Sequence[str]] = None,
                       t0: Optional[float] = None,
                       t1: Optional[float] = None,
                       kinds: Optional[Sequence[str]] = None) -> str:
    """Render a trace as an ASCII Gantt chart.

    ``kinds`` restricts the chart to some activity kinds (the paper's Fig. 17
    shows kernel executions only); ``t0``/``t1`` zoom in (Fig. 16).
    """
    acts = trace.activities
    if kinds is not None:
        acts = [a for a in acts if a.kind in kinds]
    if not acts:
        return "(empty trace)"
    lo = min(a.start for a in acts) if t0 is None else t0
    hi = max(a.end for a in acts) if t1 is None else t1
    if hi <= lo:
        return "(empty window)"
    lanes = queues if queues is not None else sorted({a.queue for a in acts})
    label_w = max(len(q) for q in lanes) + 1
    scale = width / (hi - lo)
    lines = []
    header = " " * label_w + f"|{lo:.3f}s" + " " * max(0, width - 16) + f"{hi:.3f}s|"
    lines.append(header)
    for q in lanes:
        row = [" "] * width
        for a in acts:
            if a.queue != q:
                continue
            s = max(a.start, lo)
            e = min(a.end, hi)
            if e <= lo or s >= hi:
                continue
            i0 = int((s - lo) * scale)
            i1 = max(i0 + 1, int((e - lo) * scale))
            ch = _KIND_CHAR.get(a.kind, "*")
            for i in range(i0, min(i1, width)):
                row[i] = ch
        lines.append(q.ljust(label_w) + "|" + "".join(row) + "|")
    legend = "  ".join(f"{c}={k}" for k, c in _KIND_CHAR.items())
    lines.append(" " * label_w + legend)
    return "\n".join(lines)
