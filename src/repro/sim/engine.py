"""Process-based discrete-event simulation engine.

This is the substrate on which the simulated DAS-4 cluster, the network, the
many-core devices, and the Satin/Cashmere runtimes execute.  It follows the
classic process-interaction style (cf. SimPy): simulation *processes* are
Python generators that ``yield`` events; the environment advances a virtual
clock from event to event.

The engine is deliberately deterministic: events scheduled for the same
virtual time fire in FIFO order of scheduling, so every simulated experiment
is exactly reproducible given a seed for the model-level random generators.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..obs.bus import EventBus

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "first_of",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation engine."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from a triggered None value.
_PENDING = object()


class Event:
    """A condition that may happen at a point in simulated time.

    Processes wait for events by yielding them.  An event is *triggered* with
    either a value (:meth:`succeed`) or an exception (:meth:`fail`); all
    registered callbacks then run at the event's scheduled time.

    Events are the single hottest allocation of the simulator (tens of
    millions per paper-scale run), so the whole hierarchy is ``__slots__``-ed
    and the hot subclasses initialize their slots inline instead of
    chaining ``super().__init__`` calls.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        pool = env._cb_pool
        self.callbacks: Optional[List[Callable[["Event"], None]]] = (
            pool.pop() if pool else []
        )
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Whether a failure was handed to some waiter (unhandled failures
        #: propagate out of :meth:`Environment.run`).
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or exception."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined self.env._schedule(self) — succeed() fires once per
        # resolved event, millions of times per paper-scale run.
        env = self.env
        heapq.heappush(env._queue, (env._now, 1, next(env._seq), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self)

    def _first_of_check(self, ev: "Event") -> None:
        """Callback used by :func:`first_of`: the first constituent to be
        dispatched triggers us; the second finds us triggered and is a
        no-op."""
        if self._value is _PENDING:
            self.succeed({ev: ev._value})

    # -- composition --------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined Event.__init__ (hot path: one Timeout per simulated delay).
        self.env = env
        pool = env._cb_pool
        self.callbacks = pool.pop() if pool else []
        self._defused = False
        self._delay = delay
        self._ok = True
        self._value = value
        heapq.heappush(env._queue, (env._now + delay, 1, next(env._seq), self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Immediate event that starts a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._defused = False
        self._ok = True
        self._value = None
        env._schedule(self, 0, front=True)


class Process(Event):
    """Wraps a generator as a simulation process.

    The process itself is an event that triggers with the generator's return
    value when the generator finishes (or with its exception).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        Delivery is deferred to an immediate front-priority event, and the
        unhooking from the process's current wait target happens at
        *delivery* time, not here.  That ordering matters for a process
        that has not started yet (its :class:`Initialize` event is still
        queued): the initializer — also front-priority, queued earlier —
        fires first, the generator runs to its first ``yield`` (entering
        any ``try`` block that guards its loop), and only then is the
        interrupt thrown.  Unhooking eagerly would instead cancel the
        initialization and throw into a never-started generator, where no
        handler can catch it.
        """
        if not self.is_alive:
            return  # interrupting a dead process is a no-op
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._deliver_interrupt)
        self.env._schedule(event, 0, front=True)

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # finished (or a second interrupt landed) meanwhile
        # Unhook from whatever the process is waiting for *now*.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        env = self.env
        generator = self._generator
        send = generator.send
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = generator.throw(exc)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                heapq.heappush(env._queue,
                               (env._now, 1, next(env._seq), self))
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                heapq.heappush(env._queue,
                               (env._now, 1, next(env._seq), self))
                break

            if not isinstance(next_event, Event):
                generator.throw(
                    SimulationError(f"process yielded non-event {next_event!r}")
                )
                continue
            if next_event.env is not env:
                generator.throw(
                    SimulationError("event belongs to a different environment")
                )
                continue

            if next_event.callbacks is not None:
                # Not yet processed: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: continue immediately with its value.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name}>"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("mixing environments in a condition")
        if self._immediately_done():
            self._finish()
        else:
            for ev in self._events:
                if ev.callbacks is not None:
                    ev.callbacks.append(self._check)
                else:
                    self._observe(ev)

    def _observe(self, ev: Event) -> None:
        if not ev._ok:
            ev._defused = True
            if not self.triggered:
                self.fail(ev._value)
            return
        self._count += 1

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        self._observe(ev)
        if not self.triggered and self._done():
            self._finish()

    def _immediately_done(self) -> bool:
        for ev in self._events:
            if ev.callbacks is None:
                self._observe(ev)
        return not self.triggered and self._done()

    def _finish(self) -> None:
        self.succeed({ev: ev._value for ev in self._events if ev.triggered and ev._ok})

    def _done(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once *all* constituent events have triggered."""

    __slots__ = ()

    def _done(self) -> bool:
        return self._count >= len(self._events)


class AnyOf(_Condition):
    """Triggers once *any* constituent event has triggered."""

    __slots__ = ()

    def _done(self) -> bool:
        return self._count >= 1 or not self._events


def first_of(env: "Environment", a: Event, b: Event) -> Event:
    """Lean two-event :class:`AnyOf` for the hottest wait sites (a steal
    request racing its reply timeout; an idle worker racing its backoff
    timer against the deque).

    Both constituents must be *pending, unprocessed* events of ``env``
    that can only succeed, never fail — exactly the shape those call
    sites produce.  The returned event triggers at the same heap slot an
    ``AnyOf`` would (its ``succeed`` runs inside the first constituent's
    callback dispatch), so event streams are identical; only the
    condition bookkeeping (list copy, per-event env checks, the
    triggered-subset dict over all constituents) is gone.  The value is
    ``{first_event: its value}`` for the constituent whose dispatch won.
    """
    ev = Event(env)
    if a.callbacks is None or b.callbacks is None:
        # A constituent was already processed — e.g. a steal reply failed
        # by the membership service while the requester was still mid-send.
        # Trigger at construction, exactly as AnyOf's immediately-done
        # path schedules its succeed.
        ev.succeed({d: d._value for d in (a, b)
                    if d._value is not _PENDING and d._ok})
        return ev
    check = ev._first_of_check
    a.callbacks.append(check)
    b.callbacks.append(check)
    return ev


class Environment:
    """Holds the virtual clock and the event queue."""

    # The clock, queue, and seq counter are touched on every event push
    # and pop; slotted access shaves measurable time off paper-scale runs.
    __slots__ = ("_now", "_queue", "_seq", "_active_proc", "_cb_pool",
                 "events_processed", "obs")

    #: upper bound on the recycled callback-list pool (plenty for the
    #: handful of events alive between two queue pops)
    _CB_POOL_MAX = 64

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []  # (time, priority, seq, event)
        self._seq = itertools.count()
        self._active_proc: Optional[Process] = None
        #: recycled callback lists: every processed event's (cleared) list
        #: is returned here and handed to the next event created, so the
        #: hot loop stops allocating one throwaway list per event
        self._cb_pool: List[List[Callable[["Event"], None]]] = []
        #: events processed so far (each :meth:`step`, or loop iteration of
        #: :meth:`run`, handles exactly one) — the denominator of the
        #: events/second throughput the benchmark harness records
        self.events_processed: int = 0
        #: observability event bus (repro.obs): disabled by default, so the
        #: instrumented call sites throughout the stack cost nothing.
        self.obs: EventBus = EventBus(clock=lambda: self._now)

    @property
    def now(self) -> float:
        """Current simulated time (seconds, by convention of this repo)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, front: bool = False) -> None:
        priority = 0 if front else 1
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        pool = self._cb_pool
        callbacks, event.callbacks = event.callbacks, None
        if len(callbacks) == 1:
            # Single-waiter events (the overwhelmingly common case: one
            # process resuming on one Timeout/grant) skip the loop setup
            # and recycle their callback list before dispatch.
            cb = callbacks[0]
            callbacks.clear()
            if len(pool) < self._CB_POOL_MAX:
                pool.append(callbacks)
            cb(event)
        else:
            for cb in callbacks:
                cb(event)
            callbacks.clear()
            if len(pool) < self._CB_POOL_MAX:
                pool.append(callbacks)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until the given time, event, or queue exhaustion.

        ``until`` may be ``None`` (run to exhaustion), a number (run up to
        that virtual time), or an :class:`Event` (run until it is processed,
        returning its value).

        The two unbounded forms inline :meth:`step` — paper-scale runs
        process tens of millions of events, so one method call plus
        re-resolved attribute lookups per event is measurable wall-clock.
        The semantics (FIFO order at equal time, failure propagation) are
        exactly :meth:`step`'s.
        """
        queue = self._queue
        pop = heapq.heappop
        pool = self._cb_pool
        pool_max = self._CB_POOL_MAX
        steps = 0
        if until is None:
            try:
                while queue:
                    when, _prio, _seq, event = pop(queue)
                    self._now = when
                    steps += 1
                    callbacks, event.callbacks = event.callbacks, None
                    if len(callbacks) == 1:
                        cb = callbacks[0]
                        callbacks.clear()
                        if len(pool) < pool_max:
                            pool.append(callbacks)
                        cb(event)
                    else:
                        for cb in callbacks:
                            cb(event)
                        callbacks.clear()
                        if len(pool) < pool_max:
                            pool.append(callbacks)
                    if not event._ok and not event._defused:
                        raise event._value
            finally:
                self.events_processed += steps
            return None
        if isinstance(until, Event):
            target = until
            try:
                while target.callbacks is not None:  # i.e. not yet processed
                    if not queue:
                        raise SimulationError(
                            f"event queue empty before {target!r} triggered "
                            "(deadlock?)"
                        )
                    when, _prio, _seq, event = pop(queue)
                    self._now = when
                    steps += 1
                    callbacks, event.callbacks = event.callbacks, None
                    if len(callbacks) == 1:
                        cb = callbacks[0]
                        callbacks.clear()
                        if len(pool) < pool_max:
                            pool.append(callbacks)
                        cb(event)
                    else:
                        for cb in callbacks:
                            cb(event)
                        callbacks.clear()
                        if len(pool) < pool_max:
                            pool.append(callbacks)
                    if not event._ok and not event._defused:
                        raise event._value
            finally:
                self.events_processed += steps
            if not target._ok:
                raise target._value
            return target._value
        stop_at = float(until)
        if stop_at < self._now:
            raise SimulationError("cannot run into the past")
        # Inlined like the two forms above (this branch used to dispatch
        # through self.step() per event).  Events scheduled *exactly at*
        # ``stop_at`` are processed; the clock then lands on ``stop_at``.
        try:
            while queue and queue[0][0] <= stop_at:
                when, _prio, _seq, event = pop(queue)
                self._now = when
                steps += 1
                callbacks, event.callbacks = event.callbacks, None
                if len(callbacks) == 1:
                    cb = callbacks[0]
                    callbacks.clear()
                    if len(pool) < pool_max:
                        pool.append(callbacks)
                    cb(event)
                else:
                    for cb in callbacks:
                        cb(event)
                    callbacks.clear()
                    if len(pool) < pool_max:
                        pool.append(callbacks)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            self.events_processed += steps
        self._now = stop_at
        return None
