"""Discrete-event simulation substrate for the Cashmere reproduction.

The paper ran on the DAS-4 cluster; this package provides the virtual
hardware it ran on: a deterministic process-based event engine
(:mod:`repro.sim.engine`), contention primitives (:mod:`repro.sim.resources`),
an InfiniBand-style interconnect model (:mod:`repro.sim.network`) and
Gantt-chart tracing (:mod:`repro.sim.trace`).
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .network import (
    GIGABIT_ETHERNET,
    QDR_INFINIBAND,
    Endpoint,
    Message,
    Network,
    NetworkSpec,
)
from .resources import Container, PriorityStore, Resource, Store
from .trace import Activity, TraceRecorder, render_gantt_ascii

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Resource",
    "Store",
    "PriorityStore",
    "Container",
    "Network",
    "NetworkSpec",
    "Endpoint",
    "Message",
    "QDR_INFINIBAND",
    "GIGABIT_ETHERNET",
    "Activity",
    "TraceRecorder",
    "render_gantt_ascii",
]
