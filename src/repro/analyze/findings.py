"""Shared findings infrastructure: diagnostics, suppressions, renderers.

This module is the *common* diagnostic model of the repository's two
correctness-tooling subsystems:

* :mod:`repro.mcl.verify` — the MCPL kernel verifier (``repro lint``),
  whose rules carry ``MCL…`` codes and whose suppressions live in
  ``//``-style kernel comments, and
* :mod:`repro.analyze` — the whole-runtime determinism sanitizer
  (``repro analyze``), whose rules carry ``REP…`` codes and whose
  suppressions live in ``#``-style Python comments.

Both register their rule catalogues into the single shared :data:`RULES`
registry (codes are globally unique and stable), produce :class:`Finding`
records, and render them through the same text/JSON renderers.  The
suppression scanner is parameterized by comment marker and tag::

    ... code ...   // lint: ignore[MCL201]        (MCPL kernel source)
    ... code ...   # analyze: ignore[REP102] why  (runtime Python source)

A suppression comment on a line of its own applies to the next non-comment,
non-blank line; trailing text after the bracket is a free-form
justification and is encouraged.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "register_rules",
    "Finding",
    "Suppressions",
    "scan_suppressions",
    "filter_suppressed",
    "render_text",
    "render_json",
    "has_errors",
]


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """A rule: stable code, severity, one-line summary."""

    code: str
    severity: Severity
    summary: str


#: the shared rule registry — MCL and REP catalogues both live here; codes
#: are stable and documented in docs/lint.md and docs/analyze.md
RULES: Dict[str, Rule] = {}


def register_rules(rules: Iterable[Rule]) -> None:
    """Add a rule catalogue to the shared registry (codes must be unique)."""
    for rule in rules:
        existing = RULES.get(rule.code)
        if existing is not None and existing != rule:
            raise ValueError(f"rule code {rule.code!r} already registered")
        RULES[rule.code] = rule


# ---------------------------------------------------------------------------
# the REP catalogue (the MCL catalogue registers from repro.mcl.verify)
# ---------------------------------------------------------------------------

register_rules([
    Rule("REP101", Severity.ERROR,
         "nondeterministic randomness: call into a process-global RNG "
         "(random module functions, unseeded Random()/default_rng(), "
         "legacy numpy.random.*)"),
    Rule("REP102", Severity.ERROR,
         "wall-clock read outside the whitelisted bench/CLI modules: "
         "simulated components must use virtual time or an injected clock"),
    Rule("REP103", Severity.ERROR,
         "iteration over an unordered set/dict reaches an ordering-"
         "sensitive sink (heap push, event scheduling, message dispatch)"),
    Rule("REP104", Severity.ERROR,
         "id()/object-identity hash used in a comparison or sort key: "
         "CPython addresses vary across runs"),
    Rule("REP105", Severity.ERROR,
         "mutable default argument: the shared default object leaks state "
         "across calls (and across simulations within one process)"),
    Rule("REP106", Severity.ERROR,
         "os.environ read in a hot runtime path: ambient process state "
         "makes runs irreproducible; thread configuration explicitly"),
    Rule("REP201", Severity.ERROR,
         "shared-object data race: two accesses (at least one write) from "
         "concurrent jobs unordered by happens-before"),
])


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule code, location, message, optional fix hint.

    ``origin`` labels where the finding comes from — a kernel tag such as
    ``matmul@perfect`` for the MCPL verifier, or a module path such as
    ``repro.sweep.engine`` for the determinism sanitizer.
    """

    code: str
    line: int
    message: str
    hint: Optional[str] = None
    origin: Optional[str] = None

    @property
    def severity(self) -> Severity:
        return RULES[self.code].severity

    @property
    def kernel(self) -> Optional[str]:
        """Backward-compatible alias of :attr:`origin` (MCL call sites)."""
        return self.origin

    def sort_key(self) -> tuple:
        return (self.origin or "", self.line, self.code, self.message)


# ---------------------------------------------------------------------------
# Inline suppression scanning
# ---------------------------------------------------------------------------

_PATTERN_CACHE: Dict[Tuple[str, str], Tuple[re.Pattern, re.Pattern]] = {}


def _patterns(marker: str, tag: str) -> Tuple[re.Pattern, re.Pattern]:
    key = (marker, tag)
    pats = _PATTERN_CACHE.get(key)
    if pats is None:
        ignore = re.compile(
            re.escape(marker) + r"\s*" + re.escape(tag)
            + r":\s*ignore(?:\[([A-Z0-9,\s]*)\])?")
        comment_only = re.compile(r"^\s*" + re.escape(marker))
        pats = _PATTERN_CACHE[key] = (ignore, comment_only)
    return pats


@dataclass
class Suppressions:
    """Suppressed rule codes per 1-based source line.

    ``by_line[n]`` is the set of codes suppressed on line ``n``; the empty
    string element means "all codes".
    """

    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def matches(self, line: int, code: str) -> bool:
        codes = self.by_line.get(line)
        if not codes:
            return False
        return "" in codes or code in codes


def scan_suppressions(source: str, *, marker: str = "#",
                      tag: str = "analyze") -> Suppressions:
    """Scan raw source for ``<marker> <tag>: ignore[...]`` comments.

    A suppression on a comment-only line applies to the next non-comment,
    non-blank line; otherwise it applies to its own line.  The defaults
    match the determinism sanitizer (``# analyze: ignore[REP102]``); the
    MCPL verifier passes ``marker="//", tag="lint"``.
    """
    ignore_re, comment_only_re = _patterns(marker, tag)
    sup = Suppressions()
    lines = source.splitlines()
    pending: Set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        m = ignore_re.search(text)
        codes: Optional[Set[str]] = None
        if m:
            if m.group(1) is None:
                codes = {""}
            else:
                codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
                if not codes:
                    codes = {""}
        if comment_only_re.match(text):
            if codes:
                pending |= codes
            continue
        if not text.strip():
            continue
        applied = set(codes or ())
        applied |= pending
        pending = set()
        if applied:
            sup.by_line.setdefault(lineno, set()).update(applied)
    return sup


def filter_suppressed(findings: Iterable[Finding],
                      suppressions: Suppressions) -> List[Finding]:
    return [f for f in findings
            if not suppressions.matches(f.line, f.code)]


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------

def render_text(findings: Sequence[Finding], *,
                source_name: str = "<source>") -> str:
    """GCC-style one-line-per-finding text rendering."""
    if not findings:
        return f"{source_name}: clean (0 findings)"
    out = []
    for f in sorted(findings, key=Finding.sort_key):
        where = f.origin or source_name
        out.append(f"{where}:{f.line}: {f.severity} {f.code}: {f.message}")
        if f.hint:
            out.append(f"    hint: {f.hint}")
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    out.append(f"{source_name}: {errors} error(s), {warnings} warning(s)")
    return "\n".join(out)


def render_json(findings: Sequence[Finding], *,
                source_name: str = "<source>",
                origin_key: str = "origin") -> str:
    """Stable machine-readable rendering (sorted, one object per finding).

    ``origin_key`` names the JSON key carrying :attr:`Finding.origin` —
    the MCPL verifier keeps its historical ``"kernel"`` key.
    """
    payload = {
        "source": source_name,
        "findings": [
            {
                "code": f.code,
                "severity": str(f.severity),
                origin_key: f.origin,
                "line": f.line,
                "message": f.message,
                "hint": f.hint,
                "summary": RULES[f.code].summary,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def has_errors(findings: Iterable[Finding]) -> bool:
    """Does the collection contain at least one error-severity finding?"""
    return any(f.severity is Severity.ERROR for f in findings)
