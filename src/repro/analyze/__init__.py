"""``repro.analyze`` — the determinism sanitizer.

Two-pronged correctness tooling for the runtime itself (the MCPL kernel
verifier's sibling; see :mod:`repro.mcl.verify`):

* **static pass** (:mod:`.static`) — AST-based determinism lints over the
  runtime source with stable ``REP1xx`` codes: process-global randomness,
  wall-clock reads, unordered set/dict iteration feeding ordering-sensitive
  sinks, ``id()``-based ordering, mutable default arguments and
  ``os.environ`` reads in hot paths.  Inline ``# analyze: ignore[CODE]``
  suppressions and a per-module baseline keep justified cases out of CI.
* **dynamic sanitizer** (:mod:`.races`) — a flag-gated
  (``CashmereConfig(detect_races=True)``) happens-before race detector:
  Satin jobs carry vector clocks merged along spawn/sync/steal/result
  edges; conflicting :mod:`repro.satin.shared_objects` accesses unordered
  by happens-before become structured :class:`~repro.analyze.races.RaceReport`
  findings (code ``REP201``).

Both prongs share the :mod:`.findings` infrastructure (rule registry,
suppressions, text/JSON renderers) with ``repro lint``.  Entry point:
``python -m repro analyze`` (see :mod:`.cli`).

This package imports only the standard library at module level, so the
MCPL verifier can depend on :mod:`.findings` without import cycles.
"""

from __future__ import annotations

from .findings import (
    RULES,
    Finding,
    Rule,
    Severity,
    Suppressions,
    filter_suppressed,
    has_errors,
    register_rules,
    render_json,
    render_text,
    scan_suppressions,
)
from .races import Access, RaceDetector, RaceReport, VectorClock
from .static import (
    DEFAULT_CONFIG,
    AnalyzerConfig,
    Baseline,
    analyze_file,
    analyze_source,
    analyze_tree,
)

__all__ = [
    "Access",
    "AnalyzerConfig",
    "Baseline",
    "DEFAULT_CONFIG",
    "Finding",
    "RaceDetector",
    "RaceReport",
    "Rule",
    "RULES",
    "Severity",
    "Suppressions",
    "VectorClock",
    "analyze_file",
    "analyze_source",
    "analyze_tree",
    "filter_suppressed",
    "has_errors",
    "register_rules",
    "render_json",
    "render_text",
    "scan_suppressions",
]
