"""The dynamic prong of the determinism sanitizer: happens-before races.

Satin's shared objects (Sec. II-A of the paper) relax the pure
divide-and-conquer model: write methods broadcast asynchronously with *no
global ordering* — the application chooses the consistency it needs.  That
freedom admits real data races between concurrently-executing spawned
jobs: two siblings updating one shared object without a sync edge between
them produce replica states that depend on the (seed-dependent) steal
schedule.

This module detects such races with the classic vector-clock
happens-before algorithm, specialized to the divide-and-conquer task
model:

* every *task* (the root program, or one spawned :class:`~repro.satin.job.Job`)
  carries a :class:`VectorClock`;
* **spawn** forks the parent's clock into the child (the child
  happens-after everything the parent did before the spawn);
* **sync** joins all child clocks back into the parent (the parent's
  continuation happens-after every child) — this is where the
  result-return edge is realized, regardless of which node the child was
  stolen to: a stolen job keeps its clock, so **steal** edges are
  identity merges;
* a satisfied **guard** joins the satisfying writer's clock into the
  waiting task (the guarded read happens-after the write it waited for).

Reads (:meth:`SharedObject.value`) and writes (:meth:`SharedObject.invoke`)
are recorded per shared object; two accesses *conflict* when they come
from different tasks, at least one is a write, and their replica ranks
overlap (a broadcast write touches every rank).  A conflict whose clocks
are mutually unordered is reported as a structured :class:`RaceReport`
(rule code ``REP201``).

The detector is flag-gated (``CashmereConfig(detect_races=True)``) and
follows the :mod:`repro.obs` zero-overhead discipline: every
instrumentation site guards on the detector being attached, and the
detector mirrors its happens-before edges and verdicts onto the obs event
bus (kinds ``hb_spawn``/``hb_sync``/``hb_guard``/``shared_access``/``race``)
when the bus is enabled — with ``detect_races=False`` nothing is built,
recorded or emitted, and seeded event streams stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from .findings import Finding

__all__ = ["VectorClock", "Access", "RaceReport", "RaceDetector"]


class VectorClock:
    """A sparse vector clock over task ids."""

    __slots__ = ("_c",)

    def __init__(self, items: Optional[Dict[int, int]] = None):
        self._c: Dict[int, int] = dict(items) if items else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def tick(self, task: int) -> None:
        self._c[task] = self._c.get(task, 0) + 1

    def join(self, other: "VectorClock") -> None:
        c = self._c
        for task, count in other._c.items():
            if count > c.get(task, 0):
                c[task] = count
        return None

    def leq(self, other: "VectorClock") -> bool:
        """Componentwise ``self <= other`` (happens-before or equal)."""
        oc = other._c
        return all(count <= oc.get(task, 0)
                   for task, count in self._c.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}:{n}" for t, n in sorted(self._c.items()))
        return f"<VC {{{inner}}}>"


@dataclass(frozen=True)
class Access:
    """One recorded shared-object access with its clock snapshot.

    ``rank`` is the replica the access touched, or ``None`` for a
    broadcast write that touches every replica.  ``task`` is the job id,
    or :data:`RaceDetector.ROOT` for the master program.
    """

    task: int
    kind: str                    #: "read" or "write"
    rank: Optional[int]
    clock: VectorClock
    site: Optional[str] = None   #: free-form label of the access site

    def describe(self) -> str:
        who = "root program" if self.task == RaceDetector.ROOT \
            else f"job {self.task}"
        where = "all replicas" if self.rank is None \
            else f"replica of node {self.rank}"
        return f"{self.kind} by {who} on {where}"


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting accesses unordered by happens-before."""

    obj: str
    first: Access
    second: Access

    def to_finding(self) -> Finding:
        return Finding(
            code="REP201",
            line=0,
            message=(f"data race on shared object {self.obj!r}: "
                     f"{self.first.describe()} is concurrent with "
                     f"{self.second.describe()}"),
            hint="order the accesses with a sync (or a guard on the "
                 "written state) between the conflicting jobs",
            origin=f"shared-object:{self.obj}",
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "obj": self.obj,
            "first": {"task": self.first.task, "kind": self.first.kind,
                      "rank": self.first.rank,
                      "clock": {str(k): v for k, v
                                in sorted(self.first.clock.as_dict().items())}},
            "second": {"task": self.second.task, "kind": self.second.kind,
                       "rank": self.second.rank,
                       "clock": {str(k): v for k, v
                                 in sorted(self.second.clock.as_dict().items())}},
        }


class RaceDetector:
    """Vector-clock happens-before race detection over shared objects.

    Attached by the runtime when ``RuntimeConfig.detect_races`` is set;
    ``runtime`` may be ``None`` for standalone/unit use (no obs
    mirroring).  The detector performs *no* simulation interaction: with
    the flag on, schedules and results are identical — only bookkeeping
    is added.
    """

    #: synthetic task id of the master program (everything outside jobs)
    ROOT = -1

    def __init__(self, runtime: Any = None):
        self.runtime = runtime
        self._clocks: Dict[int, VectorClock] = {
            self.ROOT: VectorClock({self.ROOT: 1})}
        #: latest access per (task, kind, rank) per object — enough to
        #: find every racing *pair of tasks* without unbounded history
        self._accesses: Dict[str, Dict[Tuple[int, str, Optional[int]],
                                       Access]] = {}
        self.reports: List[RaceReport] = []
        self._reported: Set[Tuple[str, FrozenSet[Tuple[int, str]],
                                  Tuple[Optional[int], Optional[int]]]] = set()

    # -- obs mirroring ------------------------------------------------------
    def _emit(self, kind: str, **fields: Any) -> None:
        if self.runtime is None:
            return
        obs = getattr(self.runtime, "obs", None)
        if obs is not None and obs.enabled:
            obs.emit(kind, **fields)

    # -- clocks -------------------------------------------------------------
    def clock(self, task: int) -> VectorClock:
        c = self._clocks.get(task)
        if c is None:
            c = self._clocks[task] = VectorClock({task: 1})
        return c

    def on_spawn(self, parent: int, child: int) -> None:
        """Fork: the child happens-after the parent's past."""
        pc = self.clock(parent)
        pc.tick(parent)
        child_clock = pc.copy()
        child_clock.tick(child)
        self._clocks[child] = child_clock
        self._emit("hb_spawn", parent=parent, child=child)

    def on_sync(self, parent: int, children: List[int]) -> None:
        """Join: the parent's continuation happens-after every child."""
        pc = self.clock(parent)
        for child in children:
            pc.join(self.clock(child))
        pc.tick(parent)
        self._emit("hb_sync", parent=parent, children=list(children))

    def on_guard(self, waiter: int, writer: int) -> None:
        """A guard fired: the waiter happens-after the satisfying write."""
        wc = self.clock(waiter)
        wc.join(self.clock(writer))
        wc.tick(waiter)
        self._emit("hb_guard", waiter=waiter, writer=writer)

    # -- accesses -----------------------------------------------------------
    def on_access(self, task: Optional[int], obj: str, kind: str,
                  rank: Optional[int] = None,
                  site: Optional[str] = None) -> None:
        """Record a shared-object access and check it against history."""
        if task is None:
            task = self.ROOT
        access = Access(task=task, kind=kind, rank=rank,
                        clock=self.clock(task).copy(), site=site)
        per = self._accesses.setdefault(obj, {})
        for (other_task, other_kind, other_rank), other in per.items():
            if other_task == task:
                continue                      # program order within a task
            if kind == "read" and other_kind == "read":
                continue                      # read/read never conflicts
            if rank is not None and other_rank is not None \
                    and rank != other_rank:
                continue                      # disjoint replicas
            if access.clock.concurrent_with(other.clock):
                self._report(obj, other, access)
        per[(task, kind, rank)] = access
        # field named "access", not "kind": EventBus.emit reserves "kind"
        self._emit("shared_access", obj=obj, task=task, access=kind,
                   rank=rank)

    def _report(self, obj: str, first: Access, second: Access) -> None:
        key = (obj,
               frozenset([(first.task, first.kind),
                          (second.task, second.kind)]),
               tuple(sorted((first.rank, second.rank),
                            key=lambda r: (-1 if r is None else r))))
        if key in self._reported:
            return
        self._reported.add(key)
        report = RaceReport(obj=obj, first=first, second=second)
        self.reports.append(report)
        self._emit("race", obj=obj,
                   first_task=first.task, first_kind=first.kind,
                   second_task=second.task, second_kind=second.kind)

    # -- results ------------------------------------------------------------
    def findings(self) -> List[Finding]:
        return [r.to_finding() for r in self.reports]
