"""Seeded shared-object race fixture for the happens-before sanitizer.

A deliberately tiny Satin program with two variants:

* **racy** (default) — the master divides one task into two spawned
  sibling jobs; each increments the same shared object.  The siblings
  have no sync edge between them, so their broadcast writes land in a
  steal-schedule-dependent order: a textbook shared-object data race the
  sanitizer must report as exactly one write/write ``REP201``.
* **synced** — the same two increments, but each runs in its own
  spawn+sync round of the master program.  The sync edge orders round 1
  before round 2, so the sanitizer must stay silent.

The fixture backs both the regression test (``tests/test_analyze_races.py``)
and the CLI demonstration (``python -m repro analyze --races race-demo``).
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from ..cluster.das4 import ClusterConfig, SimCluster
from ..satin.job import DivideConquerApp, LeafContext
from ..satin.runtime import RuntimeConfig, SatinRuntime
from ..satin.shared_objects import SharedObject

__all__ = ["SharedCounterApp", "run_fixture"]


def _increment(replica: int, amount: int) -> int:
    """The shared object's write method (deterministic, runs per replica)."""
    return replica + amount


class SharedCounterApp(DivideConquerApp):
    """Two jobs incrementing one shared counter, with or without a sync
    edge between them."""

    name = "race-fixture"

    def __init__(self, synced: bool = False):
        self.synced = synced

    # -- program -----------------------------------------------------------
    def program(self, runtime: Any, master: Any, root_task: Any) -> Generator:
        counter = SharedObject(runtime, "counter", 0)
        if self.synced:
            # One spawn+sync round per increment: round 0's write
            # happens-before round 1's job via the sync edge.
            for i in range(2):
                yield from runtime.run_subtask(master, ("round", i))
        else:
            # Both increments as concurrent sibling jobs: racy.
            yield from runtime.run_subtask(master, ("fanout",))
        return counter.value(master.rank)

    # -- structure ---------------------------------------------------------
    def is_leaf(self, task: Any) -> bool:
        return task[0] == "write"

    def divide(self, task: Any) -> Sequence[Any]:
        if task[0] == "fanout":
            return [("write", 0), ("write", 1)]
        return [("write", task[1])]

    def combine(self, task: Any, results: List[Any]) -> Any:
        return results

    # -- costs -------------------------------------------------------------
    def task_bytes(self, task: Any) -> float:
        return 64.0

    def result_bytes(self, task: Any) -> float:
        return 8.0

    def leaf_flops(self, task: Any) -> float:
        return 1e6

    # -- leaf --------------------------------------------------------------
    def leaf(self, task: Any, ctx: LeafContext) -> Generator:
        counter = ctx.runtime.shared_object("counter")
        yield from ctx.node.cpu_compute(self.leaf_flops(task),
                                        label="fixture-leaf")
        yield from counter.invoke(ctx.rank, _increment, 1, nbytes=8.0,
                                  task=ctx.task_id)
        # No read-back here: the fixture's expected verdict is exactly one
        # write/write race between the sibling jobs (a read would add
        # read/write pairs against the sibling's broadcast write).
        return task[1] if len(task) > 1 else None


def run_fixture(synced: bool = False, seed: int = 42,
                detect_races: bool = True, obs: bool = False):
    """Run the fixture on a two-node CPU cluster; returns the runtime.

    ``runtime.race_detector.reports`` holds the sanitizer's verdict:
    exactly one write/write race on ``"counter"`` for the racy variant,
    empty for the synced one.
    """
    cluster_config = ClusterConfig(name="race-fixture-2", nodes=[(), ()])
    cluster = SimCluster(cluster_config, obs_enabled=obs)
    app = SharedCounterApp(synced=synced)
    runtime = SatinRuntime(
        cluster, app,
        RuntimeConfig(seed=seed, detect_races=detect_races))
    runtime.run(("root",))
    return runtime
