"""``python -m repro analyze`` — run the determinism sanitizer.

Two prongs, selectable independently:

* ``--static`` — the REP1xx AST lints over the installed ``repro``
  package (or ``--root PATH``), filtered through inline suppressions and
  the checked-in baseline.  ``--write-baseline`` regenerates the baseline
  from the current findings instead of failing on them.
* ``--races APP`` — run one application with the happens-before race
  sanitizer attached (``detect_races=True``) and report every ``REP201``
  race.  ``APP`` is a builtin (kmeans, matmul, nbody, raytracer — all
  expected silent), or the demonstration fixtures ``race-demo`` (two
  unsynchronized sibling writes; exits 1 by design) and
  ``race-demo-synced`` (the fixed variant; silent).
* ``--all`` — the static pass plus a race-sanitized run of every builtin
  application.

Exit status: 0 clean, 1 findings, 2 usage error — the same convention as
``python -m repro lint``.  This module is imported lazily by
:mod:`repro.__main__` (the race prong imports the runtime stack).

Usage::

    python -m repro analyze --static
    python -m repro analyze --static --json
    python -m repro analyze --static --write-baseline
    python -m repro analyze --races raytracer
    python -m repro analyze --races race-demo      # demonstrates a race
    python -m repro analyze --all
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from .findings import Finding, has_errors, render_json, render_text
from .static import DEFAULT_BASELINE_PATH, Baseline, analyze_tree

__all__ = ["RACE_APPS", "analyze_main", "run_race_sanitizer"]


def _builtin_runner(app_name: str) -> Callable[[int], Any]:
    def run(seed: int) -> Any:
        from ..core.runtime import CashmereConfig
        from ..obs.cli import TRACE_APPS, demo_cluster
        from ..apps.base import run_cashmere
        app = TRACE_APPS[app_name]()
        _, runtime, _ = run_cashmere(
            app, demo_cluster(), app.root_task(), optimized=True,
            config=CashmereConfig(seed=seed, detect_races=True),
            return_runtime=True)
        return runtime
    return run


def _fixture_runner(synced: bool) -> Callable[[int], Any]:
    def run(seed: int) -> Any:
        from .fixture_app import run_fixture
        return run_fixture(synced=synced, seed=seed, detect_races=True)
    return run


#: app name -> runner(seed) returning the finished runtime (with detector)
RACE_APPS: Dict[str, Callable[[int], Any]] = {
    "kmeans": _builtin_runner("kmeans"),
    "matmul": _builtin_runner("matmul"),
    "raytracer": _builtin_runner("raytracer"),
    "nbody": _builtin_runner("nbody"),
    "race-demo": _fixture_runner(synced=False),
    "race-demo-synced": _fixture_runner(synced=True),
}


def run_race_sanitizer(app_name: str, seed: int = 42) -> List[Finding]:
    """Run ``app_name`` with the sanitizer attached; returns its findings."""
    try:
        runner = RACE_APPS[app_name]
    except KeyError:
        raise KeyError(f"unknown app {app_name!r}; known: "
                       f"{', '.join(sorted(RACE_APPS))}") from None
    runtime = runner(seed)
    return runtime.race_detector.findings()


def analyze_main(static: bool = False, races: Optional[str] = None,
                 all_checks: bool = False, as_json: bool = False,
                 root: Optional[pathlib.Path] = None,
                 baseline_path: Optional[pathlib.Path] = None,
                 write_baseline: bool = False, seed: int = 42) -> int:
    """Entry point of the ``analyze`` subcommand.  Returns the exit status."""
    if not (static or races or all_checks):
        print("nothing to analyze: give --static, --races APP, or --all",
              file=sys.stderr)
        return 2
    baseline_path = baseline_path or DEFAULT_BASELINE_PATH
    sections: List[Tuple[str, List[Finding]]] = []

    if static or all_checks:
        if write_baseline:
            findings = analyze_tree(root)
            Baseline.from_findings(findings).save(baseline_path)
            print(f"wrote {baseline_path} "
                  f"({len(findings)} accepted finding(s))")
            if races is None and not all_checks:
                return 0
        else:
            baseline = Baseline.load(baseline_path)
            sections.append(
                ("static", analyze_tree(root, baseline=baseline)))

    race_targets: List[str] = []
    if races is not None:
        race_targets.append(races)
    if all_checks:
        race_targets.extend(n for n in ("kmeans", "matmul", "nbody",
                                        "raytracer")
                            if n not in race_targets)
    for app_name in race_targets:
        try:
            findings = run_race_sanitizer(app_name, seed=seed)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        sections.append((f"races:{app_name}", findings))

    all_findings = [f for _, findings in sections for f in findings]
    failed = has_errors(all_findings)
    if as_json:
        report = [{"section": name,
                   "findings": json.loads(render_json(findings))["findings"]}
                  for name, findings in sections]
        print(json.dumps({"ok": not failed, "sections": report}, indent=2))
    else:
        for name, findings in sections:
            if findings:
                print(f"== {name} ==")
                print(render_text(findings, source_name=name))
        n_err = sum(1 for f in all_findings if f.severity.value == "error")
        status = "FAILED" if failed else "OK"
        print(f"analyze {status}: {len(sections)} check(s), "
              f"{n_err} error(s), {len(all_findings) - n_err} warning(s)")
    return 1 if failed else 0
