"""The static prong of the determinism sanitizer: AST lints over the runtime.

Every load-bearing subsystem of the reproduction rests on the invariant
that seeded event streams are byte-identical.  This module checks the
*runtime source itself* for the hazards that silently break it:

========  =========================================================
code      meaning
========  =========================================================
REP101    process-global / unseeded randomness
REP102    wall-clock read outside whitelisted bench/CLI modules
REP103    unordered set/dict iteration reaching an ordering-
          sensitive sink (taint walk)
REP104    ``id()``/``hash()`` in comparisons or sort keys
REP105    mutable default argument
REP106    ``os.environ`` read in a hot runtime path
========  =========================================================

The REP103 *taint walk* is intraprocedural and statement-ordered: set
expressions (literals, ``set()``/``frozenset()`` calls, comprehensions,
set operators) are unordered *sources*; taint propagates through
assignments, ``list()``/``tuple()``/``iter()`` wrappers, comprehensions
and dict views over tainted receivers; ``sorted()``/``min()``/``max()``
and order-insensitive reductions (``sum``, ``len``, ``any``, ``all``)
*sanitize*.  A finding fires when a tainted value is passed to an
ordering-sensitive *sink* (``heapq.heappush``, ``.push()``,
``.schedule()``, ``env.process()``, ``.emit()``, ``.send()``, …) or when
a sink is called inside a ``for`` loop over a tainted iterable.  Plain
dict iteration is **not** a source — CPython dicts are insertion-ordered
— but dicts built from tainted data (``DictComp`` over a set,
``dict.fromkeys(a_set)``) carry the taint into their views.

Justified hazards are acknowledged inline (``# analyze: ignore[REP102]
why``) or absorbed by a per-module baseline file; see docs/analyze.md.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding, filter_suppressed, scan_suppressions

__all__ = [
    "AnalyzerConfig",
    "DEFAULT_CONFIG",
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "analyze_source",
    "analyze_file",
    "analyze_tree",
    "source_root",
]


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

#: functions of the process-global ``random`` module (REP101) — using any
#: of them couples the run to interpreter-global state
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes", "seed",
})

#: constructors of the seedable numpy generator API — fine when seeded
_NUMPY_SEEDABLE = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "MT19937", "SFC64", "BitGenerator", "RandomState",
})

#: wall-clock reads (REP102), by resolved dotted name
_WALLCLOCK_FUNCS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: fully-qualified sinks (REP103)
_QUALIFIED_SINKS = frozenset({
    "heapq.heappush", "heapq.heappushpop", "heapq.heapify",
})

#: method-name sinks (REP103): calls that schedule, enqueue or publish in
#: argument order
_METHOD_SINKS = frozenset({
    "push", "send", "emit", "schedule", "process", "dispatch",
    "broadcast", "put", "put_nowait", "succeed", "submit",
})

#: sanitizers: order-insensitive consumers / explicit ordering
_SANITIZERS = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "frozenset.issubset",
})

#: taint-propagating wrappers: preserve the (nondeterministic) order
_ORDER_PRESERVING = frozenset({
    "list", "tuple", "iter", "reversed", "enumerate", "zip", "map", "filter",
})

#: mutable-default constructors (REP105)
_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
    "deque", "bytearray",
})


@dataclass(frozen=True)
class AnalyzerConfig:
    """Scope knobs of the static pass.

    Patterns are :mod:`fnmatch` globs over *dotted module names*
    (``repro.sweep.cli``).  A source with no known module name (a
    standalone file or snippet) is treated as hot and non-whitelisted,
    so every rule applies — that is what the golden tests rely on.
    """

    #: modules allowed to read the wall clock (REP102): the CLI entry
    #: points and the bench records, which genuinely report host time
    wallclock_ok: Tuple[str, ...] = (
        "repro.__main__",
        "repro.*.cli",
        "repro.*.bench",
        "benchmarks.*",
    )
    #: modules whose ``os.environ`` reads are hot-path hazards (REP106);
    #: everything else (CLIs, the sweep cache resolving its default dir)
    #: may read ambient configuration
    environ_hot: Tuple[str, ...] = (
        "repro.sim.*", "repro.satin.*", "repro.core.*",
        "repro.devices.*", "repro.cluster.*", "repro.serve.*",
        "repro.obs.*", "repro.apps.*",
    )

    def wallclock_allowed(self, module: Optional[str]) -> bool:
        return module is not None and _matches(module, self.wallclock_ok)

    def environ_is_hot(self, module: Optional[str]) -> bool:
        return module is None or _matches(module, self.environ_hot)


def _matches(module: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch.fnmatchcase(module, pat) for pat in patterns)


DEFAULT_CONFIG = AnalyzerConfig()


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chain as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Scope:
    """Per-function (or module) taint state for the REP103 walk."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.tainted: Set[str] = set(parent.tainted) if parent else set()
        #: lines of ``for`` loops over tainted iterables we are inside of
        self.loop_stack: List[int] = []


class _Analyzer(ast.NodeVisitor):
    def __init__(self, module: Optional[str], config: AnalyzerConfig):
        self.module = module
        self.config = config
        self.findings: List[Finding] = []
        #: alias -> canonical dotted module/class path ("np" -> "numpy")
        self.modules: Dict[str, str] = {}
        #: name -> canonical dotted function path ("shuffle" -> "random.shuffle")
        self.functions: Dict[str, str] = {}
        self.scope = _Scope()

    # -- bookkeeping -------------------------------------------------------
    def _report(self, code: str, node: ast.AST, message: str,
                hint: Optional[str] = None) -> None:
        self.findings.append(Finding(
            code=code, line=getattr(node, "lineno", 1), message=message,
            hint=hint, origin=self.module))

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a call target, through import aliases."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.modules:
            base = self.modules[head]
            return f"{base}.{rest}" if rest else base
        if not rest and head in self.functions:
            return self.functions[head]
        return dotted

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.partition(".")[0]] = (
                alias.name if alias.asname else alias.name.partition(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                target = f"{node.module}.{alias.name}"
                bound = alias.asname or alias.name
                # ``from datetime import datetime`` binds a class usable
                # like a module prefix; track both maps.
                self.modules.setdefault(bound, target)
                self.functions[bound] = target
        self.generic_visit(node)

    # -- function definitions (REP105 + new taint scope) --------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]:
            if self._is_mutable_literal(default):
                self._report(
                    "REP105", default,
                    "mutable default argument "
                    f"({ast.unparse(default)}) is shared across calls",
                    hint="default to None and create the object inside")

    def _is_mutable_literal(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self._resolve(node.func) or ""
            return name.rpartition(".")[2] in _MUTABLE_CTORS
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _handle_function(self, node) -> None:
        self._check_defaults(node)
        for decorator in node.decorator_list:
            self.visit(decorator)
        for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]:
            self.visit(default)
        outer, self.scope = self.scope, _Scope(self.scope)
        # set-annotated parameters enter the function tainted
        for arg in list(node.args.args) + list(node.args.kwonlyargs) \
                + list(node.args.posonlyargs):
            if arg.annotation is not None and \
                    self._annotation_is_set(arg.annotation):
                self.scope.tainted.add(arg.arg)
        for stmt in node.body:
            self.visit(stmt)
        self.scope = outer

    @staticmethod
    def _annotation_is_set(node: ast.AST) -> bool:
        base = node.value if isinstance(node, ast.Subscript) else node
        dotted = _dotted(base) or ""
        return dotted.rpartition(".")[2] in ("set", "Set", "frozenset",
                                             "FrozenSet", "AbstractSet",
                                             "MutableSet")

    # -- taint: sources and propagation --------------------------------------
    def _is_unordered(self, node: ast.AST) -> bool:
        """Does ``node`` evaluate to an unordered (or taint-carrying) value?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.scope.tainted
        if isinstance(node, ast.IfExp):
            return self._is_unordered(node.body) or \
                self._is_unordered(node.orelse)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return self._is_unordered(node.left) or \
                self._is_unordered(node.right)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return any(self._is_unordered(gen.iter)
                       for gen in node.generators)
        if isinstance(node, ast.Starred):
            return self._is_unordered(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            name = self._resolve(func)
            tail = (name or "").rpartition(".")[2]
            if tail in ("set", "frozenset"):
                return True
            if name in _SANITIZERS or tail in _SANITIZERS:
                return False
            if tail in _ORDER_PRESERVING:
                return any(self._is_unordered(a) for a in node.args)
            if isinstance(func, ast.Attribute):
                recv = func.value
                method = func.attr
                if self._is_unordered(recv):
                    # views, copies and set algebra over tainted receivers
                    if method in ("keys", "values", "items", "copy", "pop",
                                  "union", "difference", "intersection",
                                  "symmetric_difference"):
                        return True
                if method == "fromkeys" and node.args and \
                        self._is_unordered(node.args[0]):
                    return True
            return False
        return False

    # -- taint: sinks --------------------------------------------------------
    def _sink_name(self, node: ast.Call) -> Optional[str]:
        name = self._resolve(node.func)
        if name in _QUALIFIED_SINKS:
            return name
        tail = (name or "").rpartition(".")[2]
        if tail in ("heappush", "heappushpop", "heapify"):
            return tail
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _METHOD_SINKS:
            return node.func.attr
        return None

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng(node)
        self._check_wallclock(node)
        self._check_environ_call(node)
        self._check_sort_keys(node)
        sink = self._sink_name(node)
        if sink is not None:
            tainted_arg = next(
                (a for a in node.args if self._is_unordered(a)), None)
            if tainted_arg is not None:
                self._report(
                    "REP103", node,
                    f"unordered value ({ast.unparse(tainted_arg)}) reaches "
                    f"ordering-sensitive sink {sink}()",
                    hint="impose an order first, e.g. sorted(...)")
            elif self.scope.loop_stack:
                self._report(
                    "REP103", node,
                    f"ordering-sensitive sink {sink}() called inside "
                    f"iteration over an unordered set/dict "
                    f"(loop at line {self.scope.loop_stack[-1]})",
                    hint="iterate a sorted(...) copy instead")
        # track list mutations inside unordered loops: the list inherits
        # the nondeterministic order
        if self.scope.loop_stack and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("append", "add", "extend", "insert") \
                and isinstance(node.func.value, ast.Name):
            self.scope.tainted.add(node.func.value.id)
        self.generic_visit(node)

    # -- statements driving the taint state ----------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        tainted = self._is_unordered(node.value)
        for target in node.targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    if tainted:
                        self.scope.tainted.add(name_node.id)
                    else:
                        self.scope.tainted.discard(name_node.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if (node.value is not None and self._is_unordered(node.value)) \
                    or (node.value is None
                        and self._annotation_is_set(node.annotation)):
                self.scope.tainted.add(node.target.id)
            else:
                self.scope.tainted.discard(node.target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) and \
                self._is_unordered(node.value):
            self.scope.tainted.add(node.target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        iter_tainted = self._is_unordered(node.iter)
        self.visit(node.iter)
        if iter_tainted:
            self.scope.loop_stack.append(node.lineno)
        for stmt in node.body:
            self.visit(stmt)
        if iter_tainted:
            self.scope.loop_stack.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        # comprehensions over tainted iterables are handled as expressions
        # (_is_unordered); nothing statement-level to do here
        self.generic_visit(node)

    # -- REP101: process-global randomness -----------------------------------
    def _check_rng(self, node: ast.Call) -> None:
        name = self._resolve(node.func)
        if name is None:
            return
        if name.startswith("random."):
            tail = name[len("random."):]
            if tail in _GLOBAL_RANDOM_FUNCS:
                self._report(
                    "REP101", node,
                    f"call to the process-global RNG: random.{tail}()",
                    hint="use a seeded random.Random(seed) instance")
                return
            if tail == "SystemRandom":
                self._report("REP101", node,
                             "random.SystemRandom() is entropy-backed and "
                             "never reproducible",
                             hint="use a seeded random.Random(seed)")
                return
            if tail == "Random" and not node.args and not node.keywords:
                self._report("REP101", node,
                             "random.Random() without a seed draws from "
                             "OS entropy",
                             hint="pass an explicit seed")
                return
        if name.startswith("numpy.random.") or name.startswith("np.random."):
            tail = name.rpartition(".")[2]
            if tail not in _NUMPY_SEEDABLE:
                self._report(
                    "REP101", node,
                    f"legacy global numpy RNG: numpy.random.{tail}()",
                    hint="use numpy.random.default_rng(seed)")
                return
            if tail == "default_rng" and not node.args and not node.keywords:
                self._report("REP101", node,
                             "numpy.random.default_rng() without a seed "
                             "draws from OS entropy",
                             hint="pass an explicit seed")

    # -- REP102: wall clock ---------------------------------------------------
    def _check_wallclock(self, node: ast.Call) -> None:
        if self.config.wallclock_allowed(self.module):
            return
        name = self._resolve(node.func)
        if name in _WALLCLOCK_FUNCS:
            self._report(
                "REP102", node,
                f"wall-clock read: {name}()",
                hint="use the simulation clock (env.now) or accept an "
                     "injected clock callable")

    # -- REP106: os.environ ---------------------------------------------------
    def _check_environ_call(self, node: ast.Call) -> None:
        if not self.config.environ_is_hot(self.module):
            return
        name = self._resolve(node.func)
        if name == "os.getenv":
            self._report("REP106", node,
                         "os.getenv() read in a hot runtime path",
                         hint="thread configuration through the config "
                              "object instead of ambient process state")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.config.environ_is_hot(self.module):
            name = self._resolve(node)
            if name == "os.environ" or (
                    name is not None and name.startswith("os.environ.")):
                self._report("REP106", node,
                             "os.environ read in a hot runtime path",
                             hint="thread configuration through the config "
                                  "object instead of ambient process state")
                return  # do not descend: one finding per access
        self.generic_visit(node)

    # -- REP104: identity-based ordering --------------------------------------
    def _contains_identity_call(self, node: ast.AST) -> Optional[ast.Call]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                    and sub.func.id in ("id", "hash") \
                    and sub.func.id not in self.functions:
                return sub
        return None

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(not isinstance(op, (ast.Eq, ast.NotEq, ast.Is, ast.IsNot,
                                   ast.In, ast.NotIn))
               for op in node.ops):
            for operand in [node.left] + list(node.comparators):
                call = self._contains_identity_call(operand)
                if call is not None:
                    self._report(
                        "REP104", call,
                        f"{call.func.id}() used in an ordering comparison: "
                        "CPython object identity varies across runs",
                        hint="compare a stable attribute (ids you assign, "
                             "names, sequence numbers)")
                    break
        self.generic_visit(node)

    def _check_sort_keys(self, node: ast.Call) -> None:
        name = self._resolve(node.func) or ""
        tail = name.rpartition(".")[2]
        if tail not in ("sorted", "sort", "min", "max"):
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            value = kw.value
            call = self._contains_identity_call(value)
            if call is None and isinstance(value, ast.Name) and \
                    value.id in ("id", "hash"):
                call = node
            if call is not None:
                self._report(
                    "REP104", kw.value,
                    f"{tail}() key uses object identity "
                    "(id()/hash()): ordering varies across runs",
                    hint="key on a stable attribute instead")


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

DEFAULT_BASELINE_PATH = pathlib.Path(__file__).with_name("baseline.json")


@dataclass
class Baseline:
    """Accepted findings per (module, code): ``counts[module][code] -> n``.

    The baseline absorbs up to ``n`` findings of a code in a module, so a
    known, audited debt does not block CI while *new* findings of the same
    code in the same module still fail the gate.  Format on disk: one JSON
    object, sorted keys, written by ``repro analyze --static
    --write-baseline``.
    """

    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        return cls(counts={str(m): {str(c): int(n) for c, n in codes.items()}
                           for m, codes in data.items()})

    def save(self, path: pathlib.Path) -> None:
        path.write_text(json.dumps(self.counts, indent=2, sort_keys=True)
                        + "\n")

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[str, Dict[str, int]] = {}
        for f in findings:
            module = f.origin or "<unknown>"
            per = counts.setdefault(module, {})
            per[f.code] = per.get(f.code, 0) + 1
        return cls(counts=counts)

    def filter(self, findings: Sequence[Finding]) -> List[Finding]:
        """Drop findings covered by the baseline; keep the overflow."""
        budget = {(m, c): n for m, codes in self.counts.items()
                  for c, n in codes.items()}
        out: List[Finding] = []
        for f in sorted(findings, key=Finding.sort_key):
            key = (f.origin or "<unknown>", f.code)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                out.append(f)
        return out


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def source_root() -> pathlib.Path:
    """The installed ``repro`` package directory (default analysis root)."""
    return pathlib.Path(__file__).resolve().parents[1]


def analyze_source(source: str, *, module: Optional[str] = None,
                   filename: str = "<source>",
                   config: AnalyzerConfig = DEFAULT_CONFIG) -> List[Finding]:
    """All REP1xx findings for one Python source, suppression-filtered.

    ``module`` is the dotted module name used for whitelist decisions and
    finding origins; ``None`` (a standalone snippet) applies every rule.
    Raises :class:`SyntaxError` for source that does not parse.
    """
    tree = ast.parse(source, filename=filename)
    analyzer = _Analyzer(module=module, config=config)
    analyzer.visit(tree)
    findings = filter_suppressed(analyzer.findings,
                                 scan_suppressions(source))
    return sorted(findings, key=Finding.sort_key)


def _module_name(path: pathlib.Path, root: pathlib.Path) -> Optional[str]:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return None
    parts = (root.name,) + rel.parts[:-1]
    stem = rel.parts[-1][:-3] if rel.parts[-1].endswith(".py") \
        else rel.parts[-1]
    if stem != "__init__":
        parts = parts + (stem,)
    return ".".join(parts)


def analyze_file(path: pathlib.Path, *,
                 root: Optional[pathlib.Path] = None,
                 config: AnalyzerConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Findings for one file; the module name is derived relative to
    ``root`` (default: the installed ``repro`` package)."""
    root = root if root is not None else source_root()
    module = _module_name(path, root)
    return analyze_source(path.read_text(), module=module,
                          filename=str(path), config=config)


def analyze_tree(root: Optional[pathlib.Path] = None, *,
                 config: AnalyzerConfig = DEFAULT_CONFIG,
                 baseline: Optional[Baseline] = None) -> List[Finding]:
    """Findings for every ``*.py`` under ``root``, baseline-filtered.

    Files are visited in sorted order so output (and the baseline format)
    is stable.
    """
    root = root if root is not None else source_root()
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(analyze_file(path, root=root, config=config))
    if baseline is not None:
        findings = baseline.filter(findings)
    return sorted(findings, key=Finding.sort_key)
