"""Tenants: configuration, quotas and per-tenant accounting.

A *tenant* is one traffic source sharing the serve cluster.  Each tenant
has a weight (its fair share), an optional strict priority level, and two
quotas that implement backpressure:

* ``max_queued`` — the bounded depth of the tenant's admission queue;
  submissions beyond it bounce with ``RetryLater("tenant-queue-full")``,
* ``max_in_flight`` — how many of the tenant's jobs may be admitted or
  running at once; the admission policy skips tenants at their quota, and
  submissions are bounced once ``queued + in_flight`` would exceed
  ``max_queued + max_in_flight`` (``RetryLater("tenant-quota")``).

Accounting is closed by construction: **every** submission increments
``submitted`` and ends in exactly one of ``rejected`` or a terminal state
(``done``/``failed``/``cancelled``), so at any quiescent point

    submitted == rejected + queued + in_flight + done + failed + cancelled

— the invariant the hypothesis property suite drives at random.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

__all__ = ["TenantConfig", "TenantState", "build_tenant"]


@dataclass(frozen=True)
class TenantConfig:
    """Static description of one tenant."""

    name: str
    #: fair-share weight (relative share of cluster admissions)
    weight: float = 1.0
    #: strict-priority level (higher wins under the strict-priority policy)
    priority: int = 0
    #: bounded admission-queue depth (backpressure)
    max_queued: int = 64
    #: admitted + running jobs allowed at once (quota)
    max_in_flight: int = 8

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")
        if self.max_queued < 1 or self.max_in_flight < 1:
            raise ValueError(
                f"tenant {self.name!r}: quotas must be >= 1")


class TenantState:
    """Live state of one tenant: queue, quota usage, accounting, vtime."""

    def __init__(self, config: TenantConfig):
        self.config = config
        #: FIFO admission queue of JobRecord (bounded by max_queued)
        self.queue: Deque[Any] = deque()
        #: admitted + running jobs (quota usage)
        self.in_flight = 0
        #: weighted virtual time of the fair-share policy (stride scheduler)
        self.vtime = 0.0
        #: monotone per-tenant sequence of *accepted* submissions — the
        #: per-job seed derives from it, so replays are independent of the
        #: global arrival interleaving across tenants
        self.accepted_seq = 0
        # -- accounting (closed: every submission ends in exactly one bin) --
        self.submitted = 0
        self.rejected = 0
        self.done = 0
        self.failed = 0
        self.cancelled = 0

    # -- derived -----------------------------------------------------------
    @property
    def name(self) -> str:
        return self.config.name

    @property
    def backlogged(self) -> bool:
        """Whether the tenant has queued jobs waiting for admission."""
        return len(self.queue) > 0

    @property
    def eligible(self) -> bool:
        """Backlogged *and* below the in-flight quota: admissible now."""
        return self.backlogged and self.in_flight < self.config.max_in_flight

    @property
    def terminal(self) -> int:
        return self.done + self.failed + self.cancelled

    def accounting(self) -> Dict[str, int]:
        """Plain-data accounting snapshot."""
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "queued": len(self.queue),
            "in_flight": self.in_flight,
            "done": self.done,
            "failed": self.failed,
            "cancelled": self.cancelled,
        }

    def accounting_closed(self) -> bool:
        """The closure invariant: nothing ever leaks from the books."""
        return self.submitted == (self.rejected + len(self.queue)
                                  + self.in_flight + self.terminal)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TenantState {self.name} q={len(self.queue)} "
                f"in_flight={self.in_flight} vtime={self.vtime:.3f}>")


def build_tenant(name: str, *, weight: float = 1.0, priority: int = 0,
                 max_queued: int = 64, max_in_flight: int = 8,
                 config: Optional[TenantConfig] = None) -> TenantState:
    """Convenience constructor used by the service and the CLI."""
    return TenantState(config or TenantConfig(
        name=name, weight=weight, priority=priority,
        max_queued=max_queued, max_in_flight=max_in_flight))
