"""The job service core: admission, lifecycle, accounting, metrics.

:class:`JobService` is deliberately **synchronous and deterministic** — it
owns every state transition of the job lifecycle

    queued -> admitted -> running -> done | failed | cancelled

but performs no I/O and never sleeps.  The asyncio front-end
(:mod:`repro.serve.server`) and the sliced simulation executor
(:mod:`repro.serve.executor`) drive it from the event loop; the hypothesis
property suite drives it directly with a fake clock.  One core, two
harnesses.

Backpressure is typed, never exceptional: :meth:`submit` returns
:class:`~repro.serve.protocol.RetryLater` when a bounded queue or quota
would be exceeded, and the caller (or remote client) retries.  Admission is
delegated to a pluggable :class:`~repro.serve.admission.AdmissionPolicy`
from the unified scheduling-policy registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..obs.metrics import MetricsRegistry
from .admission import AdmissionPolicy, create_admission_policy
from .cluster import ClusterPool
from .jobs import JobRecord, JobSpec, derive_seed, expected_result
from .protocol import JobReport, JobState, RetryLater, ServeError, Submitted
from .tenants import TenantConfig, TenantState

__all__ = ["ServeConfig", "JobService"]

SubmitResponse = Union[Submitted, RetryLater, ServeError]


@dataclass
class ServeConfig:
    """Configuration surface of the job service."""

    #: size of the shared simulated cluster pool
    nodes: int = 8
    #: device tuple every pool node carries (() = CPU-only Satin pool)
    devices: Tuple[str, ...] = ()
    #: admission policy name (registry kind ``"admission"``)
    admission_policy: str = "fair-share"
    #: global in-system ceiling (queued + in-flight across all tenants);
    #: beyond it submissions bounce with ``RetryLater("server-busy")``
    max_queue_depth: int = 4096
    #: session seed; per-job seeds derive from it deterministically
    seed: int = 42
    #: engine events per cooperative simulation slice (executor granularity)
    slice_events: int = 200
    #: check closed-form expected results where the catalog has one
    validate_results: bool = True
    #: tenants to create at startup
    tenants: List[TenantConfig] = field(default_factory=list)


class JobService:
    """Multi-tenant admission control and job lifecycle over one pool."""

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 clock: Optional[Callable[[], float]] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.config = config or ServeConfig()
        self.clock = clock if clock is not None else time.monotonic
        self.pool = ClusterPool(self.config.nodes,
                                devices=self.config.devices)
        self.policy: AdmissionPolicy = create_admission_policy(
            self.config.admission_policy)
        self.tenants: Dict[str, TenantState] = {}
        for tc in self.config.tenants:
            self.add_tenant(config=tc)
        self.jobs: Dict[int, JobRecord] = {}
        self._next_job_id = 0
        self.draining = False
        #: one entry per admission decision: the fairness audit trail.
        #: ``eligible`` snapshots which tenants were admissible at decision
        #: time, so fair-share entitlement can be measured over exactly the
        #: window where tenants actually competed.
        self.admission_log: List[Dict[str, Any]] = []
        # -- metrics -------------------------------------------------------
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._jobs_total = r.counter(
            "serve_jobs_total",
            "job lifecycle transitions, by tenant and state")
        self._retry_total = r.counter(
            "serve_retry_later_total",
            "backpressured submissions, by tenant and reason")
        self._queue_wait = r.histogram(
            "serve_queue_wait_seconds",
            "submit -> admitted wait, by tenant")
        self._run_wall = r.histogram(
            "serve_run_wall_seconds",
            "running -> terminal wall time, by tenant")
        self._queue_depth = r.gauge(
            "serve_queue_depth", "queued jobs right now, by tenant")
        self._pool_gauge = r.gauge(
            "serve_pool_nodes", "pool capacity, by liveness/lease state")
        self._crash_total = r.counter(
            "serve_node_crashes_total", "pool nodes crashed by churn")
        self._update_pool_gauges()

    # -- tenants -----------------------------------------------------------
    def add_tenant(self, name: Optional[str] = None, *,
                   weight: float = 1.0, priority: int = 0,
                   max_queued: int = 64, max_in_flight: int = 8,
                   config: Optional[TenantConfig] = None) -> TenantState:
        tc = config or TenantConfig(
            name=name or "", weight=weight, priority=priority,
            max_queued=max_queued, max_in_flight=max_in_flight)
        if not tc.name:
            raise ValueError("a tenant needs a name")
        if tc.name in self.tenants:
            raise ValueError(f"tenant {tc.name!r} already exists")
        tenant = TenantState(tc)
        self.tenants[tc.name] = tenant
        return tenant

    # -- submission (backpressure lives here) ------------------------------
    def submit(self, tenant_name: str, spec: JobSpec,
               tag: Optional[str] = None) -> SubmitResponse:
        """Accept a job into the tenant's queue, or bounce it — typed,
        never by exception."""
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            return ServeError("unknown-tenant",
                              f"no such tenant: {tenant_name!r}", tag=tag)
        if spec.nodes > len(self.pool.nodes):
            return ServeError(
                "job-too-large",
                f"job wants {spec.nodes} nodes; the pool has "
                f"{len(self.pool.nodes)}", tag=tag)
        reason = self._bounce_reason(tenant)
        if reason is not None:
            tenant.submitted += 1
            tenant.rejected += 1
            self._count_state(tenant_name, JobState.REJECTED)
            self._retry_total.inc(tenant=tenant_name, reason=reason)
            return RetryLater(reason, tenant=tenant_name, tag=tag)
        # accepted
        tenant.submitted += 1
        seq = tenant.accepted_seq
        tenant.accepted_seq += 1
        job = JobRecord(
            id=self._next_job_id, tenant=tenant_name, spec=spec,
            seed=derive_seed(self.config.seed, tenant_name, seq),
            tenant_seq=seq, tag=tag, submitted_at=self.clock())
        self._next_job_id += 1
        self.jobs[job.id] = job
        was_idle = not tenant.backlogged
        tenant.queue.append(job)
        if was_idle:
            self.policy.on_backlogged(tenant, self.tenants.values())
        self._count_state(tenant_name, JobState.QUEUED)
        self._queue_depth.set(len(tenant.queue), tenant=tenant_name)
        return Submitted(job.id, tenant_name, tag=tag)

    def _bounce_reason(self, tenant: TenantState) -> Optional[str]:
        """Why a submission must bounce right now (None = accept)."""
        if self.draining:
            return "draining"
        total_in_system = sum(
            len(t.queue) + t.in_flight for t in self.tenants.values())
        if total_in_system >= self.config.max_queue_depth:
            return "server-busy"
        cfg = tenant.config
        if len(tenant.queue) >= cfg.max_queued:
            if tenant.in_flight >= cfg.max_in_flight:
                return "tenant-quota"
            return "tenant-queue-full"
        return None

    # -- admission ---------------------------------------------------------
    def dispatch(self) -> List[JobRecord]:
        """Admit as many jobs as policy + capacity allow; return them.

        Each admitted job holds a node lease on return; the caller is
        responsible for running it (executor) and eventually calling
        :meth:`finish`.
        """
        admitted: List[JobRecord] = []
        while True:
            eligible = [t for t in self.tenants.values() if t.eligible]
            # capacity filter: a tenant only competes if its head job fits
            # in the currently free pool slice
            fitting = [t for t in eligible
                       if t.queue[0].spec.nodes <= self.pool.free_count]
            if not fitting:
                break
            chosen = self.policy.select(sorted(fitting,
                                               key=lambda t: t.name))
            if chosen is None:
                break
            job = chosen.queue.popleft()
            lease = self.pool.allocate(job.id, job.spec.nodes)
            assert lease is not None  # guaranteed by the capacity filter
            job.lease_ranks = [n.rank for n in lease]
            job.state = JobState.ADMITTED
            job.admitted_at = self.clock()
            chosen.in_flight += 1
            self.policy.on_admitted(chosen, cost=float(job.spec.nodes))
            self.admission_log.append({
                "job_id": job.id,
                "tenant": chosen.name,
                "nodes": job.spec.nodes,
                "eligible": sorted(t.name for t in eligible),
            })
            self._count_state(chosen.name, JobState.ADMITTED)
            self._queue_wait.observe(job.queue_wait_s or 0.0,
                                     tenant=chosen.name)
            self._queue_depth.set(len(chosen.queue), tenant=chosen.name)
            self._update_pool_gauges()
            admitted.append(job)
        return admitted

    # -- lifecycle ---------------------------------------------------------
    def mark_running(self, job: JobRecord) -> None:
        assert job.state is JobState.ADMITTED, job.state
        job.state = JobState.RUNNING
        job.started_at = self.clock()
        self._count_state(job.tenant, JobState.RUNNING)

    def finish(self, job: JobRecord, *, result: Any = None,
               error: Optional[str] = None, cancelled: bool = False,
               makespan_s: Optional[float] = None,
               orphans_requeued: int = 0) -> None:
        """Move an admitted/running job to its terminal state and release
        its lease.  Idempotent-hostile by design: finishing twice is a bug,
        so it asserts."""
        assert not job.terminal, f"finish() on terminal job {job.id}"
        tenant = self.tenants[job.tenant]
        job.finished_at = self.clock()
        job.makespan_s = makespan_s
        job.orphans_requeued = orphans_requeued
        if cancelled:
            job.state = JobState.CANCELLED
            tenant.cancelled += 1
        elif error is not None:
            job.state = JobState.FAILED
            job.error = error
            tenant.failed += 1
        else:
            if (self.config.validate_results
                    and (expect := expected_result(job.spec)) is not None
                    and result != expect):
                job.state = JobState.FAILED
                job.error = (f"result-mismatch: got {result!r}, "
                             f"expected {expect!r}")
                tenant.failed += 1
            else:
                job.state = JobState.DONE
                job.result = result
                tenant.done += 1
        tenant.in_flight -= 1
        self.pool.release(job.id)
        self._count_state(job.tenant, job.state)
        if job.run_wall_s is not None:
            self._run_wall.observe(job.run_wall_s, tenant=job.tenant)
        self._update_pool_gauges()

    def cancel(self, job_id: int) -> Union[JobReport, ServeError]:
        """Cancel a job.  Queued jobs cancel immediately; admitted/running
        jobs are flagged and the executor cancels them at the next slice
        boundary; terminal jobs are left as they ended."""
        job = self.jobs.get(job_id)
        if job is None:
            return ServeError("unknown-job", f"no such job: {job_id}")
        if job.state is JobState.QUEUED:
            tenant = self.tenants[job.tenant]
            tenant.queue.remove(job)
            job.state = JobState.CANCELLED
            job.finished_at = self.clock()
            tenant.cancelled += 1
            self._count_state(job.tenant, JobState.CANCELLED)
            self._queue_depth.set(len(tenant.queue), tenant=job.tenant)
        elif not job.terminal:
            job.cancel_requested = True
        return self.report(job)

    # -- drain & churn -----------------------------------------------------
    def start_drain(self) -> None:
        """Stop admitting *new submissions*; everything already accepted
        still runs to a terminal state (graceful drain)."""
        self.draining = True

    @property
    def quiescent(self) -> bool:
        """No queued or in-flight work anywhere."""
        return all(not t.backlogged and t.in_flight == 0
                   for t in self.tenants.values())

    def inject_crash(self, rank: Optional[int] = None
                     ) -> Optional[Tuple[int, Optional[int]]]:
        """Kill one pool node (churn).  Returns ``(rank, job_id)`` where
        ``job_id`` is the running job whose lease the node belonged to
        (None for a free node), or ``None`` if nothing was eligible.

        The affected job is *not* failed: the node's local rank is queued
        on ``job.pending_crashes`` and the executor injects the crash into
        the job's simulation, where Satin's orphan re-queue fault tolerance
        recovers the lost work.
        """
        if rank is None:
            rank = self.pool.pick_churn_victim()
            if rank is None:
                return None
        node = self.pool.nodes[rank]
        if not node.alive:
            return (rank, None)  # idempotent: already dead
        if node.is_master:
            raise ValueError(
                f"pool node {rank} is a job master; the master cannot crash")
        self.pool.fail(rank)
        self._crash_total.inc()
        victim_job: Optional[int] = None
        if node.job_id is not None:
            job = self.jobs[node.job_id]
            local_rank = job.lease_ranks.index(rank)
            job.pending_crashes.append(local_rank)
            victim_job = job.id
        self._update_pool_gauges()
        return (rank, victim_job)

    def restore_node(self, rank: int) -> None:
        self.pool.restore(rank)
        self._update_pool_gauges()

    # -- reporting ---------------------------------------------------------
    def report(self, job: JobRecord) -> JobReport:
        return JobReport(
            job_id=job.id, tenant=job.tenant, state=job.state.value,
            result=job.result, error=job.error,
            queue_wait_s=job.queue_wait_s, run_wall_s=job.run_wall_s,
            makespan_s=job.makespan_s,
            orphans_requeued=job.orphans_requeued, tag=job.tag,
            event_kinds=dict(job.event_kinds))

    def report_by_id(self, job_id: int) -> Union[JobReport, ServeError]:
        job = self.jobs.get(job_id)
        if job is None:
            return ServeError("unknown-job", f"no such job: {job_id}")
        return self.report(job)

    def accounting(self) -> Dict[str, Dict[str, int]]:
        return {name: t.accounting()
                for name, t in sorted(self.tenants.items())}

    def accounting_closed(self) -> bool:
        """Global closure: every tenant's books balance."""
        return all(t.accounting_closed() for t in self.tenants.values())

    def admitted_shares(self, window: Optional[List[Dict[str, Any]]] = None
                        ) -> Dict[str, float]:
        """Observed admission share per tenant over the *contested* window.

        Only admission decisions where **all** tenants were eligible count:
        that is the window where entitlement (weight / total weight) is the
        right yardstick.  Shares are node-weighted, matching the policy's
        cost accounting.
        """
        log = self.admission_log if window is None else window
        names = set(self.tenants)
        contested = [e for e in log if set(e["eligible"]) == names]
        total = sum(e["nodes"] for e in contested)
        if total == 0:
            return {name: 0.0 for name in names}
        out = {name: 0.0 for name in names}
        for e in contested:
            out[e["tenant"]] += e["nodes"]
        return {name: count / total for name, count in out.items()}

    def entitlements(self) -> Dict[str, float]:
        total = sum(t.config.weight for t in self.tenants.values())
        return {name: t.config.weight / total
                for name, t in self.tenants.items()}

    def lost_jobs(self) -> List[int]:
        """Accepted jobs that are neither queued, in flight, nor terminal —
        must always be empty; anything here leaked from the books."""
        queued = {j.id for t in self.tenants.values() for j in t.queue}
        return [job.id for job in self.jobs.values()
                if not job.terminal and job.id not in queued
                and job.state not in (JobState.ADMITTED, JobState.RUNNING)]

    # -- internals ---------------------------------------------------------
    def _count_state(self, tenant: str, state: JobState) -> None:
        self._jobs_total.inc(tenant=tenant, state=state.value)

    def _update_pool_gauges(self) -> None:
        self._pool_gauge.set(self.pool.alive_count, state="alive")
        self._pool_gauge.set(self.pool.free_count, state="free")
        self._pool_gauge.set(len(self.pool.nodes) - self.pool.alive_count,
                             state="dead")
