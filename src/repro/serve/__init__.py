"""``repro.serve`` — multi-tenant job service over the simulated cluster.

The serving stack, bottom to top:

* :mod:`~repro.serve.protocol` — typed requests/responses, NDJSON framing,
  the :class:`~repro.serve.protocol.JobState` lifecycle and the
  :class:`~repro.serve.protocol.RetryLater` typed-backpressure response,
* :mod:`~repro.serve.tenants` — tenant configs, quotas and the closed
  per-tenant accounting,
* :mod:`~repro.serve.admission` — fair-share and strict-priority admission
  policies in the unified scheduling-policy registry (kind ``"admission"``),
* :mod:`~repro.serve.cluster` — the shared node pool: leases and churn,
* :mod:`~repro.serve.service` — the synchronous, deterministic lifecycle
  core (:class:`~repro.serve.service.JobService`),
* :mod:`~repro.serve.executor` — sliced cooperative execution of each
  job's deterministic simulation,
* :mod:`~repro.serve.server` — the asyncio front-end: in-process API and
  the NDJSON socket protocol,
* :mod:`~repro.serve.scenarios` — canned burst/churn/drain/quota
  scenarios shared by the tests, CI smoke, and ``--demo``.
"""

from .admission import (AdmissionPolicy, FairShareAdmission,
                        StrictPriorityAdmission, create_admission_policy)
from .cluster import ClusterPool, PoolNode
from .executor import JobExecution, run_admitted_sync
from .jobs import JobRecord, JobSpec, ServeTreeSum, derive_seed
from .protocol import (TERMINAL_STATES, JobReport, JobState, RetryLater,
                       ServeError, Submitted, decode_line, encode_line,
                       response_from_wire)
from .server import ServeServer, SocketClient
from .service import JobService, ServeConfig
from .tenants import TenantConfig, TenantState, build_tenant

__all__ = [
    "AdmissionPolicy", "FairShareAdmission", "StrictPriorityAdmission",
    "create_admission_policy",
    "ClusterPool", "PoolNode",
    "JobExecution", "run_admitted_sync",
    "JobRecord", "JobSpec", "ServeTreeSum", "derive_seed",
    "TERMINAL_STATES", "JobReport", "JobState", "RetryLater", "ServeError",
    "Submitted", "decode_line", "encode_line", "response_from_wire",
    "ServeServer", "SocketClient",
    "JobService", "ServeConfig",
    "TenantConfig", "TenantState", "build_tenant",
]
