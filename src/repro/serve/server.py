"""Asyncio front-end of the job service.

:class:`ServeServer` is a thin concurrency shell around the synchronous
:class:`~repro.serve.service.JobService` core: every state transition
happens inside the core on the event-loop thread, so there are no locks
and no races — asyncio only provides *interleaving* (thousands of client
coroutines, hundreds of sliced job simulations, socket I/O) on one loop.

Two equivalent client surfaces:

* the **in-process API** (``submit`` / ``wait`` / ``submit_and_wait`` /
  ``cancel`` / ``drain``) returning the typed protocol objects — what the
  scenario tests and the demo drive,
* the **NDJSON socket protocol** (``start_socket``): one JSON request per
  line, one JSON response per line, same shapes via ``to_wire()``.

Backpressure composes: a ``RetryLater`` from the core is returned (or
serialized) verbatim, and :meth:`submit_and_wait` implements the polite
client loop — sleep ``retry_after_s``, resubmit.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple, Union

from .executor import JobExecution
from .jobs import JobSpec
from .protocol import (JobReport, RetryLater, ServeError, Submitted,
                       decode_line, encode_line, response_from_wire)
from .service import JobService, ServeConfig

__all__ = ["ServeServer", "SocketClient"]

#: StreamReader line limit for NDJSON framing, both directions.  One
#: response line can carry a whole Chrome trace (a few MiB for a large
#: traced job); asyncio's 64 KiB default would fail mid-protocol with
#: ``LimitOverrunError``.
LINE_LIMIT = 64 * 1024 * 1024


class ServeServer:
    """The serve front-end: admission pump, job tasks, socket protocol."""

    def __init__(self, config: Optional[ServeConfig] = None, *,
                 service: Optional[JobService] = None):
        self.service = service if service is not None else JobService(config)
        #: job id -> asyncio task driving its sliced simulation
        self._tasks: Dict[int, "asyncio.Task[Any]"] = {}
        self._waiters: Dict[int, asyncio.Event] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    # -- in-process API ----------------------------------------------------
    def submit(self, tenant: str, spec: JobSpec,
               tag: Optional[str] = None
               ) -> Union[Submitted, RetryLater, ServeError]:
        """Submit one job; admission may start it immediately."""
        resp = self.service.submit(tenant, spec, tag)
        if isinstance(resp, Submitted):
            self.pump()
        return resp

    def pump(self) -> int:
        """Admit whatever policy + capacity allow and launch those jobs."""
        admitted = self.service.dispatch()
        for job in admitted:
            ex = JobExecution(self.service, job)
            self._tasks[job.id] = asyncio.ensure_future(self._run_job(ex))
        return len(admitted)

    async def _run_job(self, ex: JobExecution) -> None:
        try:
            await ex.run_async()
        finally:
            job_id = ex.job.id
            self._tasks.pop(job_id, None)
            waiter = self._waiters.pop(job_id, None)
            if waiter is not None:
                waiter.set()
            # freed capacity: admit the next queued jobs
            self.pump()

    async def wait(self, job_id: int) -> Union[JobReport, ServeError]:
        """Await a job's terminal state and return its report."""
        job = self.service.jobs.get(job_id)
        if job is None:
            return ServeError("unknown-job", f"no such job: {job_id}")
        while not job.terminal:
            waiter = self._waiters.setdefault(job_id, asyncio.Event())
            await waiter.wait()
        return self.service.report(job)

    async def submit_and_wait(self, tenant: str, spec: JobSpec,
                              tag: Optional[str] = None,
                              max_retries: int = 10_000
                              ) -> Tuple[Any, int]:
        """The polite client: retry typed backpressure, then await.

        Returns ``(final_response, retries)`` where the response is a
        :class:`JobReport` on success, or the last :class:`RetryLater` /
        :class:`ServeError` if the job never got in.
        """
        retries = 0
        while True:
            resp = self.submit(tenant, spec, tag)
            if isinstance(resp, Submitted):
                return await self.wait(resp.job_id), retries
            if isinstance(resp, RetryLater) and retries < max_retries:
                retries += 1
                await asyncio.sleep(min(resp.retry_after_s, 0.005))
                continue
            return resp, retries

    def cancel(self, job_id: int) -> Union[JobReport, ServeError]:
        return self.service.cancel(job_id)

    def inject_crash(self, rank: Optional[int] = None):
        """Kill one pool node (chaos hook); running jobs recover in-sim."""
        return self.service.inject_crash(rank)

    async def drain(self) -> Dict[str, Dict[str, int]]:
        """Graceful drain: reject new submissions, run everything already
        accepted to a terminal state, then return the final accounting."""
        self.service.start_drain()
        while True:
            self.pump()
            tasks = list(self._tasks.values())
            if not tasks:
                break
            await asyncio.gather(*tasks, return_exceptions=True)
        # whatever is still queued can never run (e.g. the pool shrank
        # below the job's node demand) — cancel it so accounting closes
        for tenant in self.service.tenants.values():
            for job in list(tenant.queue):
                self.service.cancel(job.id)
        return self.service.accounting()

    # -- socket protocol ---------------------------------------------------
    async def start_socket(self, host: str = "127.0.0.1",
                           port: int = 0) -> Tuple[str, int]:
        """Start the NDJSON socket listener; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_client, host, port, limit=LINE_LIMIT)
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks.values()):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks.values(),
                                 return_exceptions=True)
        self._tasks.clear()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", "replace").strip()
                if not text:
                    continue
                try:
                    request = decode_line(text)
                except ValueError as exc:
                    response: Any = ServeError("bad-request", str(exc))
                else:
                    response = await self.handle_request(request)
                writer.write(encode_line(response).encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def handle_request(self, request: Dict[str, Any]) -> Any:
        """Dispatch one protocol request (shared by socket and tests)."""
        op = request.get("op")
        tag = request.get("tag")
        if op == "submit":
            try:
                spec = JobSpec.from_wire(request)
            except (TypeError, ValueError) as exc:
                return ServeError("bad-spec", str(exc), tag=tag)
            return self.submit(str(request.get("tenant", "")), spec, tag)
        if op == "wait":
            return await self.wait(int(request.get("job_id", -1)))
        if op == "status":
            return self.service.report_by_id(int(request.get("job_id", -1)))
        if op == "cancel":
            return self.cancel(int(request.get("job_id", -1)))
        if op == "trace":
            job = self.service.jobs.get(int(request.get("job_id", -1)))
            if job is None:
                return ServeError("unknown-job", "no such job", tag=tag)
            return {"ok": True, "type": "trace", "job_id": job.id,
                    "trace": job.trace, "tag": tag}
        if op == "metrics":
            return {"ok": True, "type": "metrics",
                    "accounting": self.service.accounting(),
                    "metrics": self.service.registry.snapshot(), "tag": tag}
        if op == "drain":
            accounting = await self.drain()
            return {"ok": True, "type": "drained",
                    "accounting": accounting, "tag": tag}
        return ServeError("bad-request", f"unknown op {op!r}", tag=tag)


class SocketClient:
    """Minimal NDJSON client for tests and the demo's socket leg."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "SocketClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=LINE_LIMIT)
        return self

    async def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        assert self._writer is not None and self._reader is not None
        self._writer.write(encode_line(obj).encode())
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line.decode())

    async def request_typed(self, obj: Dict[str, Any]) -> Any:
        return response_from_wire(await self.request(obj))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
