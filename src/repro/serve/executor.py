"""Sliced execution of one job's simulation.

Every admitted job runs in its own fresh deterministic simulation over the
pool slice it leased (see :mod:`repro.serve.jobs` for why: the per-job
event stream must depend only on the job's seed, never on what other
tenants are doing).  :class:`JobExecution` drives that simulation in
**cooperative slices** — step a bounded number of engine events, yield,
repeat — so a single asyncio event loop interleaves hundreds of running
jobs with socket I/O without threads.

Between slices the execution applies control actions that arrived from the
outside world:

* **churn** — pool nodes that died while the job was running
  (``job.pending_crashes``) are injected via
  :meth:`~repro.satin.runtime.SatinRuntime.crash_node`, where Satin's
  orphan re-execution recovers the lost work in-simulation,
* **cancellation** — ``job.cancel_requested`` abandons the simulation at
  the next slice boundary.

The same slicing logic runs without asyncio (:meth:`run_sync`) so the
hypothesis and determinism suites can drive it deterministically.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from ..obs.export import chrome_trace
from .jobs import JobRecord, build_execution_runtime
from .protocol import JobState
from .service import JobService

__all__ = ["JobExecution", "run_admitted_sync"]


class JobExecution:
    """One admitted job's simulation, advanced slice by slice."""

    def __init__(self, service: JobService, job: JobRecord):
        assert job.state is JobState.ADMITTED, job.state
        self.service = service
        self.job = job
        devices = [service.pool.nodes[r].devices for r in job.lease_ranks]
        self.cluster, self.runtime, self.root_task = \
            build_execution_runtime(job, devices)
        self._root_proc = None
        self._error: Optional[str] = None
        self._cancelled = False
        self._done = False

    # -- the slicing core --------------------------------------------------
    def start(self) -> None:
        """Transition to RUNNING and launch the simulation (the Cashmere
        runtime's init phase — runtime-info broadcast + kernel compile —
        completes inside ``begin()``)."""
        self.service.mark_running(self.job)
        try:
            self._root_proc = self.runtime.begin(self.root_task)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            self._error = f"{type(exc).__name__}: {exc}"
            self._done = True

    def step_slice(self) -> bool:
        """Advance one slice.  Returns True while more slices are needed."""
        if self._done:
            return False
        job = self.job
        self._apply_pending_crashes()
        if job.cancel_requested:
            self._cancelled = True
            self._done = True
            return False
        env = self.cluster.env
        root = self._root_proc
        budget = max(1, self.service.config.slice_events)
        try:
            while budget > 0 and not root.triggered:
                if env.peek() == float("inf"):
                    self._error = ("deadlock: event queue drained before "
                                   "the root task finished")
                    self._done = True
                    return False
                env.step()
                budget -= 1
        except Exception as exc:  # noqa: BLE001
            self._error = f"{type(exc).__name__}: {exc}"
            self._done = True
            return False
        if root.triggered:
            self._done = True
            return False
        return True

    def finalize(self) -> JobRecord:
        """Harvest the simulation and move the job to its terminal state."""
        job = self.job
        result = None
        makespan = None
        orphans = 0
        if (self._error is None and not self._cancelled
                and self._root_proc is not None):
            try:
                run_result = self.runtime.complete(self._root_proc)
                result = run_result.result
                makespan = self.runtime.stats.makespan_s
            except Exception as exc:  # noqa: BLE001
                self._error = f"{type(exc).__name__}: {exc}"
        orphans = self.runtime.stats.orphans_requeued
        # per-job observability artifacts travel on the record either way
        bus = self.cluster.obs
        job.events = bus.serialize()
        job.event_kinds = bus.kinds()
        if job.spec.trace:
            job.trace = chrome_trace(bus)
        self.service.finish(
            job, result=result, error=self._error,
            cancelled=self._cancelled, makespan_s=makespan,
            orphans_requeued=orphans)
        return job

    def _apply_pending_crashes(self) -> None:
        """Inject pool-node deaths into the running simulation."""
        job = self.job
        while job.pending_crashes:
            local_rank = job.pending_crashes.pop(0)
            if local_rank == 0:
                # the service never kills a leased master; belt and braces
                continue
            try:
                self.runtime.crash_node(local_rank)
            except Exception as exc:  # noqa: BLE001
                self._error = f"{type(exc).__name__}: {exc}"
                self._done = True
                return

    # -- drivers -----------------------------------------------------------
    def run_sync(self) -> JobRecord:
        """Run to a terminal state without an event loop (test harness)."""
        self.start()
        while self.step_slice():
            pass
        return self.finalize()

    async def run_async(self) -> JobRecord:
        """Run to a terminal state, yielding to the loop between slices."""
        self.start()
        while self.step_slice():
            await asyncio.sleep(0)
        return self.finalize()


def run_admitted_sync(service: JobService,
                      churn: Optional[List[Tuple[int, int]]] = None
                      ) -> List[JobRecord]:
    """Synchronous drain helper: dispatch + run until the service is quiet.

    Jobs admitted in one dispatch round run round-robin, one slice each, so
    concurrency effects (shared-pool contention, churn hitting a running
    job) are exercised even without asyncio.  ``churn`` optionally lists
    ``(after_completed_jobs, rank)`` pairs: when the number of finished jobs
    reaches the threshold, that pool node is killed via
    :meth:`JobService.inject_crash`.

    Used by the scenario/property/determinism suites; the asyncio server
    has its own pump.
    """
    churn = sorted(churn or [], key=lambda c: c[0])
    finished: List[JobRecord] = []
    running: List[JobExecution] = []
    while True:
        for job in service.dispatch():
            ex = JobExecution(service, job)
            ex.start()
            running.append(ex)
        while churn and len(finished) >= churn[0][0]:
            service.inject_crash(churn.pop(0)[1])
        if not running:
            break
        still: List[JobExecution] = []
        for ex in running:
            if ex.step_slice():
                still.append(ex)
            else:
                finished.append(ex.finalize())
                while churn and len(finished) >= churn[0][0]:
                    service.inject_crash(churn.pop(0)[1])
        running = still
    return finished
