"""The shared cluster pool behind the job service.

The service multiplexes many concurrent jobs over one pool of simulated
DAS-4-style nodes.  Each admitted job leases ``spec.nodes`` nodes for its
lifetime; its simulation runs on exactly that slice (the leased pool
nodes' device tuples become the job's
:class:`~repro.cluster.das4.ClusterConfig`).  The pool also owns
*liveness*: cluster-level churn marks a pool node dead, which (a) removes
it from the allocatable set and (b) is translated by the service into
crash injections for every running job that leased it.

Allocation is deterministic (first-fit by rank) so a fixed-seed serve
session is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["PoolNode", "ClusterPool"]


@dataclass
class PoolNode:
    """One node of the shared pool."""

    rank: int
    devices: Tuple[str, ...] = ()
    alive: bool = True
    #: id of the job currently leasing the node (None = free)
    job_id: Optional[int] = None
    #: whether the leasing job uses this node as its master (local rank 0)
    is_master: bool = field(default=False)

    @property
    def free(self) -> bool:
        return self.alive and self.job_id is None


class ClusterPool:
    """Node leases and liveness for the shared serve cluster."""

    def __init__(self, num_nodes: int,
                 devices: Tuple[str, ...] = ()):
        if num_nodes < 1:
            raise ValueError("the pool needs at least one node")
        #: every node carries the same device tuple (homogeneous pool keeps
        #: per-job event streams independent of which nodes were leased —
        #: the serve determinism contract)
        self.nodes: List[PoolNode] = [
            PoolNode(rank=r, devices=tuple(devices))
            for r in range(num_nodes)]
        #: job id -> leased nodes, in local-rank order (index 0 = master)
        self.leases: Dict[int, List[PoolNode]] = {}

    # -- capacity ----------------------------------------------------------
    @property
    def alive_count(self) -> int:
        return sum(1 for n in self.nodes if n.alive)

    @property
    def free_count(self) -> int:
        return sum(1 for n in self.nodes if n.free)

    # -- leasing -----------------------------------------------------------
    def allocate(self, job_id: int, count: int) -> Optional[List[PoolNode]]:
        """Lease ``count`` free nodes (first-fit by rank), or ``None``.

        The returned list is in local-rank order: index 0 is the job's
        master node.
        """
        if count < 1:
            raise ValueError("a job needs at least one node")
        free = [n for n in self.nodes if n.free]
        if len(free) < count:
            return None
        leased = free[:count]
        for i, node in enumerate(leased):
            node.job_id = job_id
            node.is_master = (i == 0)
        self.leases[job_id] = leased
        return leased

    def release(self, job_id: int) -> None:
        """Return a job's lease to the pool (dead nodes stay dead)."""
        for node in self.leases.pop(job_id, []):
            node.job_id = None
            node.is_master = False

    def lease_of(self, job_id: int) -> List[PoolNode]:
        return self.leases.get(job_id, [])

    # -- liveness (churn) --------------------------------------------------
    def fail(self, rank: int) -> PoolNode:
        """Mark one pool node dead; it stops being allocatable."""
        node = self.nodes[rank]
        node.alive = False
        return node

    def restore(self, rank: int) -> PoolNode:
        """Bring a dead node back (heal after churn)."""
        node = self.nodes[rank]
        node.alive = True
        return node

    def pick_churn_victim(self) -> Optional[int]:
        """Deterministically choose a node to crash.

        Preference order: (1) an alive node leased at a *non-master*
        position — crashing it exercises orphan re-queue inside a running
        job; (2) an alive free node.  Master nodes are never chosen: Satin's
        master cannot crash (the runtime refuses), mirroring the membership
        service's master lease.  Returns ``None`` when nothing is eligible.
        """
        leased_non_master = [n for n in self.nodes
                             if n.alive and n.job_id is not None
                             and not n.is_master]
        if leased_non_master:
            return leased_non_master[-1].rank
        free = [n for n in self.nodes if n.free]
        if free:
            return free[-1].rank
        return None
