"""Job specifications, records and the serve application catalog.

A submission names an application from a small catalog plus a problem size;
the service turns it into a :class:`JobRecord` that carries the whole
lifecycle: state machine position, timestamps, the node lease, the result,
and the per-job observability artifacts (serialized event stream, Chrome
trace).

The per-job simulation **seed** derives from ``(service seed, tenant name,
per-tenant acceptance sequence)`` — deliberately *not* from the global
submission order — so a fixed-seed serve session replays byte-identical
per-job event streams regardless of how client arrivals interleave across
tenants (the serve determinism contract, locked down in
``tests/test_obs_determinism.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cluster.das4 import ClusterConfig, SimCluster
from ..satin.job import DivideConquerApp
from ..satin.runtime import RuntimeConfig, SatinRuntime
from .protocol import JobState

__all__ = ["JobSpec", "JobRecord", "ServeTreeSum", "derive_seed",
           "build_execution_runtime", "APP_CATALOG"]


# ---------------------------------------------------------------------------
# specifications
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JobSpec:
    """What a client asks the cluster to compute."""

    app: str = "tree-sum"
    size: int = 1024
    leaf: int = 128
    #: nodes leased from the shared pool (local rank 0 is the master)
    nodes: int = 1
    #: request the Chrome trace of this job's run in the result
    trace: bool = False
    #: simulated flops per item (controls virtual, not wall, duration)
    flops_per_item: float = 1e5

    def __post_init__(self) -> None:
        if self.app not in APP_CATALOG:
            raise ValueError(
                f"unknown app {self.app!r}; catalog: {sorted(APP_CATALOG)}")
        if self.size < 1 or self.leaf < 1 or self.nodes < 1:
            raise ValueError("size, leaf and nodes must be >= 1")

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "JobSpec":
        """Build a spec from a submit request's fields (unknown keys are
        ignored so the protocol can grow)."""
        kwargs = {}
        for key in ("app", "size", "leaf", "nodes", "trace",
                    "flops_per_item"):
            if key in obj:
                kwargs[key] = obj[key]
        return cls(**kwargs)


@dataclass
class JobRecord:
    """One job's full lifecycle, owned by the service."""

    id: int
    tenant: str
    spec: JobSpec
    seed: int
    tenant_seq: int
    tag: Optional[str] = None
    state: JobState = JobState.QUEUED
    # -- timestamps (service clock; wall seconds) --------------------------
    submitted_at: float = 0.0
    admitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # -- placement ---------------------------------------------------------
    #: pool ranks leased to the job, local-rank order (index 0 = master)
    lease_ranks: List[int] = field(default_factory=list)
    # -- results -----------------------------------------------------------
    result: Any = None
    error: Optional[str] = None
    makespan_s: Optional[float] = None
    orphans_requeued: int = 0
    #: serialized per-job observability stream (JSON lines)
    events: Optional[str] = None
    #: kind-histogram of the stream (cheap summary for reports)
    event_kinds: Dict[str, int] = field(default_factory=dict)
    #: Chrome-trace document when the spec asked for one
    trace: Optional[Dict[str, Any]] = None
    # -- control -----------------------------------------------------------
    #: local ranks whose pool node died; the executor injects these crashes
    #: between simulation slices
    pending_crashes: List[int] = field(default_factory=list)
    cancel_requested: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED,
                              JobState.CANCELLED)

    @property
    def queue_wait_s(self) -> Optional[float]:
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    @property
    def run_wall_s(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


def derive_seed(service_seed: int, tenant: str, tenant_seq: int) -> int:
    """Deterministic per-job seed, independent of global arrival order."""
    digest = hashlib.blake2b(
        f"{service_seed}:{tenant}:{tenant_seq}".encode(),
        digest_size=4).digest()
    return int.from_bytes(digest, "big")


# ---------------------------------------------------------------------------
# the application catalog
# ---------------------------------------------------------------------------

class ServeTreeSum(DivideConquerApp):
    """Recursive range sum — the serve catalog's CPU workhorse.

    The returned value is the exact arithmetic sum of ``range(lo, hi)``, so
    every serve response is *checkable*: stealing, churn and orphan
    re-execution must never corrupt it.
    """

    name = "tree-sum"

    def __init__(self, leaf_size: int = 128, flops_per_item: float = 1e5):
        self.leaf_size = leaf_size
        self.flops_per_item = flops_per_item

    def is_leaf(self, task: Tuple[int, int]) -> bool:
        lo, hi = task
        return hi - lo <= self.leaf_size

    def divide(self, task: Tuple[int, int]):
        lo, hi = task
        mid = (lo + hi) // 2
        return [(lo, mid), (mid, hi)]

    def combine(self, task: Any, results: List[Any]) -> Any:
        return sum(results)

    def task_bytes(self, task: Any) -> float:
        return 16.0

    def result_bytes(self, task: Any) -> float:
        return 8.0

    def leaf_flops(self, task: Tuple[int, int]) -> float:
        lo, hi = task
        return (hi - lo) * self.flops_per_item

    def leaf(self, task: Tuple[int, int], ctx: Any) -> Generator:
        yield from ctx.node.cpu_compute(self.leaf_flops(task),
                                        label="serve-sum")
        lo, hi = task
        return sum(range(lo, hi))


def _build_tree_sum(spec: JobSpec):
    app = ServeTreeSum(leaf_size=spec.leaf,
                       flops_per_item=spec.flops_per_item)
    return app, (0, spec.size)


def _build_matmul(spec: JobSpec):
    from ..apps.matmul import MatmulApp
    app = MatmulApp(n=spec.size, leaf_block=spec.leaf)
    return app, app.root_task()


def expected_result(spec: JobSpec) -> Optional[Any]:
    """Closed-form expected result where one exists (used by validation)."""
    if spec.app == "tree-sum":
        return spec.size * (spec.size - 1) // 2
    return None


#: app name -> builder(spec) -> (DivideConquerApp, root_task)
APP_CATALOG = {
    "tree-sum": _build_tree_sum,
    "matmul": _build_matmul,
}


# ---------------------------------------------------------------------------
# runtime construction
# ---------------------------------------------------------------------------

def build_execution_runtime(job: JobRecord,
                            node_devices: List[Tuple[str, ...]]):
    """Build the per-job simulation: cluster, runtime and root task.

    ``node_devices`` is the leased pool nodes' device tuples in local-rank
    order.  Device-less leases run the Satin runtime (CPU leaves); leases
    with devices run the Cashmere runtime with the app's kernel library.
    The job's observability bus is always enabled — per-job event streams
    and Chrome traces are part of the serve contract.
    """
    spec = job.spec
    app, root_task = APP_CATALOG[spec.app](spec)
    cluster = SimCluster(
        ClusterConfig(name=f"serve-job{job.id}", nodes=list(node_devices)),
        obs_enabled=True)
    if any(node_devices):
        from ..core.runtime import CashmereConfig, CashmereRuntime
        library = app.build_library(optimized=True)
        runtime: SatinRuntime = CashmereRuntime(
            cluster, app, library, CashmereConfig(seed=job.seed))
    else:
        runtime = SatinRuntime(cluster, app, RuntimeConfig(seed=job.seed))
    return cluster, runtime, root_task
