"""Admission-control policies of the job service.

Which backlogged tenant gets the next free cluster slot is a scheduling
decision, so the policies live in the same unified
:class:`~repro.core.policy.SchedulingPolicy` registry as the cluster-level
steal policies and the intra-node device schedulers — registry kind
``"admission"``, selectable from config and the ``repro serve`` CLI.

* :class:`FairShareAdmission` (``fair-share``) — weighted fair queueing via
  stride scheduling.  Every tenant carries a virtual time; admitting a job
  advances it by ``cost / weight``; the backlogged tenant with the smallest
  virtual time is served next.  A tenant re-entering the backlog is clamped
  up to the smallest virtual time of the currently active tenants, so idle
  periods bank no credit and a returning tenant cannot starve the others.
  For continuously backlogged tenants the classical stride bound holds:
  weighted service lags differ by at most one maximal job cost — the
  no-starvation certificate the hypothesis suite asserts.

* :class:`StrictPriorityAdmission` (``strict-priority``) — higher
  ``TenantConfig.priority`` levels always win; *within* a level the
  fair-share rule applies, so equal-priority tenants still share fairly.

Both emit the unified ``sched_decision`` observability event (scope
``admission``) when bound to a bus.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.policy import SchedulingPolicy, create_policy, register_policy
from .tenants import TenantState

__all__ = [
    "AdmissionPolicy",
    "FairShareAdmission",
    "StrictPriorityAdmission",
    "create_admission_policy",
]


class AdmissionPolicy(SchedulingPolicy):
    """Protocol of admission policies: pick the next tenant to serve."""

    kind = "admission"

    def select(self, tenants: Sequence[TenantState]) -> Optional[TenantState]:
        """Choose which of the *eligible* tenants is admitted next.

        ``tenants`` only contains eligible tenants (backlogged and under
        their in-flight quota); returns ``None`` when the sequence is
        empty.
        """
        raise NotImplementedError

    def on_admitted(self, tenant: TenantState, cost: float = 1.0) -> None:
        """Account one admission of ``cost`` (in nodes) against a tenant."""

    def on_backlogged(self, tenant: TenantState,
                      all_tenants: Iterable[TenantState]) -> None:
        """A tenant's queue went empty -> non-empty (activation hook)."""


def _min_vtime_pick(tenants: Sequence[TenantState]) -> TenantState:
    """Smallest virtual time wins; ties break on the tenant name so the
    decision is deterministic regardless of dict/list ordering."""
    return min(tenants, key=lambda t: (t.vtime, t.name))


def _clamp_vtime(tenant: TenantState,
                 all_tenants: Iterable[TenantState]) -> None:
    """Stride-scheduler activation rule: a re-activating tenant may not
    re-enter below the active floor (idle time banks no credit)."""
    active = [t.vtime for t in all_tenants
              if t is not tenant and (t.backlogged or t.in_flight > 0)]
    if active:
        tenant.vtime = max(tenant.vtime, min(active))


@register_policy
class FairShareAdmission(AdmissionPolicy):
    """Weighted fair queueing over tenant admission queues."""

    name = "fair-share"
    emits_decisions = True

    def select(self, tenants: Sequence[TenantState]) -> Optional[TenantState]:
        if not tenants:
            return None
        chosen = _min_vtime_pick(tenants)
        self.emit_decision(
            None, chosen.name,
            vtimes={t.name: round(t.vtime, 9) for t in tenants})
        return chosen

    def on_admitted(self, tenant: TenantState, cost: float = 1.0) -> None:
        tenant.vtime += cost / tenant.config.weight

    def on_backlogged(self, tenant: TenantState,
                      all_tenants: Iterable[TenantState]) -> None:
        _clamp_vtime(tenant, all_tenants)


@register_policy
class StrictPriorityAdmission(AdmissionPolicy):
    """Higher priority level always wins; fair share within a level."""

    name = "strict-priority"
    emits_decisions = True

    def select(self, tenants: Sequence[TenantState]) -> Optional[TenantState]:
        if not tenants:
            return None
        top = max(t.config.priority for t in tenants)
        level: List[TenantState] = [
            t for t in tenants if t.config.priority == top]
        chosen = _min_vtime_pick(level)
        self.emit_decision(
            None, chosen.name, priority=top,
            vtimes={t.name: round(t.vtime, 9) for t in level})
        return chosen

    def on_admitted(self, tenant: TenantState, cost: float = 1.0) -> None:
        tenant.vtime += cost / tenant.config.weight

    def on_backlogged(self, tenant: TenantState,
                      all_tenants: Iterable[TenantState]) -> None:
        # Clamp against the tenant's own priority level only: a low-priority
        # tenant's vtime must not drag a re-activating high-priority one up.
        peers = [t for t in all_tenants
                 if t.config.priority == tenant.config.priority]
        _clamp_vtime(tenant, peers)


def create_admission_policy(name: str) -> AdmissionPolicy:
    """Instantiate a registered admission policy by name."""
    policy = create_policy("admission", name)
    assert isinstance(policy, AdmissionPolicy)
    return policy
