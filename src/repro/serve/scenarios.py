"""Canned serve scenarios: bursts, churn, drain, quota exhaustion.

One implementation, three consumers: the scenario test suite asserts on
the returned report dictionaries, the CI smoke job runs
:func:`run_demo` at reduced scale, and ``python -m repro serve --demo``
runs it at full scale and pretty-prints the report.  Keeping the
scenarios in the library (not the tests) means the demo exercising the
acceptance criteria *is* the code the tests pin down.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .jobs import JobSpec
from .protocol import JobReport, RetryLater, Submitted
from .server import ServeServer
from .service import JobService, ServeConfig
from .tenants import TenantConfig

__all__ = ["burst_server", "tenant_burst", "churn_mid_job",
           "graceful_drain", "quota_exhaustion", "run_demo",
           "format_report"]

#: (name, weight) triples of the demo tenants
DEMO_TENANTS: Tuple[Tuple[str, float], ...] = (
    ("alpha", 3.0), ("beta", 2.0), ("gamma", 1.0))


def burst_server(*, nodes: int = 9, seed: int = 42,
                 tenants: Sequence[Tuple[str, float]] = DEMO_TENANTS,
                 max_queued: int = 16, max_in_flight: int = 4,
                 admission_policy: str = "fair-share") -> ServeServer:
    """A server wired for the burst scenarios (shared by tests and demo)."""
    config = ServeConfig(
        nodes=nodes, seed=seed, admission_policy=admission_policy,
        tenants=[TenantConfig(name=name, weight=weight,
                              max_queued=max_queued,
                              max_in_flight=max_in_flight)
                 for name, weight in tenants])
    return ServeServer(config)


async def _client(server: ServeServer, tenant: str, spec: JobSpec,
                  tag: str) -> Dict[str, Any]:
    """One simulated client: submit (retrying backpressure), await result."""
    response, retries = await server.submit_and_wait(tenant, spec, tag=tag)
    ok = isinstance(response, JobReport) and response.state == "done"
    return {"tenant": tenant, "tag": tag, "ok": ok, "retries": retries,
            "state": getattr(response, "state", None),
            "response": response}


def _fairness(service: JobService) -> Dict[str, Any]:
    shares = service.admitted_shares()
    entitlements = service.entitlements()
    return {
        "shares": shares,
        "entitlements": entitlements,
        "max_abs_delta": max(
            (abs(shares[name] - entitlements[name]) for name in shares),
            default=0.0),
        "contested_decisions": sum(
            1 for e in service.admission_log
            if set(e["eligible"]) == set(service.tenants)),
    }


def _wait_quantiles(service: JobService) -> Dict[str, Optional[float]]:
    hist = service.registry.histogram("serve_queue_wait_seconds")
    return {"p50": hist.quantile(0.5), "p99": hist.quantile(0.99),
            "mean": hist.mean(), "count": hist.count()}


async def tenant_burst(server: Optional[ServeServer] = None, *,
                       clients: int = 60,
                       spec: Optional[JobSpec] = None,
                       crash_after: Optional[int] = None
                       ) -> Dict[str, Any]:
    """Burst ``clients`` concurrent submissions across all tenants.

    Clients are assigned round-robin over the tenants; each submits one
    job, retries typed backpressure, and awaits its report.  When
    ``crash_after`` is given, one pool node is killed once that many jobs
    have finished — mid-burst churn.  Returns the scenario report.
    """
    server = server or burst_server()
    spec = spec or JobSpec(size=512, leaf=64, nodes=2)
    service = server.service
    names = sorted(service.tenants)

    crash_info: Dict[str, Any] = {"requested": crash_after is not None}

    async def chaos() -> None:
        assert crash_after is not None
        while True:
            done = sum(1 for j in service.jobs.values() if j.terminal)
            if done >= crash_after:
                break
            await asyncio.sleep(0.001)
        hit = server.inject_crash()
        if hit is not None:
            rank, job_id = hit
            crash_info.update(rank=rank, job_id=job_id)

    chaos_task = (asyncio.ensure_future(chaos())
                  if crash_after is not None else None)
    results = await asyncio.gather(*(
        _client(server, names[i % len(names)], spec, tag=f"c{i}")
        for i in range(clients)))
    if chaos_task is not None:
        chaos_task.cancel()
        try:
            await chaos_task
        except asyncio.CancelledError:
            pass
    accounting = await server.drain()

    ok = sum(1 for r in results if r["ok"])
    crash_job = crash_info.get("job_id")
    if crash_job is not None:
        crash_info["job_state"] = service.jobs[crash_job].state.value
        crash_info["job_orphans"] = service.jobs[crash_job].orphans_requeued
    return {
        "clients": clients,
        "tenants": names,
        "completed_ok": ok,
        "retries_total": sum(r["retries"] for r in results),
        "lost_jobs": service.lost_jobs(),
        "accounting": accounting,
        "accounting_closed": service.accounting_closed(),
        "fairness": _fairness(service),
        "queue_wait_s": _wait_quantiles(service),
        "orphans_requeued_total": sum(
            j.orphans_requeued for j in service.jobs.values()),
        "crash": crash_info,
        "results": results,
    }


async def churn_mid_job(*, nodes: int = 6, job_nodes: int = 3,
                        jobs: int = 6, crashes: int = 2,
                        seed: int = 7) -> Dict[str, Any]:
    """Kill leased nodes while multi-node jobs are running.

    The victims are always non-master leased nodes, so the in-job recovery
    path is Satin's orphan re-execution — the job must still finish with
    the correct result.
    """
    server = burst_server(nodes=nodes, seed=seed,
                          tenants=(("alpha", 1.0), ("beta", 1.0)),
                          max_queued=jobs, max_in_flight=2)
    service = server.service
    spec = JobSpec(size=4096, leaf=64, nodes=job_nodes)
    submitted: List[int] = []
    for i in range(jobs):
        resp = server.submit(["alpha", "beta"][i % 2], spec, tag=f"j{i}")
        assert isinstance(resp, Submitted), resp
        submitted.append(resp.job_id)
    # let the admitted jobs advance into their simulations, then churn
    crash_hits: List[Tuple[int, Optional[int]]] = []
    for _ in range(crashes):
        for _ in range(20):
            await asyncio.sleep(0)
        hit = server.inject_crash()
        if hit is not None:
            crash_hits.append(hit)
    reports = [await server.wait(jid) for jid in submitted]
    accounting = await server.drain()
    return {
        "jobs": {jid: r.state for jid, r in zip(submitted, reports)},
        "results_ok": all(r.state == "done" for r in reports),
        "crash_hits": crash_hits,
        "hit_running_job": any(job_id is not None
                               for _, job_id in crash_hits),
        "orphans_requeued_total": sum(
            j.orphans_requeued for j in service.jobs.values()),
        "lost_jobs": service.lost_jobs(),
        "accounting": accounting,
        "accounting_closed": service.accounting_closed(),
        "dead_nodes": [n.rank for n in service.pool.nodes if not n.alive],
    }


async def graceful_drain(*, jobs: int = 10, seed: int = 11
                         ) -> Dict[str, Any]:
    """Drain with work still queued: everything accepted finishes, new
    submissions bounce with ``RetryLater("draining")``."""
    server = burst_server(nodes=4, seed=seed,
                          tenants=(("alpha", 1.0), ("beta", 1.0)),
                          max_queued=jobs, max_in_flight=2)
    service = server.service
    spec = JobSpec(size=256, leaf=64, nodes=2)
    ids = []
    for i in range(jobs):
        resp = server.submit(["alpha", "beta"][i % 2], spec)
        assert isinstance(resp, Submitted), resp
        ids.append(resp.job_id)
    queued_at_drain = sum(len(t.queue) for t in service.tenants.values())
    drain_task = asyncio.ensure_future(server.drain())
    await asyncio.sleep(0)
    late = server.submit("alpha", spec)
    accounting = await drain_task
    return {
        "queued_at_drain": queued_at_drain,
        "late_response": late,
        "late_is_retry_later": isinstance(late, RetryLater),
        "late_reason": getattr(late, "reason", None),
        "terminal_states": [service.jobs[j].state.value for j in ids],
        "all_terminal": all(service.jobs[j].terminal for j in ids),
        "lost_jobs": service.lost_jobs(),
        "accounting": accounting,
        "accounting_closed": service.accounting_closed(),
    }


async def quota_exhaustion(*, burst: int = 12, seed: int = 13
                           ) -> Dict[str, Any]:
    """Hammer one small-quota tenant: over-limit submissions return typed
    ``RetryLater`` (never raise), and the books stay closed."""
    server = burst_server(nodes=2, seed=seed,
                          tenants=(("tiny", 1.0),),
                          max_queued=2, max_in_flight=1)
    service = server.service
    spec = JobSpec(size=128, leaf=32, nodes=1)
    responses = [server.submit("tiny", spec, tag=f"q{i}")
                 for i in range(burst)]
    accepted = [r for r in responses if isinstance(r, Submitted)]
    bounced = [r for r in responses if isinstance(r, RetryLater)]
    accounting = await server.drain()
    retry_metric = service.registry.counter("serve_retry_later_total")
    return {
        "burst": burst,
        "accepted": len(accepted),
        "bounced": len(bounced),
        "reasons": sorted({r.reason for r in bounced}),
        "all_typed": len(accepted) + len(bounced) == burst,
        "rejected_counter": retry_metric.value(tenant="tiny",
                                               reason="tenant-queue-full")
        + retry_metric.value(tenant="tiny", reason="tenant-quota"),
        "accounting": accounting,
        "accounting_closed": service.accounting_closed(),
        "lost_jobs": service.lost_jobs(),
    }


# ---------------------------------------------------------------------------
# the demo (acceptance criteria in one run)
# ---------------------------------------------------------------------------

async def run_demo(*, clients: int = 200, seed: int = 42,
                   nodes: int = 9, job_nodes: int = 2,
                   size: int = 512) -> Dict[str, Any]:
    """The acceptance run: ``clients`` concurrent clients across the three
    demo tenants, mid-burst node churn, zero lost jobs, fair shares."""
    server = burst_server(nodes=nodes, seed=seed)
    spec = JobSpec(size=size, leaf=64, nodes=job_nodes)
    report = await tenant_burst(server, clients=clients, spec=spec,
                                crash_after=max(1, clients // 8))
    report["passed"] = bool(
        report["completed_ok"] == clients
        and not report["lost_jobs"]
        and report["accounting_closed"]
        and report["fairness"]["max_abs_delta"] <= 0.10
        and (report["crash"].get("job_id") is None
             or report["crash"].get("job_state") == "done"))
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable demo summary."""
    fair = report["fairness"]
    wait = report["queue_wait_s"]
    lines = [
        f"clients           : {report['clients']} "
        f"across {len(report['tenants'])} tenants {report['tenants']}",
        f"completed ok      : {report['completed_ok']}",
        f"lost jobs         : {len(report['lost_jobs'])}",
        f"retries (typed)   : {report['retries_total']}",
        f"accounting closed : {report['accounting_closed']}",
        f"orphans requeued  : {report['orphans_requeued_total']}",
        "fair share        : " + "  ".join(
            f"{name}={fair['shares'][name]:.3f}"
            f"(want {fair['entitlements'][name]:.3f})"
            for name in sorted(fair["shares"])),
        f"fairness delta    : {fair['max_abs_delta']:.3f} "
        f"over {fair['contested_decisions']} contested decisions",
        f"queue wait        : p50={wait['p50']:.4f}s p99={wait['p99']:.4f}s "
        f"mean={wait['mean']:.4f}s (n={wait['count']})"
        if wait["count"] else "queue wait        : (no samples)",
    ]
    crash = report.get("crash", {})
    if crash.get("rank") is not None:
        lines.append(
            f"churn             : killed pool node {crash['rank']} "
            f"(job {crash.get('job_id')} -> {crash.get('job_state')}, "
            f"{crash.get('job_orphans', 0)} orphans requeued)")
    if "passed" in report:
        lines.append(f"acceptance        : "
                     f"{'PASS' if report['passed'] else 'FAIL'}")
    return "\n".join(lines)
