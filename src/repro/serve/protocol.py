"""Wire protocol of the multi-tenant job service.

``repro serve`` speaks newline-delimited JSON: every request and every
response is one JSON object on one line.  This module owns the typed
Python shapes on both sides of that boundary:

* :class:`JobState` — the job lifecycle state machine
  (``queued -> admitted -> running -> done | failed | cancelled``),
* request/response dataclasses with ``to_wire()`` / ``from_wire()``
  converters — the in-process API returns the *same* typed objects the
  socket protocol serializes, so tests and clients share one vocabulary,
* :class:`RetryLater` — the **typed backpressure response**.  Admission
  control never signals an over-quota or over-capacity submission with an
  exception; it returns (or serializes) a ``RetryLater`` carrying a machine
  readable ``reason`` and a suggested ``retry_after_s``.

Requests are plain dictionaries with an ``op`` field (``submit``, ``wait``,
``status``, ``metrics``, ``cancel``, ``drain``, ``trace``); responses carry
``ok`` and ``type`` so clients can dispatch without guessing.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "JobState",
    "TERMINAL_STATES",
    "Submitted",
    "RetryLater",
    "JobReport",
    "ServeError",
    "encode_line",
    "decode_line",
    "response_from_wire",
]


class JobState(str, enum.Enum):
    """Lifecycle states of one submitted job.

    ``REJECTED`` is an accounting state only — a rejected submission never
    enters the queue; it exists so per-tenant accounting sums to the number
    of submissions.
    """

    QUEUED = "queued"        #: accepted into the tenant's admission queue
    ADMITTED = "admitted"    #: popped by the admission policy, nodes allocated
    RUNNING = "running"      #: simulation started
    DONE = "done"            #: finished with a result
    FAILED = "failed"        #: finished with an error
    CANCELLED = "cancelled"  #: cancelled while queued or running
    REJECTED = "rejected"    #: bounced with RetryLater (accounting only)


#: states a job can never leave
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED})


@dataclass
class Submitted:
    """A submission was accepted and queued."""

    job_id: int
    tenant: str
    state: str = JobState.QUEUED.value
    tag: Optional[str] = None

    ok = True
    type = "submitted"

    def to_wire(self) -> Dict[str, Any]:
        out = {"ok": True, "type": self.type}
        out.update(asdict(self))
        return out


@dataclass
class RetryLater:
    """Typed backpressure: the submission was *not* accepted, try again.

    Reasons (stable identifiers):

    * ``tenant-queue-full`` — the tenant's bounded admission queue is full,
    * ``tenant-quota`` — the tenant is at its in-flight quota and its queue
      would exceed the configured in-system limit,
    * ``server-busy`` — the global queue-depth limit was hit,
    * ``draining`` — the service is draining; no new admissions.
    """

    reason: str
    tenant: Optional[str] = None
    retry_after_s: float = 0.02
    tag: Optional[str] = None

    ok = False
    type = "retry_later"

    def to_wire(self) -> Dict[str, Any]:
        out = {"ok": False, "type": self.type}
        out.update(asdict(self))
        return out


@dataclass
class JobReport:
    """Status/result of one job (terminal or in flight)."""

    job_id: int
    tenant: str
    state: str
    result: Any = None
    error: Optional[str] = None
    queue_wait_s: Optional[float] = None
    run_wall_s: Optional[float] = None
    makespan_s: Optional[float] = None
    orphans_requeued: int = 0
    tag: Optional[str] = None
    #: kind-histogram of the per-job observability stream (cheap summary;
    #: the full Chrome trace travels via the ``trace`` op)
    event_kinds: Dict[str, int] = field(default_factory=dict)

    ok = True
    type = "job"

    def to_wire(self) -> Dict[str, Any]:
        out = {"ok": True, "type": self.type}
        out.update(asdict(self))
        return out

    @property
    def terminal(self) -> bool:
        return self.state in {s.value for s in TERMINAL_STATES}


@dataclass
class ServeError:
    """A request failed for a non-backpressure reason (unknown tenant,
    unknown job id, malformed request)."""

    error: str
    message: str = ""
    tag: Optional[str] = None

    ok = False
    type = "error"

    def to_wire(self) -> Dict[str, Any]:
        out = {"ok": False, "type": self.type}
        out.update(asdict(self))
        return out


# ---------------------------------------------------------------------------
# NDJSON framing
# ---------------------------------------------------------------------------

def encode_line(msg: Any) -> str:
    """One response/request as one newline-terminated JSON line."""
    if hasattr(msg, "to_wire"):
        msg = msg.to_wire()
    return json.dumps(msg, sort_keys=True, separators=(",", ":"),
                      default=str) + "\n"


def decode_line(line: str) -> Dict[str, Any]:
    """Parse one NDJSON line into a request/response dictionary."""
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("protocol messages must be JSON objects")
    return obj


_RESPONSE_TYPES = {
    "submitted": Submitted,
    "retry_later": RetryLater,
    "job": JobReport,
    "error": ServeError,
}


def response_from_wire(obj: Dict[str, Any]) -> Any:
    """Rehydrate a typed response from its wire dictionary (client side)."""
    kind = obj.get("type")
    cls = _RESPONSE_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown response type {kind!r}")
    fields = {k: v for k, v in obj.items() if k not in ("ok", "type")}
    return cls(**fields)
