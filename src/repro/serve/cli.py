"""``python -m repro serve`` — the multi-tenant job service entrypoint.

Two modes:

* ``--demo`` runs the acceptance scenario in-process: N concurrent
  simulated clients across three weighted tenants, mid-burst node churn,
  then prints the fairness/latency/chaos report (``--json`` for machines).
  Exit status reflects the acceptance criteria.
* without ``--demo`` it binds the NDJSON socket protocol and serves until
  interrupted; ``--tenant name:weight`` registers tenants (repeatable).
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import List, Optional, Sequence, Tuple

from .scenarios import DEMO_TENANTS, format_report, run_demo
from .server import ServeServer
from .service import ServeConfig
from .tenants import TenantConfig

__all__ = ["serve_main", "parse_tenant_arg"]


def parse_tenant_arg(arg: str) -> Tuple[str, float]:
    """Parse one ``--tenant name[:weight]`` argument."""
    name, _, weight = arg.partition(":")
    if not name:
        raise ValueError(f"bad --tenant {arg!r}: empty name")
    try:
        return name, float(weight) if weight else 1.0
    except ValueError:
        raise ValueError(
            f"bad --tenant {arg!r}: weight must be a number") from None


def serve_main(*, demo: bool = False, clients: int = 200, nodes: int = 9,
               seed: int = 42, policy: str = "fair-share",
               host: str = "127.0.0.1", port: int = 0,
               tenants: Optional[Sequence[str]] = None,
               as_json: bool = False) -> int:
    try:
        parsed: List[Tuple[str, float]] = [
            parse_tenant_arg(t) for t in (tenants or [])]
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    if demo:
        report = asyncio.run(run_demo(clients=clients, nodes=nodes,
                                      seed=seed))
        if as_json:
            report = dict(report)
            report.pop("results")  # typed objects; the scalars tell the story
            print(json.dumps(report, indent=2, sort_keys=True, default=str))
        else:
            print(format_report(report))
        return 0 if report["passed"] else 1

    config = ServeConfig(
        nodes=nodes, seed=seed, admission_policy=policy,
        tenants=[TenantConfig(name=name, weight=weight)
                 for name, weight in (parsed or list(DEMO_TENANTS))])

    async def _serve() -> None:
        server = ServeServer(config)
        bound_host, bound_port = await server.start_socket(host, port)
        print(f"repro serve: NDJSON protocol on {bound_host}:{bound_port} "
              f"({config.nodes} pool nodes, policy={policy}, "
              f"tenants={[t.name for t in config.tenants]})")
        try:
            await asyncio.Event().wait()
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    return 0
