"""Engine micro-benchmark (``BENCH_engine.json``).

Tracks simulation-engine throughput (events/s) independently of the sweep
harness, on two fixed workloads:

* ``synthetic`` — a pure sim-layer hot-path mix: blocking and
  fire-and-forget network transmits, mailbox gets, contended Resource
  requests and Timeouts.  No Satin layer, so regressions localize to
  ``sim/``.
* ``satin-raytracer-n8`` — the satin CPU raytracer on 8 nodes, the
  reference workload of the recorded events/s trajectory
  (see docs/performance.md).

Schema (``repro-bench-engine/1``)::

    {
      "schema": "repro-bench-engine/1",
      "created_unix": 1754650000.0,
      "host": {"platform": "...", "python": "3.12.3", "cpu_count": 8},
      "repeats": 3,
      "workloads": [
        {
          "workload": "synthetic",
          "sim_events": 1203608,      # identical every repeat (determinism)
          "wall_s": 0.91,             # best repeat
          "events_per_sec": 1322000.0
        }, ...
      ],
      "totals": { "sim_events": ..., "wall_s": ..., "events_per_sec": ... }
    }

``events_per_sec`` is the **best of N repeats** — engine throughput is a
property of the code, not of whatever else the host was doing during the
other repeats.  ``sim_events`` must not vary across repeats (seeded runs
are deterministic); a variation is reported as an error.

The committed ``BENCH_engine_baseline.json`` records the figures at the
time the benchmark landed; ``python -m repro bench-engine
--check-baseline`` fails when a workload drops more than the tolerance
(default 25%) below its baseline figure.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, Generator, List, Optional, Tuple

from .bench import _host

__all__ = ["BENCH_ENGINE_SCHEMA", "run_workload", "write_engine_bench",
           "check_baseline", "bench_engine_main", "WORKLOADS"]

BENCH_ENGINE_SCHEMA = "repro-bench-engine/1"


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _run_synthetic() -> Tuple[int, float]:
    """Hot-path mix on the bare engine: returns (sim_events, wall_s)."""
    from ..sim.engine import Environment, Timeout
    from ..sim.network import QDR_INFINIBAND, Network
    from ..sim.resources import Resource

    pairs = 4
    messages = 12_000
    env = Environment()
    net = Network(env, QDR_INFINIBAND)
    endpoints = [net.attach(i) for i in range(2 * pairs)]
    cores = Resource(env, capacity=2)

    def producer(src: Any, dst: int) -> Generator:
        for i in range(messages):
            if i % 4 == 0:
                # Fire-and-forget (the protocol fast path's post()).
                net.post(src, dst, "ping", None, 64.0)
            else:
                yield from net.transmit(src, dst, "ping", None, 64.0)
            req = yield cores.request()
            yield Timeout(env, 1e-6)
            cores.release(req)

    def consumer(ep: Any) -> Generator:
        for _ in range(messages):
            yield ep.mailbox.get()

    for p in range(pairs):
        env.process(producer(endpoints[2 * p], 2 * p + 1))
        env.process(consumer(endpoints[2 * p + 1]))
    # analyze: ignore[REP102] the micro-benchmark measures host wall-clock
    # of the engine itself; the simulation inside uses virtual time
    start = time.perf_counter()
    env.run()
    # analyze: ignore[REP102] see above
    wall = time.perf_counter() - start
    return env.events_processed, wall


def _run_raytracer_n8() -> Tuple[int, float]:
    """The trajectory's reference workload: satin raytracer on 8 nodes."""
    from ..apps.base import run_satin
    from ..apps.raytracer import RaytracerApp
    from ..satin.runtime import RuntimeConfig
    from .spec import ClusterSpec

    app = RaytracerApp(width=8192, height=4096, samples=24, leaf_rows=8)
    cluster_config = ClusterSpec(kind="satin_cpu", num_nodes=8).build()
    # analyze: ignore[REP102] host wall-clock of the benchmarked run
    start = time.perf_counter()
    _result, _runtime, cluster = run_satin(
        app, cluster_config, app.root_task(),
        config=RuntimeConfig(seed=42), return_runtime=True)
    # analyze: ignore[REP102] see above
    wall = time.perf_counter() - start
    return cluster.env.events_processed, wall


WORKLOADS = {
    "synthetic": _run_synthetic,
    "satin-raytracer-n8": _run_raytracer_n8,
}


def run_workload(name: str, repeats: int = 3) -> Dict[str, Any]:
    """Best-of-``repeats`` entry for one workload."""
    fn = WORKLOADS[name]
    best_wall: Optional[float] = None
    events: Optional[int] = None
    for _ in range(max(repeats, 1)):
        sim_events, wall = fn()
        if events is None:
            events = sim_events
        elif events != sim_events:
            raise RuntimeError(
                f"{name}: non-deterministic event count "
                f"({events} vs {sim_events})")
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert events is not None and best_wall is not None
    return {
        "workload": name,
        "sim_events": events,
        "wall_s": round(best_wall, 4),
        "events_per_sec": round(events / best_wall, 0),
    }


# ----------------------------------------------------------------------
# record + baseline
# ----------------------------------------------------------------------
def write_engine_bench(path: pathlib.Path, entries: List[Dict[str, Any]],
                       repeats: int) -> Dict[str, Any]:
    totals = {
        "sim_events": sum(e["sim_events"] for e in entries),
        "wall_s": round(sum(e["wall_s"] for e in entries), 4),
    }
    totals["events_per_sec"] = (
        round(totals["sim_events"] / totals["wall_s"], 0)
        if totals["wall_s"] > 0 else 0.0)
    record = {
        "schema": BENCH_ENGINE_SCHEMA,
        # analyze: ignore[REP102] record provenance metadata, not model state
        "created_unix": time.time(),
        "host": _host(),
        "repeats": repeats,
        "workloads": entries,
        "totals": totals,
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


def check_baseline(record: Dict[str, Any], baseline_path: pathlib.Path,
                   tolerance: float = 0.25) -> List[str]:
    """Failures (empty = pass) of ``record`` against a committed baseline.

    A workload fails when its measured events/s drops more than
    ``tolerance`` below the baseline figure.  Faster-than-baseline is
    always fine.  Workloads present on only one side are reported too —
    a renamed workload must come with a regenerated baseline.
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures: List[str] = []
    measured = {e["workload"]: e for e in record["workloads"]}
    expected = {e["workload"]: e for e in baseline["workloads"]}
    for name, base in expected.items():
        entry = measured.get(name)
        if entry is None:
            failures.append(f"{name}: missing from this run")
            continue
        floor = (1.0 - tolerance) * base["events_per_sec"]
        if entry["events_per_sec"] < floor:
            failures.append(
                f"{name}: {entry['events_per_sec']:.0f} events/s is below "
                f"{floor:.0f} ({(1.0 - tolerance):.0%} of the baseline "
                f"{base['events_per_sec']:.0f})")
    for name in measured:
        if name not in expected:
            failures.append(f"{name}: not in the baseline "
                            f"(regenerate {baseline_path})")
    return failures


def bench_engine_main(out: pathlib.Path, repeats: int = 3,
                      check: Optional[pathlib.Path] = None,
                      tolerance: float = 0.25,
                      as_json: bool = False) -> int:
    entries = [run_workload(name, repeats=repeats) for name in WORKLOADS]
    record = write_engine_bench(out, entries, repeats)
    if as_json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        for e in entries:
            print(f"{e['workload']:24s} {e['sim_events']:>10d} events  "
                  f"{e['wall_s']:>8.3f}s  {e['events_per_sec']:>12,.0f} ev/s")
        t = record["totals"]
        print(f"{'total':24s} {t['sim_events']:>10d} events  "
              f"{t['wall_s']:>8.3f}s  {t['events_per_sec']:>12,.0f} ev/s")
        print(f"wrote {out}")
    if check is not None:
        failures = check_baseline(record, check, tolerance=tolerance)
        if failures:
            for failure in failures:
                print(f"BASELINE REGRESSION: {failure}")
            return 1
        print(f"baseline check passed (tolerance {tolerance:.0%}, "
              f"{check})")
    return 0
