"""``python -m repro sweep`` — run experiments through the sweep engine.

For each requested experiment the CLI injects a shared
:class:`~repro.sweep.engine.SweepSession` as the runner's ``cell_runner``
(when its signature accepts one — the static paper tables just run
inline), so every config grid flows through one worker pool and one
result cache.  A finished invocation writes ``BENCH_sweep.json`` next to
the artifacts (or wherever ``--bench-out`` points).

Resume semantics: the cache *is* the resume log.  A sweep interrupted or
partially failed leaves every completed cell's record on disk; re-running
the same command (``--resume`` is the explicit spelling of the default)
executes only the missing cells.  ``--force`` re-executes everything and
refreshes the cache; ``--no-cache`` runs fully stateless.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

from .bench import sweep_entry, write_bench
from .cache import SweepCache, default_cache_dir
from .engine import CellOutcome, SweepError, SweepSession

__all__ = ["sweep_main"]


def _progress(outcome: CellOutcome, done: int, total: int) -> None:
    status = {"run": f"{outcome.wall_s:.1f}s",
              "cache": "cached",
              "failed": "FAILED"}[outcome.source]
    retry = f" (attempt {outcome.attempts})" if outcome.attempts > 1 else ""
    print(f"  [{done}/{total}] {outcome.spec.display()}: {status}{retry}",
          flush=True)


def sweep_main(experiments: List[str], *, jobs: int = 1,
               cache_dir: Optional[pathlib.Path] = None,
               no_cache: bool = False, force: bool = False,
               resume: bool = False, retries: int = 1,
               bench_out: Optional[pathlib.Path] = None,
               out: Optional[pathlib.Path] = None,
               runner_kwargs: Optional[Dict[str, Any]] = None) -> int:
    """Entry point behind the ``sweep`` subcommand; returns an exit code."""
    from ..experiments import experiment_runner, list_experiments
    from ..experiments.artifacts import accepted_kwargs, save_artifacts
    from ..obs.bus import EventBus
    from ..obs.metrics import MetricsRegistry

    if force and no_cache:
        print("--force is meaningless with --no-cache", file=sys.stderr)
        return 2
    del resume  # the default behavior; the flag exists for explicitness

    targets = list_experiments() if experiments == ["all"] else experiments
    runners = {}
    for experiment_id in targets:
        try:
            runners[experiment_id] = experiment_runner(experiment_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    cache = None
    if not no_cache:
        cache = SweepCache(cache_dir if cache_dir is not None
                           else default_cache_dir())
    bus = EventBus(clock=time.perf_counter, enabled=True)
    metrics = MetricsRegistry()
    session = SweepSession(jobs=jobs, cache=cache, force=force,
                           retries=retries, progress=_progress, bus=bus,
                           metrics=metrics)

    entries = []
    exit_code = 0
    base_kwargs = dict(runner_kwargs or {})
    for experiment_id, runner in runners.items():
        print(f"== sweep {experiment_id} (jobs={jobs}, "
              f"cache={'off' if cache is None else cache.root}) ==",
              flush=True)
        kwargs = accepted_kwargs(runner, {**base_kwargs,
                                          "cell_runner": session.runner})
        reports_before = len(session.reports)
        start = time.perf_counter()
        try:
            result = runner(**kwargs)
        except SweepError as exc:
            print(f"sweep {experiment_id} failed: {exc}", file=sys.stderr)
            exit_code = 1
            for report in session.reports[reports_before:]:
                entries.append(sweep_entry(experiment_id, report))
            continue
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"({elapsed:.1f}s wall-clock)\n")
        new_reports = session.reports[reports_before:]
        if new_reports:
            merged = _merge_reports(new_reports)
            entries.append(sweep_entry(experiment_id, merged))
        if out is not None:
            for path in save_artifacts(result, out):
                print(f"wrote {path}")

    bench_path = bench_out if bench_out is not None else (
        (out or pathlib.Path(".")) / "BENCH_sweep.json")
    record = write_bench(bench_path, entries, jobs)
    totals = record["totals"]
    print(f"BENCH: {totals['cells']} cells "
          f"({totals['executed']} executed, {totals['cache_hits']} cached, "
          f"{totals['failed']} failed) in {totals['wall_s']}s "
          f"[{totals['speedup_vs_sequential']}x vs sequential-equivalent] "
          f"-> {bench_path}")
    return exit_code


def _merge_reports(reports):
    """Fold one experiment's reports (it may call the runner repeatedly)
    into a single report-shaped object for the bench entry."""
    from .engine import SweepReport

    merged = SweepReport(outcomes=[], cell_results=[])
    for report in reports:
        merged.outcomes.extend(report.outcomes)
        merged.cell_results.extend(report.cell_results)
        merged.wall_s += report.wall_s
        merged.jobs = report.jobs
    return merged
