"""Parallel, cached, resumable execution of sweep cells.

:func:`run_cells` takes a grid of :class:`~repro.sweep.spec.RunSpec` cells
and returns a :class:`SweepReport`.  The pipeline per unique cell:

1. **dedupe** — identical cells (same cache key) run once, every requester
   gets the shared result (Table III's one-node reference runs overlap
   heavily between apps);
2. **cache probe** — with a :class:`~repro.sweep.cache.SweepCache`
   attached, previously computed cells are served from disk (this *is* the
   resume mechanism: re-running a partially failed sweep only executes the
   missing cells);
3. **execute** — misses run through a ``multiprocessing`` pool (``fork``
   start method where available) or inline for ``jobs <= 1``; a worker
   never lets an exception escape, it returns a structured failure so one
   poisoned cell fails one cell, not the sweep;
4. **retry** — failed cells are re-submitted up to ``retries`` extra
   times before being reported as failed.

Progress is observable two ways: an optional per-cell callback (the CLI's
progress lines) and an optional :class:`repro.obs.bus.EventBus` +
:class:`repro.obs.metrics.MetricsRegistry` pair receiving structured
``sweep_cell_*`` events and counters.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .cache import SweepCache, cell_key, code_salt
from .spec import CellResult, RunSpec, run_cell

__all__ = ["CellOutcome", "SweepReport", "SweepError", "run_cells",
           "SweepSession"]


class SweepError(RuntimeError):
    """Raised when a sweep finished with failed cells and the caller needs
    every cell (e.g. an experiment table with no holes)."""

    def __init__(self, failed: List["CellOutcome"]):
        labels = ", ".join(o.spec.display() for o in failed)
        super().__init__(f"{len(failed)} cell(s) failed: {labels}")
        self.failed = failed


@dataclass
class CellOutcome:
    """What happened to one unique cell."""

    spec: RunSpec
    key: str
    result: Optional[CellResult] = None
    #: "cache" | "run" | "failed"
    source: str = "failed"
    #: host wall-clock of the successful attempt (for cache hits: the wall
    #: recorded when the cell was originally computed)
    wall_s: float = 0.0
    attempts: int = 0
    error: Optional[str] = None


@dataclass
class SweepReport:
    """Everything :func:`run_cells` learned, in input order."""

    outcomes: List[CellOutcome]
    #: one entry per *input* cell (duplicates share an outcome's result)
    cell_results: List[Optional[CellResult]]
    wall_s: float = 0.0
    jobs: int = 1

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "run")

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "cache")

    @property
    def failed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.source == "failed"]

    @property
    def sim_events(self) -> int:
        return sum(o.result.sim_events for o in self.outcomes
                   if o.result is not None)

    @property
    def cell_wall_s_total(self) -> float:
        """Sum of per-cell wall times — the sequential-equivalent cost.

        Cache hits contribute the wall recorded at original computation,
        so the number answers "what would this sweep have cost cold and
        sequential".
        """
        return sum(o.wall_s for o in self.outcomes)

    def raise_on_failure(self) -> "SweepReport":
        if self.failed:
            raise SweepError(self.failed)
        return self

    def results(self) -> List[CellResult]:
        """All input cells' results; raises if any cell failed."""
        self.raise_on_failure()
        return [r for r in self.cell_results if r is not None]


def _worker(item: Tuple[int, RunSpec]) -> Tuple[int, str, Any, float]:
    """Pool entry point: never raises, returns a tagged tuple.

    ``("ok", result_dict, wall)`` or ``("err", "<cause + traceback>", 0)``
    — structured failure keeps one crashed cell from poisoning the pool
    or aborting sibling cells.
    """
    index, spec = item
    try:
        result, wall_s = run_cell(spec)
        return index, "ok", result.to_dict(), wall_s
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        cause = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        return index, "err", cause, 0.0


def _run_batch(batch: List[Tuple[int, RunSpec]], jobs: int
               ) -> List[Tuple[int, str, Any, float]]:
    """Run one batch of (index, spec) items, parallel or inline."""
    if jobs <= 1 or len(batch) <= 1:
        return [_worker(item) for item in batch]
    # fork shares the already-imported interpreter state (cheap start,
    # required for the module-level app registries); fall back to spawn
    # where fork is unavailable.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=min(jobs, len(batch))) as pool:
        return list(pool.imap_unordered(_worker, batch))


def run_cells(cells: Sequence[RunSpec], *, jobs: int = 1,
              cache: Optional[SweepCache] = None, force: bool = False,
              retries: int = 1,
              progress: Optional[Callable[[CellOutcome, int, int], None]] = None,
              bus: Any = None, metrics: Any = None) -> SweepReport:
    """Execute a cell grid; see the module docstring for the pipeline.

    ``force=True`` skips cache probes (but still writes fresh results).
    ``progress(outcome, done, total)`` fires once per unique cell as it
    resolves.  ``bus``/``metrics`` receive structured telemetry when
    given.
    """
    # analyze: ignore[REP102] measures the sweep's own host wall-clock
    # (reported as wall_s); the simulations inside use virtual time
    start = time.perf_counter()
    salt = code_salt()

    # -- dedupe, preserving first-seen order --------------------------------
    unique: Dict[str, int] = {}
    outcomes: List[CellOutcome] = []
    positions: List[int] = []          # input index -> outcome index
    for spec in cells:
        key = cell_key(spec, salt)
        if key not in unique:
            unique[key] = len(outcomes)
            outcomes.append(CellOutcome(spec=spec, key=key))
        positions.append(unique[key])
    total = len(outcomes)
    done = 0

    def _resolved(outcome: CellOutcome) -> None:
        nonlocal done
        done += 1
        if metrics is not None:
            metrics.counter("sweep_cells_total",
                            "sweep cells, by outcome source").child(
                                source=outcome.source)()
        if bus is not None and bus.enabled:
            bus.emit(f"sweep_cell_{outcome.source}",
                     label=outcome.spec.display(), key=outcome.key,
                     wall_s=outcome.wall_s, attempts=outcome.attempts,
                     error=outcome.error)
        if progress is not None:
            progress(outcome, done, total)

    # -- cache probe ---------------------------------------------------------
    pending: List[Tuple[int, RunSpec]] = []
    for idx, outcome in enumerate(outcomes):
        record = None if (cache is None or force) else cache.get(outcome.key)
        if record is not None:
            outcome.result = CellResult.from_dict(record["result"])
            outcome.source = "cache"
            outcome.wall_s = float(record.get("meta", {}).get("wall_s", 0.0))
            _resolved(outcome)
        else:
            pending.append((idx, outcome.spec))

    # -- execute + bounded retries -------------------------------------------
    attempt = 0
    while pending and attempt <= retries:
        returned = _run_batch(pending, jobs)
        next_pending: List[Tuple[int, RunSpec]] = []
        for idx, status, payload, wall_s in returned:
            outcome = outcomes[idx]
            outcome.attempts += 1
            if status == "ok":
                outcome.result = CellResult.from_dict(payload)
                outcome.source = "run"
                outcome.wall_s = wall_s
                outcome.error = None
                if cache is not None:
                    cache.put(outcome.key, outcome.spec, outcome.result,
                              wall_s)
                _resolved(outcome)
            else:
                outcome.error = payload
                if attempt < retries:
                    next_pending.append((idx, outcome.spec))
                else:
                    outcome.source = "failed"
                    _resolved(outcome)
        # keep a deterministic submission order across retry rounds
        next_pending.sort(key=lambda item: item[0])
        pending = next_pending
        attempt += 1

    return SweepReport(
        outcomes=outcomes,
        cell_results=[outcomes[pos].result for pos in positions],
        # analyze: ignore[REP102] host wall-clock of the sweep itself
        wall_s=time.perf_counter() - start,
        jobs=jobs,
    )


@dataclass
class SweepSession:
    """Shared sweep context across several experiment runs.

    The CLI creates one session per invocation; its :meth:`runner` is the
    ``cell_runner`` injected into experiment runners, so every grid an
    experiment enumerates flows through one pool + one cache, and the
    session accumulates the per-experiment reports the benchmark writer
    turns into ``BENCH_sweep.json``.
    """

    jobs: int = 1
    cache: Optional[SweepCache] = None
    force: bool = False
    retries: int = 1
    progress: Optional[Callable[[CellOutcome, int, int], None]] = None
    bus: Any = None
    metrics: Any = None
    reports: List[SweepReport] = field(default_factory=list)

    def run(self, cells: Sequence[RunSpec]) -> SweepReport:
        report = run_cells(
            cells, jobs=self.jobs, cache=self.cache, force=self.force,
            retries=self.retries, progress=self.progress, bus=self.bus,
            metrics=self.metrics)
        self.reports.append(report)
        return report

    def runner(self, cells: Sequence[RunSpec]) -> List[CellResult]:
        """``cell_runner`` interface: all results or :class:`SweepError`."""
        return self.run(cells).results()

    # -- aggregate figures (the BENCH_sweep.json inputs) --------------------
    @property
    def cells(self) -> int:
        return sum(len(r.outcomes) for r in self.reports)

    @property
    def executed(self) -> int:
        return sum(r.executed for r in self.reports)

    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.reports)

    @property
    def failed(self) -> int:
        return sum(len(r.failed) for r in self.reports)

    @property
    def sim_events(self) -> int:
        return sum(r.sim_events for r in self.reports)

    @property
    def wall_s(self) -> float:
        return sum(r.wall_s for r in self.reports)

    @property
    def cell_wall_s_total(self) -> float:
        return sum(r.cell_wall_s_total for r in self.reports)
