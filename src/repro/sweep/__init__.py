"""Parallel, cached, resumable sweep engine.

The evaluation of the paper is a few hundred independent
``(experiment, config, seed)`` simulation runs.  This package turns those
into first-class *cells* (:mod:`repro.sweep.spec`), executes them across a
``multiprocessing`` pool with failure isolation and bounded retries
(:mod:`repro.sweep.engine`), memoizes each cell's deterministic result in
a content-addressed disk cache keyed by spec + code version
(:mod:`repro.sweep.cache`), and records machine-readable benchmark
figures (:mod:`repro.sweep.bench`).  ``python -m repro sweep`` is the
user-facing entry point (:mod:`repro.sweep.cli`); see ``docs/sweep.md``.
"""

from .cache import SweepCache, cell_key, code_salt, default_cache_dir
from .engine import (
    CellOutcome,
    SweepError,
    SweepReport,
    SweepSession,
    run_cells,
)
from .spec import (
    CellResult,
    ClusterSpec,
    RunSpec,
    config_items,
    run_cell,
    run_cells_inline,
)

__all__ = [
    "CellOutcome",
    "CellResult",
    "ClusterSpec",
    "RunSpec",
    "SweepCache",
    "SweepError",
    "SweepReport",
    "SweepSession",
    "cell_key",
    "code_salt",
    "config_items",
    "default_cache_dir",
    "run_cell",
    "run_cells",
    "run_cells_inline",
]
