"""Sweep cell model: what one independent simulation run *is*.

A sweep executes many independent ``(system, app, cluster, seed, config)``
cells — the grid behind every scalability figure, heterogeneity table and
ablation.  This module defines the declarative, picklable description of
one cell (:class:`RunSpec` + :class:`ClusterSpec`), the deterministic
payload a cell produces (:class:`CellResult`), and :func:`run_cell`, the
single function that turns the former into the latter.

Design constraints:

* **picklable** — cells cross a ``multiprocessing`` boundary, so they are
  frozen dataclasses of primitives (no app objects, no cluster objects,
  no callables);
* **deterministic** — :class:`CellResult` carries only values derived from
  the simulation (virtual-time makespan, GFLOPS, counter totals), never
  host wall-clock, so a cached result is byte-identical to a fresh run
  with the same seed and the parallel sweep reproduces the sequential one
  cell for cell;
* **no import cycles** — the experiment modules build :class:`RunSpec`
  grids, so this module must not import them at module level;
  :func:`run_cell` resolves app builders and cluster constructors lazily.
"""

from __future__ import annotations

import fnmatch
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["ClusterSpec", "RunSpec", "CellResult", "CellFailure",
           "run_cell", "run_cells_inline", "config_items"]

#: systems a cell can run on (``repro.experiments.scalability.SYSTEMS``
#: plus ``"graph"`` — the DAG executor of :mod:`repro.graph`)
SYSTEMS = ("satin", "cashmere-unopt", "cashmere-opt", "graph")

#: named interconnects resolvable from a spec (the specs themselves are not
#: picklable-friendly config, so cells carry the *name*)
_NETWORKS = ("qdr-infiniband", "gigabit-ethernet")


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative, picklable description of the cluster a cell runs on.

    ``kind`` selects a DAS-4 constructor from :mod:`repro.cluster.das4`:

    ========== ==================================================
    kind        meaning
    ========== ==================================================
    gtx480      ``gtx480_cluster(num_nodes)``
    satin_cpu   ``satin_cpu_cluster(num_nodes)``
    het_small   Table III raytracer/matmul configuration
    het_kmeans  Table III k-means configuration
    het_nbody   Table III n-body configuration
    nodes       explicit per-node device tuples (``nodes`` field)
    ========== ==================================================
    """

    kind: str
    num_nodes: int = 0
    #: per-node device-name tuples, only for ``kind="nodes"``
    nodes: Tuple[Tuple[str, ...], ...] = ()
    network: str = "qdr-infiniband"
    device_overlap: bool = True
    #: cosmetic name for ``kind="nodes"`` clusters (not part of cache keys)
    name: str = ""

    def build(self):
        """Materialize the :class:`~repro.cluster.das4.ClusterConfig`."""
        import dataclasses

        from ..cluster.das4 import (
            ClusterConfig,
            gtx480_cluster,
            heterogeneous_kmeans,
            heterogeneous_nbody,
            heterogeneous_small,
            satin_cpu_cluster,
        )
        from ..sim.network import GIGABIT_ETHERNET, QDR_INFINIBAND

        network = {"qdr-infiniband": QDR_INFINIBAND,
                   "gigabit-ethernet": GIGABIT_ETHERNET}.get(self.network)
        if network is None:
            raise ValueError(f"unknown network {self.network!r}; "
                             f"known: {_NETWORKS}")
        if self.kind == "gtx480":
            config = gtx480_cluster(self.num_nodes, network=network)
        elif self.kind == "satin_cpu":
            config = satin_cpu_cluster(self.num_nodes, network=network)
        elif self.kind == "het_small":
            config = heterogeneous_small(network=network)
        elif self.kind == "het_kmeans":
            config = heterogeneous_kmeans(network=network)
        elif self.kind == "het_nbody":
            config = heterogeneous_nbody(network=network)
        elif self.kind == "nodes":
            config = ClusterConfig(
                name=self.name or "custom",
                nodes=[tuple(devs) for devs in self.nodes],
                network=network)
        else:
            raise ValueError(f"unknown cluster kind {self.kind!r}")
        if not self.device_overlap:
            config = dataclasses.replace(config, device_overlap=False)
        return config

    def to_dict(self) -> Dict[str, Any]:
        """Canonical form for cache keys (cosmetic ``name`` excluded)."""
        return {
            "kind": self.kind,
            "num_nodes": self.num_nodes,
            "nodes": [list(devs) for devs in self.nodes],
            "network": self.network,
            "device_overlap": self.device_overlap,
        }


def config_items(**kwargs: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalize runtime-config overrides into the sorted tuple cells carry."""
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class RunSpec:
    """One sweep cell: everything needed to reproduce one simulation run.

    ``config`` is a sorted tuple of ``(field, value)`` overrides applied to
    the run's :class:`~repro.satin.runtime.RuntimeConfig` /
    :class:`~repro.core.runtime.CashmereConfig` (values must be JSON
    primitives).  ``label`` is cosmetic — progress lines and error reports —
    and deliberately not part of the cache identity.
    """

    system: str           #: one of :data:`SYSTEMS`
    app: str              #: key of ``repro.experiments.scalability.APP_BUILDERS``
    cluster: ClusterSpec
    seed: int = 42
    config: Tuple[Tuple[str, Any], ...] = ()
    label: str = field(default="", compare=False)

    def display(self) -> str:
        if self.label:
            return self.label
        where = self.cluster.kind + (
            f"-{self.cluster.num_nodes}" if self.cluster.num_nodes else "")
        return f"{self.system}/{self.app}/{where}/seed{self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        """Canonical form for cache keys (``label`` excluded)."""
        return {
            "system": self.system,
            "app": self.app,
            "cluster": self.cluster.to_dict(),
            "seed": self.seed,
            "config": [[k, v] for k, v in self.config],
        }


@dataclass(frozen=True)
class CellResult:
    """Deterministic payload of one executed cell.

    Every field derives from the simulation alone — virtual time, counter
    totals — so for a fixed :class:`RunSpec` the result is identical no
    matter when, where or alongside what the cell ran.  Host wall-clock
    lives in the cache record's metadata, never here.
    """

    makespan_s: float
    gflops: float
    total_leaf_flops: float
    steal_attempts: int
    steal_successes: int
    total_jobs: int
    total_leaves: int
    cpu_fallbacks: int
    sim_events: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "makespan_s": self.makespan_s,
            "gflops": self.gflops,
            "total_leaf_flops": self.total_leaf_flops,
            "steal_attempts": self.steal_attempts,
            "steal_successes": self.steal_successes,
            "total_jobs": self.total_jobs,
            "total_leaves": self.total_leaves,
            "cpu_fallbacks": self.cpu_fallbacks,
            "sim_events": self.sim_events,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CellResult":
        return cls(**{k: d[k] for k in (
            "makespan_s", "gflops", "total_leaf_flops", "steal_attempts",
            "steal_successes", "total_jobs", "total_leaves", "cpu_fallbacks",
            "sim_events")})


class CellFailure(RuntimeError):
    """A cell's runner raised; carries the cell for error reports."""

    def __init__(self, spec: RunSpec, cause: str):
        super().__init__(f"cell {spec.display()!r} failed: {cause}")
        self.spec = spec
        self.cause = cause


def _maybe_inject_failure(spec: RunSpec) -> None:
    """Test hook: ``REPRO_SWEEP_FAIL`` is an fnmatch pattern over cell
    labels; matching cells raise before running.  This is how the test
    suite simulates worker crashes and poisoned cells without patching
    code across a process boundary."""
    pattern = os.environ.get("REPRO_SWEEP_FAIL")
    if pattern and fnmatch.fnmatch(spec.display(), pattern):
        raise RuntimeError(
            f"injected failure (REPRO_SWEEP_FAIL={pattern!r})")


def run_cell(spec: RunSpec) -> Tuple[CellResult, float]:
    """Execute one cell; returns ``(result, host_wall_seconds)``.

    This is the *only* execution path — the inline default, the worker
    processes of the parallel engine and the cache-population path all go
    through here, which is what makes "parallel result == sequential
    result" a structural property rather than a hope.
    """
    from ..apps.base import run_cashmere, run_satin
    from ..core.runtime import CashmereConfig
    from ..experiments.scalability import APP_BUILDERS
    from ..satin.runtime import RuntimeConfig

    _maybe_inject_failure(spec)
    if spec.system == "graph":
        return _run_graph_cell(spec)
    if spec.app not in APP_BUILDERS:
        raise ValueError(f"unknown application {spec.app!r}; known: "
                         f"{sorted(APP_BUILDERS)}")
    builder = APP_BUILDERS[spec.app]
    cluster_config = spec.cluster.build()
    overrides = dict(spec.config)
    # analyze: ignore[REP102] per-cell host wall-clock (cache metadata and
    # the report's wall_s column); cell results come from virtual time
    start = time.perf_counter()
    if spec.system == "satin":
        app = builder(True)
        result, _runtime, cluster = run_satin(
            app, cluster_config, app.root_task(),
            config=RuntimeConfig(seed=spec.seed, **overrides),
            return_runtime=True)
    elif spec.system in ("cashmere-unopt", "cashmere-opt"):
        app = builder(False)
        result, _runtime, cluster = run_cashmere(
            app, cluster_config, app.root_task(),
            optimized=(spec.system == "cashmere-opt"),
            config=CashmereConfig(seed=spec.seed, **overrides),
            return_runtime=True)
    else:
        raise ValueError(f"unknown system {spec.system!r}; known: {SYSTEMS}")
    # analyze: ignore[REP102] see above: host-side cell timing only
    wall_s = time.perf_counter() - start
    stats = result.stats
    cell = CellResult(
        makespan_s=stats.makespan_s,
        gflops=stats.gflops(),
        total_leaf_flops=stats.total_leaf_flops,
        steal_attempts=stats.steal_attempts,
        steal_successes=stats.steal_successes,
        total_jobs=stats.total_jobs,
        total_leaves=stats.total_leaves,
        cpu_fallbacks=stats.cpu_fallbacks,
        sim_events=cluster.env.events_processed,
    )
    return cell, wall_s


def _run_graph_cell(spec: RunSpec) -> Tuple[CellResult, float]:
    """Execute one ``system == "graph"`` cell on the DAG executor.

    ``spec.app`` resolves through :data:`repro.graph.apps.GRAPH_APPS`;
    ``config`` carries ``scheduler_policy`` plus any builder knobs
    (``scale``, ``tiles``, ``passes``, ...).  Jobs == leaves == graph
    nodes and the steal counters are zero: the DAG executor places every
    node directly, nothing is stolen.
    """
    from ..cluster.das4 import SimCluster
    from ..graph.apps import GRAPH_APPS
    from ..graph.executor import GraphConfig, GraphRuntime

    if spec.app not in GRAPH_APPS:
        raise ValueError(f"unknown graph application {spec.app!r}; known: "
                         f"{sorted(GRAPH_APPS)}")
    overrides = dict(spec.config)
    policy = overrides.pop("scheduler_policy",
                           GraphConfig.DEFAULT_SCHEDULER_POLICY)
    graph = GRAPH_APPS[spec.app](**overrides)
    cluster = SimCluster(spec.cluster.build())
    # analyze: ignore[REP102] per-cell host wall-clock (cache metadata)
    start = time.perf_counter()
    runtime = GraphRuntime(cluster, graph,
                           GraphConfig(seed=spec.seed,
                                       scheduler_policy=policy))
    res = runtime.run()
    # analyze: ignore[REP102] host-side cell timing only
    wall_s = time.perf_counter() - start
    cell = CellResult(
        makespan_s=res.makespan_s,
        gflops=res.gflops,
        total_leaf_flops=res.total_flops,
        steal_attempts=0,
        steal_successes=0,
        total_jobs=res.nodes_run,
        total_leaves=res.nodes_run,
        cpu_fallbacks=0,
        sim_events=cluster.env.events_processed,
    )
    return cell, wall_s


def run_cells_inline(cells: Sequence[RunSpec]) -> List[CellResult]:
    """Sequential in-process cell runner — the default ``cell_runner``.

    Experiment runners call their ``cell_runner`` with the full grid; when
    none was injected this preserves the historical behavior exactly (same
    process, same order, no cache).
    """
    return [run_cell(spec)[0] for spec in cells]
