"""Machine-readable sweep benchmark records (``BENCH_sweep.json``).

Schema (``repro-bench-sweep/1``)::

    {
      "schema": "repro-bench-sweep/1",
      "created_unix": 1754650000.0,
      "host": {"platform": "...", "python": "3.12.3", "cpu_count": 8},
      "jobs": 8,
      "sweeps": [
        {
          "experiment": "fig7_8",
          "cells": 15,            # unique cells in the grid
          "executed": 15,         # ran this invocation
          "cache_hits": 0,        # served from the result cache
          "failed": 0,
          "wall_s": 81.2,         # sweep wall-clock (parallel)
          "cell_wall_s_total": 310.5,   # sequential-equivalent cost
          "speedup_vs_sequential": 3.82,  # cell_wall_s_total / wall_s
          "sim_events": 61234567,
          "events_per_sec": 754000.0      # sim_events / wall_s
        }, ...
      ],
      "totals": { same fields aggregated across sweeps }
    }

``speedup_vs_sequential`` compares the observed wall-clock against the sum
of per-cell costs; for cache hits the per-cell cost is the wall recorded
when the cell was first computed, so a warm re-run shows the cache's
effective speedup, not 0/0.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List

from .engine import SweepReport

__all__ = ["BENCH_SCHEMA", "sweep_entry", "write_bench"]

BENCH_SCHEMA = "repro-bench-sweep/1"


def _host() -> Dict[str, Any]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "argv": sys.argv[1:],
    }


def sweep_entry(experiment_id: str, report: SweepReport) -> Dict[str, Any]:
    """One per-experiment record from a finished report."""
    wall = report.wall_s
    return {
        "experiment": experiment_id,
        "cells": len(report.outcomes),
        "executed": report.executed,
        "cache_hits": report.cache_hits,
        "failed": len(report.failed),
        "wall_s": round(wall, 3),
        "cell_wall_s_total": round(report.cell_wall_s_total, 3),
        "speedup_vs_sequential": (
            round(report.cell_wall_s_total / wall, 2) if wall > 0 else 0.0),
        "sim_events": report.sim_events,
        "events_per_sec": round(report.sim_events / wall, 0) if wall > 0 else 0.0,
    }


def write_bench(path: pathlib.Path, entries: List[Dict[str, Any]],
                jobs: int) -> Dict[str, Any]:
    """Aggregate per-experiment entries and write the JSON record."""
    totals = {
        "cells": sum(e["cells"] for e in entries),
        "executed": sum(e["executed"] for e in entries),
        "cache_hits": sum(e["cache_hits"] for e in entries),
        "failed": sum(e["failed"] for e in entries),
        "wall_s": round(sum(e["wall_s"] for e in entries), 3),
        "cell_wall_s_total": round(
            sum(e["cell_wall_s_total"] for e in entries), 3),
        "sim_events": sum(e["sim_events"] for e in entries),
    }
    wall = totals["wall_s"]
    totals["speedup_vs_sequential"] = (
        round(totals["cell_wall_s_total"] / wall, 2) if wall > 0 else 0.0)
    totals["events_per_sec"] = (
        round(totals["sim_events"] / wall, 0) if wall > 0 else 0.0)
    record = {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "host": _host(),
        "jobs": jobs,
        "sweeps": entries,
        "totals": totals,
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record
