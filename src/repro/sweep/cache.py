"""Content-addressed result cache for sweep cells.

A cell's cache key is a SHA-256 over the canonical JSON of

* a schema tag (bumped when the record layout changes),
* a **code-version salt** — a digest of every ``repro`` source file, so
  editing the simulator silently invalidates all cached results (stale
  results from an older model are the one thing a result cache must never
  serve), and
* the cell's :meth:`~repro.sweep.spec.RunSpec.to_dict` (system, app,
  cluster, seed, config overrides — *not* the cosmetic label).

Records are one JSON file per key, sharded by the key's first two hex
digits, written atomically (temp file + ``os.replace``) so a crashed or
killed sweep never leaves a half-written record for ``--resume`` to trip
over.  The salt can be pinned with ``REPRO_SWEEP_SALT`` (used by tests and
by anyone who wants cache hits across known-benign source edits).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Any, Dict, Optional

from .spec import CellResult, RunSpec

__all__ = ["SweepCache", "cell_key", "code_salt", "default_cache_dir",
           "CACHE_SCHEMA"]

#: bump when the record layout or CellResult fields change
CACHE_SCHEMA = 1

_salt_cache: Optional[str] = None


def code_salt() -> str:
    """Digest of the ``repro`` package sources (memoized per process).

    ``REPRO_SWEEP_SALT`` overrides it when set.
    """
    global _salt_cache
    env = os.environ.get("REPRO_SWEEP_SALT")
    if env is not None:
        return env
    if _salt_cache is None:
        root = pathlib.Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _salt_cache = h.hexdigest()
    return _salt_cache


def cell_key(spec: RunSpec, salt: Optional[str] = None) -> str:
    """Content hash identifying one cell's result."""
    payload = {
        "schema": CACHE_SCHEMA,
        "salt": salt if salt is not None else code_salt(),
        "cell": spec.to_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """``REPRO_SWEEP_CACHE`` or ``~/.cache/repro-sweep``."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-sweep"


class SweepCache:
    """One JSON record per cell under ``root``, sharded by key prefix."""

    def __init__(self, root: pathlib.Path):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The full cached record, or ``None`` on miss/corruption.

        A corrupt record (partial write from a hard kill predating the
        atomic-write path, disk trouble) counts as a miss: the sweep
        re-runs the cell and overwrites it.
        """
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if record.get("schema") != CACHE_SCHEMA or "result" not in record:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def get_result(self, key: str) -> Optional[CellResult]:
        record = self.get(key)
        if record is None:
            return None
        return CellResult.from_dict(record["result"])

    def put(self, key: str, spec: RunSpec, result: CellResult,
            wall_s: float) -> None:
        """Atomically persist one cell's record."""
        record = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "spec": spec.to_dict(),
            "label": spec.display(),
            "result": result.to_dict(),
            # analyze: ignore[REP102] cache provenance metadata: records
            # *when* the host produced the entry, never feeds a simulation
            "meta": {"wall_s": wall_s, "saved_at": time.time()},
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
