"""Shared CLI plumbing for experiment runners.

Both entry points (``python -m repro run`` and ``python -m repro sweep``)
need the same two things: filter generic CLI options down to what a
runner's signature accepts, and write a result's text/SVG artifacts.
"""

from __future__ import annotations

import inspect
import pathlib
from typing import Any, Callable, Dict, List

__all__ = ["accepted_kwargs", "save_artifacts"]


def accepted_kwargs(fn: Callable[..., Any],
                    kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of ``kwargs`` the runner's signature accepts.

    Experiments declare what they can be parameterized with (``seed``,
    ``steal_policy``, ``cell_runner``, ...); runners with ``**kwargs``
    forward everything to the scalability harness and accept the full set.
    """
    params = inspect.signature(fn).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in params}


def save_artifacts(result, out_dir: pathlib.Path) -> List[str]:
    """Write one experiment's text table and SVG figures; returns paths."""
    from .figures import svgs_for

    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    text = result.render()
    for key in ("fig16", "fig17"):
        if key in result.extra:
            text += f"\n\n--- {key} ---\n{result.extra[key]}"
    path = out_dir / f"{result.experiment_id}.txt"
    path.write_text(text + "\n")
    written.append(str(path))
    for name, svg in svgs_for(result).items():
        svg_path = out_dir / f"{name}.svg"
        svg_path.write_text(svg)
        written.append(str(svg_path))
    return written
