"""Figs. 7-14: scalability and absolute performance, 1-16 GTX480 nodes.

For each application the paper runs three systems (Sec. IV):

* **Satin** — the original CPU-only runtime; leaves are single-threaded, so
  8 workers per node and ~8x more jobs are needed to fill a node,
* **Cashmere, non-optimized kernels** — level-``perfect`` kernels only,
* **Cashmere, optimized kernels** — the per-level optimized versions.

All runs strong-scale the paper-size problem.  "Scalability" figures
(7/9/11/13) plot speedup relative to the same system's one-node run;
"absolute performance" figures (8/10/12/14) plot application GFLOPS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..apps.kmeans import KMeansApp
from ..apps.matmul import MatmulApp
from ..apps.nbody import NBodyApp
from ..apps.raytracer import RaytracerApp
from ..sweep.spec import (
    CellResult,
    ClusterSpec,
    RunSpec,
    config_items,
    run_cells_inline,
)
from .harness import ExperimentResult, experiment

__all__ = ["ScalabilityPoint", "scalability_study", "scalability_cells",
           "APP_BUILDERS", "SYSTEMS", "fig7_8", "fig9_10", "fig11_12",
           "fig13_14"]

SYSTEMS = ("satin", "cashmere-unopt", "cashmere-opt")
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16)


def _raytracer(satin: bool) -> RaytracerApp:
    # Satin's single-threaded leaves need ~8x finer granularity.
    return RaytracerApp(leaf_rows=8 if satin else 16)


def _matmul(satin: bool) -> MatmulApp:
    return MatmulApp(leaf_block=1024 if satin else 2048)


def _kmeans(satin: bool) -> KMeansApp:
    return KMeansApp(n_points=1 << 28,
                     leaf_points=(1 << 16) if satin else (1 << 18))


def _nbody(satin: bool) -> NBodyApp:
    return NBodyApp(n_bodies=1 << 21,
                    leaf_bodies=(1 << 9) if satin else (1 << 10))


#: application name -> builder(satin: bool) -> fresh app instance
APP_BUILDERS: Dict[str, Callable[[bool], object]] = {
    "raytracer": _raytracer,
    "matmul": _matmul,
    "k-means": _kmeans,
    "n-body": _nbody,
}


@dataclass
class ScalabilityPoint:
    nodes: int
    makespan_s: float
    gflops: float
    speedup: float = 1.0


def scalability_cell(app_name: str, system: str, nodes: int, seed: int = 42,
                     steal_policy: str = "random",
                     scheduler_policy: str = "makespan") -> RunSpec:
    """The sweep cell for one (system, nodes) point of a study."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; known: {SYSTEMS}")
    if system == "satin":
        cluster = ClusterSpec(kind="satin_cpu", num_nodes=nodes)
        config = config_items(steal_policy=steal_policy)
    else:
        cluster = ClusterSpec(kind="gtx480", num_nodes=nodes)
        config = config_items(steal_policy=steal_policy,
                              scheduler_policy=scheduler_policy)
    return RunSpec(system=system, app=app_name, cluster=cluster, seed=seed,
                   config=config,
                   label=f"{app_name}/{system}/n{nodes}/seed{seed}")


def scalability_cells(app_name: str,
                      node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
                      systems: Sequence[str] = SYSTEMS,
                      seed: int = 42,
                      steal_policy: str = "random",
                      scheduler_policy: str = "makespan") -> List[RunSpec]:
    """The full config grid of one study, in (system, nodes) order."""
    return [scalability_cell(app_name, system, nodes, seed=seed,
                             steal_policy=steal_policy,
                             scheduler_policy=scheduler_policy)
            for system in systems for nodes in node_counts]


def scalability_study(app_name: str,
                      node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
                      systems: Sequence[str] = SYSTEMS,
                      seed: int = 42,
                      steal_policy: str = "random",
                      scheduler_policy: str = "makespan",
                      cell_runner: Optional[Callable[
                          [Sequence[RunSpec]], List[CellResult]]] = None
                      ) -> Dict[str, List[ScalabilityPoint]]:
    """Run the full study for one application.

    The study enumerates its grid as sweep cells and executes them through
    ``cell_runner`` — inline and sequential by default, or the parallel
    cached engine when ``python -m repro sweep`` injects a
    :meth:`repro.sweep.engine.SweepSession.runner`.
    """
    if app_name not in APP_BUILDERS:
        raise KeyError(f"unknown application {app_name!r}; known: "
                       f"{sorted(APP_BUILDERS)}")
    cells = scalability_cells(app_name, node_counts=node_counts,
                              systems=systems, seed=seed,
                              steal_policy=steal_policy,
                              scheduler_policy=scheduler_policy)
    results = (cell_runner or run_cells_inline)(cells)
    out: Dict[str, List[ScalabilityPoint]] = {}
    grid = iter(results)
    for system in systems:
        points: List[ScalabilityPoint] = []
        base: float = 0.0
        for nodes in node_counts:
            cell = next(grid)
            if not points:
                base = cell.makespan_s
            points.append(ScalabilityPoint(
                nodes=nodes,
                makespan_s=cell.makespan_s,
                gflops=cell.gflops,
                speedup=base / cell.makespan_s if cell.makespan_s > 0 else 0.0,
            ))
        out[system] = points
    return out


def _figure_pair(app_name: str, experiment_id: str, title: str,
                 node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
                 systems: Sequence[str] = SYSTEMS,
                 seed: int = 42,
                 steal_policy: str = "random",
                 scheduler_policy: str = "makespan",
                 cell_runner=None) -> ExperimentResult:
    study = scalability_study(app_name, node_counts=node_counts,
                              systems=systems, seed=seed,
                              steal_policy=steal_policy,
                              scheduler_policy=scheduler_policy,
                              cell_runner=cell_runner)
    rows = []
    for i, nodes in enumerate(node_counts):
        row: List = [nodes]
        for system in systems:
            pt = study[system][i]
            row += [round(pt.speedup, 2), round(pt.gflops, 1)]
        rows.append(row)
    headers = ["nodes"]
    for system in systems:
        headers += [f"{system} speedup", f"{system} GFLOPS"]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        extra={"study": study, "node_counts": list(node_counts)},
    )


@experiment("fig7_8")
def fig7_8(**kwargs) -> ExperimentResult:
    """Figs. 7/8: raytracer scalability + absolute performance."""
    return _figure_pair("raytracer", "fig7_8",
                        "Raytracer, 1-16 GTX480 nodes "
                        "(Cornell 16384x8192, 500 samples)", **kwargs)


@experiment("fig9_10")
def fig9_10(**kwargs) -> ExperimentResult:
    """Figs. 9/10: matrix multiplication scalability + absolute performance."""
    return _figure_pair("matmul", "fig9_10",
                        "Matrix multiplication, 1-16 GTX480 nodes "
                        "(32768x32768 single precision)", **kwargs)


@experiment("fig11_12")
def fig11_12(**kwargs) -> ExperimentResult:
    """Figs. 11/12: k-means scalability + absolute performance."""
    return _figure_pair("k-means", "fig11_12",
                        "K-means, 1-16 GTX480 nodes "
                        "(268M points, 4 features, 4096 clusters, 3 iters)",
                        **kwargs)


@experiment("fig13_14")
def fig13_14(**kwargs) -> ExperimentResult:
    """Figs. 13/14: n-body scalability + absolute performance."""
    return _figure_pair("n-body", "fig13_14",
                        "N-body, 1-16 GTX480 nodes (2M bodies, 2 iters)",
                        **kwargs)
