"""Tables I and II of the paper (static context tables).

Table I lists TOP500 supercomputers (Nov 2014) with heterogeneous many-core
devices; Table II classifies the four evaluation applications.  Both are
reproduced verbatim so the benchmark harness prints the same rows.

These runners enumerate no simulation cells, so under ``python -m repro
sweep`` they execute inline (the sweep CLI only injects a ``cell_runner``
into runners whose signature accepts one).
"""

from __future__ import annotations

from .harness import ExperimentResult, experiment

__all__ = ["table1", "table2", "TOP500_HETEROGENEOUS", "APPLICATION_CLASSES"]

#: Table I — TOP500 supercomputers with heterogeneous many-core devices.
TOP500_HETEROGENEOUS = [
    ("Quartetto", "Kyushu University", 49, "K20, K20X, Xeon Phi 5110P"),
    ("Lomonosov", "Moscow State University", 58, "2070, PowerXCell 8i"),
    ("HYDRA", "Max-Planck-Gesellschaft MPI/IPP", 77, "K20X, Xeon Phi"),
    ("SuperMIC", "Louisiana State University", 88, "Xeon Phi 7110P, K20X"),
    ("Palmetto2", "Clemson University", 89, "K20m, M2075, M2070"),
    ("Armstrong", "Navy DSRC", 103, "Xeon Phi 5120D, K40"),
    ("Loewe-CSC", "Universitaet Frankfurt", 179, "HD5870, FirePro S10000"),
    ("Inspur TS10000", "Shanghai Jiaotong University", 310,
     "K20m, Xeon Phi 5110P"),
    ("Tsubame 2.5", "Tokyo Institute of Technology", 392,
     "K20X, S1070, S2070"),
    ("El Gato", "University of Arizona", 465, "K20, K20X, Xeon Phi 5110P"),
]

#: Table II — application classes used to evaluate Cashmere.
APPLICATION_CLASSES = [
    ("raytracer", "irregular", "heavy", "light"),
    ("matmul", "regular", "heavy", "heavy"),
    ("k-means", "iterative", "moderate", "light"),
    ("n-body", "iterative", "heavy", "moderate"),
]


@experiment("table1")
def table1() -> ExperimentResult:
    """Table I: TOP500 supercomputers with heterogeneous many-core devices."""
    return ExperimentResult(
        experiment_id="table1",
        title="TOP500 supercomputers with heterogeneous many-core devices",
        headers=["name", "institute", "ranking", "configuration"],
        rows=[list(r) for r in TOP500_HETEROGENEOUS],
    )


@experiment("table2")
def table2() -> ExperimentResult:
    """Table II: the classes of applications used to evaluate Cashmere."""
    return ExperimentResult(
        experiment_id="table2",
        title="Classes of applications used to evaluate Cashmere",
        headers=["application", "type", "computation", "communication"],
        rows=[list(r) for r in APPLICATION_CLASSES],
    )
