"""DAG scheduler ablation: greedy vs lookahead on the compound apps.

The two :mod:`repro.graph` pipeline applications run on a grid of
heterogeneous cluster mixes under both device-placement policies; the
table reports the makespan of each and the lookahead speedup.  Because
the simulation charges every cross-device edge (d2h + network + h2d)
while the greedy policy cannot see them, the dependency-aware policy is
expected to achieve makespan <= greedy on every mix — the acceptance
property ``tests/test_graph_ablation.py`` locks in.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sweep.spec import ClusterSpec, RunSpec, config_items, run_cells_inline
from .harness import ExperimentResult, experiment

__all__ = ["ablation_graph_scheduler", "GRAPH_MIXES", "GRAPH_ABLATION_APPS"]

#: heterogeneous node mixes of the ablation grid (name -> per-node devices)
GRAPH_MIXES: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "gtx480+k20": (("gtx480",), ("k20",)),
    "k20+phi": (("k20", "xeon_phi"),),
    "2xgtx480+c2050": (("gtx480",), ("gtx480",), ("c2050",)),
    "5-way": (("gtx480",), ("k20",), ("c2050",), ("titan",), ("hd7970",)),
}

GRAPH_ABLATION_APPS = ("path-tracer", "kmeans-pp")

_POLICIES = ("makespan", "makespan-lookahead")


@experiment("ablation_graph_scheduler")
def ablation_graph_scheduler(seed: int = 42, cell_runner=None,
                             scale: float = 1.0) -> ExperimentResult:
    """Greedy vs dependency-aware lookahead placement on the DAG apps."""
    cells: List[RunSpec] = []
    for app in GRAPH_ABLATION_APPS:
        for mix, nodes in GRAPH_MIXES.items():
            for policy in _POLICIES:
                cells.append(RunSpec(
                    system="graph", app=app,
                    cluster=ClusterSpec(kind="nodes", nodes=nodes, name=mix),
                    seed=seed,
                    config=config_items(scheduler_policy=policy, scale=scale),
                    label=f"ablation/graph-sched/{app}/{mix}/{policy}"
                          f"/seed{seed}"))
    results = (cell_runner or run_cells_inline)(cells)
    by_label = {cell.label: res for cell, res in zip(cells, results)}
    rows = []
    for app in GRAPH_ABLATION_APPS:
        for mix in GRAPH_MIXES:
            prefix = f"ablation/graph-sched/{app}/{mix}"
            greedy = by_label[f"{prefix}/makespan/seed{seed}"]
            look = by_label[f"{prefix}/makespan-lookahead/seed{seed}"]
            rows.append([
                app, mix,
                round(greedy.makespan_s * 1e3, 3),
                round(look.makespan_s * 1e3, 3),
                round(greedy.makespan_s / look.makespan_s, 2)
                if look.makespan_s > 0 else 0.0,
            ])
    return ExperimentResult(
        experiment_id="ablation_graph_scheduler",
        title="Ablation: DAG placement policy (greedy vs lookahead)",
        headers=["app", "mix", "greedy ms", "lookahead ms", "speedup"],
        rows=rows,
    )
