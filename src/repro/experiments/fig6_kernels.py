"""Fig. 6: kernel performance, unoptimized vs optimized, 4 apps x 7 devices.

The paper times kernel execution alone, "without any overhead such as
copying data to the device".  We do the same: the roofline model evaluates
one paper-scale leaf launch per (application, device, version) and reports
achieved GFLOPS.

Expected shape (Sec. V-A): optimization has a drastic effect for matmul,
k-means and n-body on every device, but almost none for the raytracer —
its divergence is algorithmic and stepwise refinement cannot remove it.
"""

from __future__ import annotations

from typing import Dict

from ..apps.kmeans import KMeansApp
from ..apps.matmul import MatmulApp
from ..apps.nbody import NBodyApp
from ..apps.raytracer import RaytracerApp
from ..devices.perfmodel import kernel_gflops
from ..devices.specs import device_spec
from ..mcl.hdl.library import leaf_names
from .harness import ExperimentResult, experiment

__all__ = ["fig6", "kernel_performance", "FIG6_LEAVES"]

#: representative paper-scale leaf launch per application:
#: (app class, kernel name, scalar parameters of one leaf)
FIG6_LEAVES = {
    "raytracer": (RaytracerApp, "raytrace",
                  {"w": 16384, "h": 8192, "row0": 0, "nrows": 64,
                   "ns": 500, "no": 9, "seed": 1}),
    "matmul": (MatmulApp, "matmul",
               {"n": 2048, "m": 2048, "p": 32768}),
    "k-means": (KMeansApp, "kmeans",
                {"nk": 4096, "d": 4, "np": 1 << 20}),
    "n-body": (NBodyApp, "nbody",
               {"nl": 1 << 14, "n": 2_000_000, "dt": 0.01}),
}

#: the paper's device order in Fig. 6
FIG6_DEVICES = ["gtx480", "c2050", "gtx680", "k20", "titan", "hd7970",
                "xeon_phi"]


def kernel_performance() -> Dict[str, Dict[str, Dict[str, float]]]:
    """GFLOPS per app per device for both kernel versions.

    Returns ``{app: {device: {"unoptimized": g, "optimized": g}}}``.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app_name, (app_cls, kernel_name, params) in FIG6_LEAVES.items():
        libs = {
            "unoptimized": app_cls.build_library(optimized=False),
            "optimized": app_cls.build_library(optimized=True),
        }
        per_device: Dict[str, Dict[str, float]] = {}
        for device in leaf_names():
            spec = device_spec(device)
            per_device[device] = {}
            for version, lib in libs.items():
                compiled = lib.compile(kernel_name, device)
                profile = compiled.profile(params)
                per_device[device][version] = kernel_gflops(profile, spec)
        out[app_name] = per_device
    return out


@experiment("fig6")
def fig6() -> ExperimentResult:
    """Fig. 6: kernel GFLOPS for the unoptimized and optimized versions."""
    perf = kernel_performance()
    rows = []
    for app_name in FIG6_LEAVES:
        for device in FIG6_DEVICES:
            u = perf[app_name][device]["unoptimized"]
            o = perf[app_name][device]["optimized"]
            rows.append([app_name, device, round(u, 1), round(o, 1),
                         round(o / u, 2) if u > 0 else float("inf")])
    return ExperimentResult(
        experiment_id="fig6",
        title="Kernel performance (GFLOPS), unoptimized vs optimized",
        headers=["application", "device", "unoptimized", "optimized",
                 "speedup"],
        rows=rows,
        extra={"performance": perf},
    )
