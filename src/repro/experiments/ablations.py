"""Ablation studies for the design choices DESIGN.md calls out.

Not part of the paper's evaluation; these quantify how much each mechanism
contributes, using heterogeneous k-means (the paper's flagship scenario):

* **scheduler** — the paper's measured-time min-makespan placement vs a
  static-table-only policy vs speed-oblivious round-robin (Sec. III-B),
* **overlap** — PCIe transfers overlapping kernels vs fully serialized
  devices (Sec. II-C3),
* **steal strategy** — full random steal rounds vs one victim per backoff,
* **network** — QDR InfiniBand vs gigabit Ethernet for the
  communication-bound matmul (the "skewed computation/communication ratio").
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..apps.base import run_cashmere
from ..cluster.das4 import gtx480_cluster, heterogeneous_kmeans
from ..core.runtime import CashmereConfig
from ..sim.network import GIGABIT_ETHERNET
from .harness import ExperimentResult, experiment
from .scalability import APP_BUILDERS

__all__ = ["ablation_scheduler", "ablation_overlap", "ablation_steal",
           "ablation_steal_policy", "ablation_network"]


def _kmeans_het_run(seed: int = 42, overlap: bool = True,
                    **config_kwargs: Any) -> float:
    config = heterogeneous_kmeans()
    config = dataclasses.replace(config, device_overlap=overlap)
    app = APP_BUILDERS["k-means"](False)
    result = run_cashmere(app, config, app.root_task(), optimized=True,
                          config=CashmereConfig(seed=seed, **config_kwargs))
    return result.stats.gflops()


@experiment("ablation_scheduler")
def ablation_scheduler(seed: int = 42) -> ExperimentResult:
    """Intra-node placement policy on heterogeneous k-means."""
    rows = []
    baseline = None
    for policy in ("makespan", "static", "round-robin"):
        gflops = _kmeans_het_run(seed=seed, scheduler_policy=policy)
        if baseline is None:
            baseline = gflops
        rows.append([policy, round(gflops, 0),
                     round(100 * gflops / baseline, 1)])
    return ExperimentResult(
        experiment_id="ablation_scheduler",
        title="Ablation: intra-node device scheduler (het. k-means)",
        headers=["policy", "GFLOPS", "% of min-makespan"],
        rows=rows,
    )


@experiment("ablation_overlap")
def ablation_overlap(seed: int = 42) -> ExperimentResult:
    """PCIe transfer / kernel overlap on matmul (hundreds of MB per leaf).

    K-means leaves move only O(k) bytes, so overlap barely shows there;
    matmul's panel transfers are a significant fraction of its kernel time.
    """
    rows = []
    app_builder = APP_BUILDERS["matmul"]
    for overlap in (True, False):
        app = app_builder(False)
        config = dataclasses.replace(gtx480_cluster(4),
                                     device_overlap=overlap)
        result = run_cashmere(app, config, app.root_task(), optimized=True,
                              config=CashmereConfig(seed=seed))
        rows.append(["overlapped" if overlap else "serialized",
                     round(result.stats.gflops(), 0)])
    return ExperimentResult(
        experiment_id="ablation_overlap",
        title="Ablation: transfer/kernel overlap (4x GTX480 matmul)",
        headers=["device engines", "GFLOPS"],
        rows=rows,
    )


@experiment("ablation_steal")
def ablation_steal(seed: int = 42) -> ExperimentResult:
    """Steal rounds vs single random attempts, 16-node k-means."""
    rows = []
    app_builder = APP_BUILDERS["k-means"]
    for sweep in (True, False):
        app = app_builder(False)
        result = run_cashmere(app, gtx480_cluster(16), app.root_task(),
                              optimized=True,
                              config=CashmereConfig(seed=seed,
                                                    steal_sweep=sweep))
        rows.append(["victim sweep" if sweep else "single victim",
                     round(result.stats.gflops(), 0),
                     result.stats.steal_attempts,
                     result.stats.steal_successes])
    return ExperimentResult(
        experiment_id="ablation_steal",
        title="Ablation: steal strategy (16x GTX480 k-means)",
        headers=["strategy", "GFLOPS", "steal attempts", "successes"],
        rows=rows,
    )


@experiment("ablation_steal_policy")
def ablation_steal_policy(seed: int = 42) -> ExperimentResult:
    """Victim-selection policy ablation, 16-node k-means.

    Compares the paper's uniform-random sweep against the two pluggable
    alternatives of :mod:`repro.satin.steal` (cluster-aware locality
    stealing and adaptive history-weighted selection) through the unified
    policy registry — the end-to-end exercise of the steal-policy layer.
    """
    from ..satin.steal import steal_policy_names

    rows = []
    baseline = None
    app_builder = APP_BUILDERS["k-means"]
    for policy in steal_policy_names():
        app = app_builder(False)
        result = run_cashmere(app, gtx480_cluster(16), app.root_task(),
                              optimized=True,
                              config=CashmereConfig(seed=seed,
                                                    steal_policy=policy))
        gflops = result.stats.gflops()
        if baseline is None:
            baseline = gflops
        attempts = result.stats.steal_attempts
        successes = result.stats.steal_successes
        rows.append([policy, round(gflops, 0),
                     round(100 * gflops / baseline, 1),
                     attempts, successes,
                     round(100 * successes / attempts, 1) if attempts else 0.0])
    return ExperimentResult(
        experiment_id="ablation_steal_policy",
        title="Ablation: steal victim-selection policy (16x GTX480 k-means)",
        headers=["policy", "GFLOPS", "% of random", "steal attempts",
                 "successes", "hit %"],
        rows=rows,
    )


@experiment("ablation_network")
def ablation_network(seed: int = 42) -> ExperimentResult:
    """Interconnect speed on the communication-bound matmul, 8 nodes."""
    rows = []
    app_builder = APP_BUILDERS["matmul"]
    for label, network in (("QDR InfiniBand", None),
                           ("gigabit Ethernet", GIGABIT_ETHERNET)):
        app = app_builder(False)
        config = gtx480_cluster(8) if network is None \
            else gtx480_cluster(8, network=network)
        result = run_cashmere(app, config, app.root_task(), optimized=True,
                              config=CashmereConfig(seed=seed))
        rows.append([label, round(result.stats.gflops(), 0)])
    return ExperimentResult(
        experiment_id="ablation_network",
        title="Ablation: interconnect (8x GTX480 matmul, optimized)",
        headers=["network", "GFLOPS"],
        rows=rows,
    )
