"""Ablation studies for the design choices DESIGN.md calls out.

Not part of the paper's evaluation; these quantify how much each mechanism
contributes, using heterogeneous k-means (the paper's flagship scenario):

* **scheduler** — the paper's measured-time min-makespan placement vs a
  static-table-only policy vs speed-oblivious round-robin (Sec. III-B),
* **overlap** — PCIe transfers overlapping kernels vs fully serialized
  devices (Sec. II-C3),
* **steal strategy** — full random steal rounds vs one victim per backoff,
* **network** — QDR InfiniBand vs gigabit Ethernet for the
  communication-bound matmul (the "skewed computation/communication ratio").

Every ablation enumerates its variants as a sweep-cell grid executed
through ``cell_runner`` (inline by default, pooled + cached under
``python -m repro sweep``).
"""

from __future__ import annotations

from typing import List

from ..sweep.spec import ClusterSpec, RunSpec, config_items, run_cells_inline
from .harness import ExperimentResult, experiment

__all__ = ["ablation_scheduler", "ablation_overlap", "ablation_steal",
           "ablation_steal_policy", "ablation_network"]

_HET_KMEANS = ClusterSpec(kind="het_kmeans")


@experiment("ablation_scheduler")
def ablation_scheduler(seed: int = 42, cell_runner=None) -> ExperimentResult:
    """Intra-node placement policy on heterogeneous k-means."""
    policies = ("makespan", "static", "round-robin")
    cells: List[RunSpec] = [
        RunSpec(system="cashmere-opt", app="k-means", cluster=_HET_KMEANS,
                seed=seed, config=config_items(scheduler_policy=policy),
                label=f"ablation/scheduler/{policy}/seed{seed}")
        for policy in policies]
    results = (cell_runner or run_cells_inline)(cells)
    rows = []
    baseline = None
    for policy, cell in zip(policies, results):
        if baseline is None:
            baseline = cell.gflops
        rows.append([policy, round(cell.gflops, 0),
                     round(100 * cell.gflops / baseline, 1)])
    return ExperimentResult(
        experiment_id="ablation_scheduler",
        title="Ablation: intra-node device scheduler (het. k-means)",
        headers=["policy", "GFLOPS", "% of min-makespan"],
        rows=rows,
    )


@experiment("ablation_overlap")
def ablation_overlap(seed: int = 42, cell_runner=None) -> ExperimentResult:
    """PCIe transfer / kernel overlap on matmul (hundreds of MB per leaf).

    K-means leaves move only O(k) bytes, so overlap barely shows there;
    matmul's panel transfers are a significant fraction of its kernel time.
    """
    variants = (True, False)
    cells = [
        RunSpec(system="cashmere-opt", app="matmul",
                cluster=ClusterSpec(kind="gtx480", num_nodes=4,
                                    device_overlap=overlap),
                seed=seed,
                label=f"ablation/overlap/{overlap}/seed{seed}")
        for overlap in variants]
    results = (cell_runner or run_cells_inline)(cells)
    rows = [["overlapped" if overlap else "serialized",
             round(cell.gflops, 0)]
            for overlap, cell in zip(variants, results)]
    return ExperimentResult(
        experiment_id="ablation_overlap",
        title="Ablation: transfer/kernel overlap (4x GTX480 matmul)",
        headers=["device engines", "GFLOPS"],
        rows=rows,
    )


@experiment("ablation_steal")
def ablation_steal(seed: int = 42, cell_runner=None) -> ExperimentResult:
    """Steal rounds vs single random attempts, 16-node k-means."""
    variants = (True, False)
    cells = [
        RunSpec(system="cashmere-opt", app="k-means",
                cluster=ClusterSpec(kind="gtx480", num_nodes=16), seed=seed,
                config=config_items(steal_sweep=sweep),
                label=f"ablation/steal-sweep/{sweep}/seed{seed}")
        for sweep in variants]
    results = (cell_runner or run_cells_inline)(cells)
    rows = [["victim sweep" if sweep else "single victim",
             round(cell.gflops, 0), cell.steal_attempts,
             cell.steal_successes]
            for sweep, cell in zip(variants, results)]
    return ExperimentResult(
        experiment_id="ablation_steal",
        title="Ablation: steal strategy (16x GTX480 k-means)",
        headers=["strategy", "GFLOPS", "steal attempts", "successes"],
        rows=rows,
    )


@experiment("ablation_steal_policy")
def ablation_steal_policy(seed: int = 42,
                          cell_runner=None) -> ExperimentResult:
    """Victim-selection policy ablation, 16-node k-means.

    Compares the paper's uniform-random sweep against the two pluggable
    alternatives of :mod:`repro.satin.steal` (cluster-aware locality
    stealing and adaptive history-weighted selection) through the unified
    policy registry — the end-to-end exercise of the steal-policy layer.
    """
    from ..satin.steal import steal_policy_names

    policies = list(steal_policy_names())
    cells = [
        RunSpec(system="cashmere-opt", app="k-means",
                cluster=ClusterSpec(kind="gtx480", num_nodes=16), seed=seed,
                config=config_items(steal_policy=policy),
                label=f"ablation/steal-policy/{policy}/seed{seed}")
        for policy in policies]
    results = (cell_runner or run_cells_inline)(cells)
    rows = []
    baseline = None
    for policy, cell in zip(policies, results):
        if baseline is None:
            baseline = cell.gflops
        attempts = cell.steal_attempts
        successes = cell.steal_successes
        rows.append([policy, round(cell.gflops, 0),
                     round(100 * cell.gflops / baseline, 1),
                     attempts, successes,
                     round(100 * successes / attempts, 1) if attempts else 0.0])
    return ExperimentResult(
        experiment_id="ablation_steal_policy",
        title="Ablation: steal victim-selection policy (16x GTX480 k-means)",
        headers=["policy", "GFLOPS", "% of random", "steal attempts",
                 "successes", "hit %"],
        rows=rows,
    )


@experiment("ablation_network")
def ablation_network(seed: int = 42, cell_runner=None) -> ExperimentResult:
    """Interconnect speed on the communication-bound matmul, 8 nodes."""
    variants = (("QDR InfiniBand", "qdr-infiniband"),
                ("gigabit Ethernet", "gigabit-ethernet"))
    cells = [
        RunSpec(system="cashmere-opt", app="matmul",
                cluster=ClusterSpec(kind="gtx480", num_nodes=8,
                                    network=network),
                seed=seed,
                label=f"ablation/network/{network}/seed{seed}")
        for _, network in variants]
    results = (cell_runner or run_cells_inline)(cells)
    rows = [[label, round(cell.gflops, 0)]
            for (label, _), cell in zip(variants, results)]
    return ExperimentResult(
        experiment_id="ablation_network",
        title="Ablation: interconnect (8x GTX480 matmul, optimized)",
        headers=["network", "GFLOPS"],
        rows=rows,
    )
