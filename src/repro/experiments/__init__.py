"""Experiment runners reproducing every table and figure of the paper.

================ ==========================================
id               what it reproduces
================ ==========================================
``table1``       Table I   — TOP500 heterogeneous machines
``table2``       Table II  — application classification
``fig6``         Fig. 6    — kernel GFLOPS, unopt vs opt
``fig7_8``       Figs. 7/8 — raytracer scalability/perf
``fig9_10``      Figs. 9/10 — matmul scalability/perf
``fig11_12``     Figs. 11/12 — k-means scalability/perf
``fig13_14``     Figs. 13/14 — n-body scalability/perf
``table3``       Table III — heterogeneous performance
``fig15``        Fig. 15   — heterogeneous efficiency
``fig16_17``     Figs. 16/17 — k-means Gantt charts
================ ==========================================
"""

from . import (  # noqa: F401
    ablations,
    fig6_kernels,
    gantt,
    heterogeneity,
    papertables,
    scalability,
)
from .harness import (
    EXPERIMENTS,
    ExperimentResult,
    experiment,
    experiment_runner,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment",
    "run_experiment",
    "experiment_runner",
    "list_experiments",
]
