"""Experiment harness: result containers, registry, and report rendering.

Every table and figure of the paper's evaluation has a runner here (see the
per-experiment index in DESIGN.md).  Runners return structured results and
can render them as the text tables the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..util.tables import format_table

__all__ = ["ExperimentResult", "EXPERIMENTS", "experiment", "run_experiment",
           "experiment_runner", "list_experiments"]


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment_id: str            #: e.g. "fig6", "table3"
    title: str
    headers: List[str]
    rows: List[List[Any]]
    #: free-form extras (raw series, traces, ...)
    extra: Dict[str, Any] = field(default_factory=dict)
    #: the run's :class:`~repro.obs.metrics.MetricsRegistry`, when the runner
    #: kept a runtime around (``result.stats.registry``); lets callers render
    #: the metric summary next to the paper table from one source of truth
    metrics: Optional[Any] = None

    def render(self, with_metrics: bool = False) -> str:
        out = format_table(self.headers, self.rows,
                           title=f"[{self.experiment_id}] {self.title}")
        if with_metrics and self.metrics is not None:
            from ..obs.export import metrics_summary
            out += "\n\n" + metrics_summary(
                self.metrics, title=f"[{self.experiment_id}] metrics")
        return out


#: experiment id -> runner registry
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def experiment(experiment_id: str):
    """Decorator registering an experiment runner under its paper id."""

    def wrap(fn: Callable[..., ExperimentResult]):
        if experiment_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = fn
        fn.experiment_id = experiment_id
        return fn

    return wrap


def experiment_runner(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered runner by id (importing runners lazily).

    The CLI uses the runner's signature to decide which of its generic
    options (``--seed``, ``--steal-policy``, ...) a given experiment
    accepts.
    """
    from . import (  # noqa: F401
        ablations, fig6_kernels, gantt, graphs, heterogeneity, papertables,
        scalability)
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: "
                       f"{sorted(EXPERIMENTS)}") from None


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a registered experiment by id (importing runners lazily)."""
    return experiment_runner(experiment_id)(**kwargs)


def list_experiments() -> List[str]:
    from . import (  # noqa: F401
        ablations, fig6_kernels, gantt, graphs, heterogeneity, papertables,
        scalability)
    return sorted(EXPERIMENTS)
