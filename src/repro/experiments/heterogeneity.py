"""Table III and Fig. 15: heterogeneous executions.

Table III reports the performance (GFLOPS) of the four applications on
heterogeneous DAS-4 configurations; Fig. 15 the *efficiency*: measured
performance divided by the maximum attainable — the sum over the
configuration's nodes of each node type's one-node performance (Sec. IV).
Both use optimized kernels.

Expected shape (Sec. V-C): heterogeneous efficiency comparable to the
homogeneous (16x GTX480) runs, >90 % for raytracer, k-means and n-body;
lower for the communication-bound matmul.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..apps.base import run_cashmere
from ..cluster.das4 import (
    ClusterConfig,
    gtx480_cluster,
    heterogeneous_kmeans,
    heterogeneous_nbody,
    heterogeneous_small,
)
from ..core.runtime import CashmereConfig
from .harness import ExperimentResult, experiment
from .scalability import APP_BUILDERS

__all__ = ["HeterogeneityResult", "heterogeneous_run", "table3", "fig15",
           "HET_CONFIGS"]

#: application -> heterogeneous configuration builder (Table III)
HET_CONFIGS = {
    "raytracer": heterogeneous_small,
    "matmul": heterogeneous_small,
    "k-means": heterogeneous_kmeans,
    "n-body": heterogeneous_nbody,
}


@dataclass
class HeterogeneityResult:
    app: str
    config_name: str
    device_counts: Dict[str, int]
    het_gflops: float
    max_attainable_gflops: float
    het_efficiency: float
    homogeneous_gflops: float
    homogeneous_efficiency: float


def _one_node_gflops(app_name: str, devices: Tuple[str, ...],
                     seed: int = 42) -> float:
    """One-node run on a node carrying the given device set."""
    app = APP_BUILDERS[app_name](False)
    config = ClusterConfig(name=f"one-{'-'.join(devices)}",
                           nodes=[tuple(devices)])
    result = run_cashmere(app, config, app.root_task(), optimized=True,
                          config=CashmereConfig(seed=seed))
    return result.stats.gflops()


def heterogeneous_run(app_name: str, seed: int = 42,
                      homogeneous_nodes: int = 16) -> HeterogeneityResult:
    """One heterogeneous execution with the efficiency bookkeeping of Sec. IV."""
    config = HET_CONFIGS[app_name]()
    app = APP_BUILDERS[app_name](False)
    result = run_cashmere(app, config, app.root_task(), optimized=True,
                          config=CashmereConfig(seed=seed))
    het_gflops = result.stats.gflops()

    # Maximum attainable: sum of one-node performance per node type.
    node_types: Dict[Tuple[str, ...], int] = {}
    for devices in config.nodes:
        node_types[devices] = node_types.get(devices, 0) + 1
    max_attainable = 0.0
    for devices, count in node_types.items():
        max_attainable += count * _one_node_gflops(app_name, devices, seed)

    # Homogeneous reference: 16x GTX480 (Sec. V-C compares to Sec. V-B).
    homo_app = APP_BUILDERS[app_name](False)
    homo = run_cashmere(homo_app, gtx480_cluster(homogeneous_nodes),
                        homo_app.root_task(), optimized=True,
                        config=CashmereConfig(seed=seed))
    homo_gflops = homo.stats.gflops()
    one_gtx480 = _one_node_gflops(app_name, ("gtx480",), seed)

    return HeterogeneityResult(
        app=app_name,
        config_name=config.name,
        device_counts=config.device_counts(),
        het_gflops=het_gflops,
        max_attainable_gflops=max_attainable,
        het_efficiency=het_gflops / max_attainable if max_attainable else 0.0,
        homogeneous_gflops=homo_gflops,
        homogeneous_efficiency=(homo_gflops / (homogeneous_nodes * one_gtx480)
                                if one_gtx480 else 0.0),
    )


def _config_label(counts: Dict[str, int]) -> str:
    return ", ".join(f"{n} {dev}" for dev, n in sorted(counts.items()))


@experiment("table3")
def table3(seed: int = 42) -> ExperimentResult:
    """Table III: performance of the heterogeneous executions."""
    rows = []
    results = {}
    for app_name in HET_CONFIGS:
        r = heterogeneous_run(app_name, seed=seed)
        results[app_name] = r
        rows.append([app_name, round(r.het_gflops, 0),
                     _config_label(r.device_counts)])
    return ExperimentResult(
        experiment_id="table3",
        title="Performance of the heterogeneous executions",
        headers=["application", "performance (GFLOPS)", "configuration"],
        rows=rows,
        extra={"results": results},
    )


@experiment("fig15")
def fig15(seed: int = 42) -> ExperimentResult:
    """Fig. 15: efficiency of heterogeneous vs homogeneous executions."""
    rows = []
    results = {}
    for app_name in HET_CONFIGS:
        r = heterogeneous_run(app_name, seed=seed)
        results[app_name] = r
        rows.append([app_name,
                     round(100 * r.het_efficiency, 1),
                     round(100 * r.homogeneous_efficiency, 1)])
    return ExperimentResult(
        experiment_id="fig15",
        title="Efficiency of heterogeneous executions (percent)",
        headers=["application", "heterogeneous eff. %", "homogeneous eff. %"],
        rows=rows,
        extra={"results": results},
    )
