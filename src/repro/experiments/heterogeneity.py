"""Table III and Fig. 15: heterogeneous executions.

Table III reports the performance (GFLOPS) of the four applications on
heterogeneous DAS-4 configurations; Fig. 15 the *efficiency*: measured
performance divided by the maximum attainable — the sum over the
configuration's nodes of each node type's one-node performance (Sec. IV).
Both use optimized kernels.

Expected shape (Sec. V-C): heterogeneous efficiency comparable to the
homogeneous (16x GTX480) runs, >90 % for raytracer, k-means and n-body;
lower for the communication-bound matmul.

Each application's bookkeeping is a small config grid — the heterogeneous
run, one one-node reference run per node type, and the homogeneous
16-node reference — enumerated as sweep cells and executed through the
runner's ``cell_runner`` (inline by default; the pooled, cached engine
under ``python -m repro sweep``, where the one-node references of Table
III and Fig. 15 dedupe against each other via the result cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster.das4 import (
    heterogeneous_kmeans,
    heterogeneous_nbody,
    heterogeneous_small,
)
from ..sweep.spec import CellResult, ClusterSpec, RunSpec, run_cells_inline
from .harness import ExperimentResult, experiment

__all__ = ["HeterogeneityResult", "heterogeneous_run", "table3", "fig15",
           "HET_CONFIGS"]

#: application -> heterogeneous configuration builder (Table III)
HET_CONFIGS = {
    "raytracer": heterogeneous_small,
    "matmul": heterogeneous_small,
    "k-means": heterogeneous_kmeans,
    "n-body": heterogeneous_nbody,
}

#: application -> the :class:`ClusterSpec` kind naming the same configuration
_HET_KINDS = {
    "raytracer": "het_small",
    "matmul": "het_small",
    "k-means": "het_kmeans",
    "n-body": "het_nbody",
}


@dataclass
class HeterogeneityResult:
    app: str
    config_name: str
    device_counts: Dict[str, int]
    het_gflops: float
    max_attainable_gflops: float
    het_efficiency: float
    homogeneous_gflops: float
    homogeneous_efficiency: float


@dataclass
class _HetPlan:
    """One app's cell grid plus the bookkeeping to interpret its results."""

    app: str
    config_name: str
    device_counts: Dict[str, int]
    #: node-device-tuple -> how many such nodes the het config has,
    #: in the config's node order (the FP summation order of Sec. IV's
    #: max-attainable figure)
    node_types: Dict[Tuple[str, ...], int]
    roles: List[object]
    specs: List[RunSpec]


def _one_node_cell(app_name: str, devices: Tuple[str, ...],
                   seed: int) -> RunSpec:
    name = f"one-{'-'.join(devices)}"
    return RunSpec(
        system="cashmere-opt", app=app_name,
        cluster=ClusterSpec(kind="nodes", nodes=(tuple(devices),), name=name),
        seed=seed, label=f"{app_name}/{name}/seed{seed}")


def _het_plan(app_name: str, seed: int, homogeneous_nodes: int) -> _HetPlan:
    config = HET_CONFIGS[app_name]()
    node_types: Dict[Tuple[str, ...], int] = {}
    for devices in config.nodes:
        node_types[devices] = node_types.get(devices, 0) + 1
    roles: List[object] = ["het"]
    specs: List[RunSpec] = [RunSpec(
        system="cashmere-opt", app=app_name,
        cluster=ClusterSpec(kind=_HET_KINDS[app_name]), seed=seed,
        label=f"{app_name}/{config.name}/seed{seed}")]
    for devices in node_types:
        roles.append(("one", devices))
        specs.append(_one_node_cell(app_name, devices, seed))
    roles.append("homo")
    specs.append(RunSpec(
        system="cashmere-opt", app=app_name,
        cluster=ClusterSpec(kind="gtx480", num_nodes=homogeneous_nodes),
        seed=seed,
        label=f"{app_name}/gtx480-{homogeneous_nodes}/seed{seed}"))
    # Homogeneous efficiency needs the one-node GTX480 reference; every
    # Table III configuration contains GTX480 nodes, so it is already in
    # the grid — assert rather than silently double-run.
    assert ("one", ("gtx480",)) in roles
    return _HetPlan(app=app_name, config_name=config.name,
                    device_counts=config.device_counts(),
                    node_types=node_types, roles=roles, specs=specs)


def _assemble(plan: _HetPlan, results: Sequence[CellResult],
              homogeneous_nodes: int) -> HeterogeneityResult:
    by_role = dict(zip(plan.roles, results))
    het_gflops = by_role["het"].gflops
    max_attainable = 0.0
    for devices, count in plan.node_types.items():
        max_attainable += count * by_role[("one", devices)].gflops
    homo_gflops = by_role["homo"].gflops
    one_gtx480 = by_role[("one", ("gtx480",))].gflops
    return HeterogeneityResult(
        app=plan.app,
        config_name=plan.config_name,
        device_counts=plan.device_counts,
        het_gflops=het_gflops,
        max_attainable_gflops=max_attainable,
        het_efficiency=het_gflops / max_attainable if max_attainable else 0.0,
        homogeneous_gflops=homo_gflops,
        homogeneous_efficiency=(homo_gflops / (homogeneous_nodes * one_gtx480)
                                if one_gtx480 else 0.0),
    )


def heterogeneous_run(app_name: str, seed: int = 42,
                      homogeneous_nodes: int = 16,
                      cell_runner: Optional[Callable[
                          [Sequence[RunSpec]], List[CellResult]]] = None
                      ) -> HeterogeneityResult:
    """One heterogeneous execution with the efficiency bookkeeping of Sec. IV."""
    plan = _het_plan(app_name, seed, homogeneous_nodes)
    results = (cell_runner or run_cells_inline)(plan.specs)
    return _assemble(plan, results, homogeneous_nodes)


def _run_all(seed: int, cell_runner, homogeneous_nodes: int = 16
             ) -> Dict[str, HeterogeneityResult]:
    """All four applications' grids in one batch (one pool submission)."""
    plans = [_het_plan(app_name, seed, homogeneous_nodes)
             for app_name in HET_CONFIGS]
    all_specs = [spec for plan in plans for spec in plan.specs]
    all_results = (cell_runner or run_cells_inline)(all_specs)
    out: Dict[str, HeterogeneityResult] = {}
    cursor = 0
    for plan in plans:
        chunk = all_results[cursor:cursor + len(plan.specs)]
        cursor += len(plan.specs)
        out[plan.app] = _assemble(plan, chunk, homogeneous_nodes)
    return out


def _config_label(counts: Dict[str, int]) -> str:
    return ", ".join(f"{n} {dev}" for dev, n in sorted(counts.items()))


@experiment("table3")
def table3(seed: int = 42, cell_runner=None) -> ExperimentResult:
    """Table III: performance of the heterogeneous executions."""
    results = _run_all(seed, cell_runner)
    rows = []
    for app_name, r in results.items():
        rows.append([app_name, round(r.het_gflops, 0),
                     _config_label(r.device_counts)])
    return ExperimentResult(
        experiment_id="table3",
        title="Performance of the heterogeneous executions",
        headers=["application", "performance (GFLOPS)", "configuration"],
        rows=rows,
        extra={"results": results},
    )


@experiment("fig15")
def fig15(seed: int = 42, cell_runner=None) -> ExperimentResult:
    """Fig. 15: efficiency of heterogeneous vs homogeneous executions."""
    results = _run_all(seed, cell_runner)
    rows = []
    for app_name, r in results.items():
        rows.append([app_name,
                     round(100 * r.het_efficiency, 1),
                     round(100 * r.homogeneous_efficiency, 1)])
    return ExperimentResult(
        experiment_id="fig15",
        title="Efficiency of heterogeneous executions (percent)",
        headers=["application", "heterogeneous eff. %", "homogeneous eff. %"],
        rows=rows,
        extra={"results": results},
    )
