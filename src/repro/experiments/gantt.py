"""Figs. 16 and 17: Gantt charts of the heterogeneous k-means execution.

Fig. 16 zooms into two nodes — one with a GTX480 and one with both a Xeon
Phi and a K20 — showing kernel executions overlapped with transfers, and
the intra-node load balancer placing 1 job of each 8-job set on the Phi and
7 on the K20 (the Phi being ~4x slower).  Fig. 17 shows the whole run with
kernel executions only.
"""

from __future__ import annotations

from ..apps.base import run_cashmere
from ..cluster.das4 import heterogeneous_kmeans
from ..core.gantt import gantt_overview, gantt_zoomed, kernel_lanes
from ..core.runtime import CashmereConfig
from .harness import ExperimentResult, experiment
from .scalability import APP_BUILDERS

__all__ = ["fig16_17", "run_traced_kmeans"]


def run_traced_kmeans(seed: int = 42):
    """Heterogeneous k-means with activity tracing enabled."""
    config = heterogeneous_kmeans()
    app = APP_BUILDERS["k-means"](False)
    result, runtime, cluster = run_cashmere(
        app, config, app.root_task(), optimized=True,
        config=CashmereConfig(seed=seed), trace=True, return_runtime=True)
    return result, runtime, cluster


@experiment("fig16_17")
def fig16_17(seed: int = 42, width: int = 100) -> ExperimentResult:
    """Both Gantt charts plus the K20/Phi job-split evidence."""
    result, runtime, cluster = run_traced_kmeans(seed=seed)
    trace = cluster.trace

    # The node carrying both a K20 and a Xeon Phi (node 16's role in the
    # paper), plus one GTX480 node (node 3's role).
    phi_node = next(n for n in cluster.nodes
                    if set(n.device_names) == {"k20", "xeon_phi"})
    gtx_node = next(n for n in cluster.nodes if n.device_names == ["gtx480"])

    span = trace.span()
    t0, t1 = span * 0.45, span * 0.55  # mid-run zoom window
    zoomed = gantt_zoomed(trace, [gtx_node.name, phi_node.name],
                          t0=t0, t1=t1, width=width)
    overview = gantt_overview(trace, width=width)

    k20 = next(d for d in phi_node.devices if d.spec.name == "k20")
    phi = next(d for d in phi_node.devices if d.spec.name == "xeon_phi")
    k20_jobs = k20.launch_counts.get("kmeans", 0)
    phi_jobs = phi.launch_counts.get("kmeans", 0)

    rows = [
        ["kernel lanes", len(kernel_lanes(trace))],
        ["trace activities", len(trace.activities)],
        ["makespan (s)", round(result.stats.makespan_s, 2)],
        [f"{phi_node.name} k20 jobs", k20_jobs],
        [f"{phi_node.name} xeon_phi jobs", phi_jobs],
        ["k20:phi job ratio", round(k20_jobs / max(phi_jobs, 1), 2)],
    ]
    return ExperimentResult(
        experiment_id="fig16_17",
        title="Gantt charts of heterogeneous k-means execution",
        headers=["metric", "value"],
        rows=rows,
        extra={
            "fig16": zoomed,
            "fig17": overview,
            "trace": trace,
            #: the raw event stream behind the Gantt charts — the trace
            #: recorder is just one subscriber of this bus
            "events": list(cluster.obs.events),
            "k20_jobs": k20_jobs,
            "phi_jobs": phi_jobs,
        },
        metrics=result.stats.registry,
    )
