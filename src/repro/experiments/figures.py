"""Turn experiment results into SVG figures mirroring the paper's plots.

The benchmark harness calls :func:`svgs_for` on each
:class:`~repro.experiments.harness.ExperimentResult` and writes the returned
files next to the text tables under ``results/``:

* figs. 7-14 — a speedup line chart (with the ideal-speedup reference) and
  an absolute-GFLOPS line chart per application,
* fig. 6 — one grouped bar chart per application (unoptimized/optimized per
  device),
* fig. 15 — the efficiency bar chart.
"""

from __future__ import annotations

from typing import Dict

from ..util.svgplot import bar_chart, line_chart
from .harness import ExperimentResult

__all__ = ["svgs_for"]

_SCALABILITY_TITLES = {
    "fig7_8": ("Fig. 7 — Raytracer scalability",
               "Fig. 8 — Raytracer absolute performance"),
    "fig9_10": ("Fig. 9 — Matmul scalability",
                "Fig. 10 — Matmul absolute performance"),
    "fig11_12": ("Fig. 11 — K-means scalability",
                 "Fig. 12 — K-means absolute performance"),
    "fig13_14": ("Fig. 13 — N-body scalability",
                 "Fig. 14 — N-body absolute performance"),
}


def _scalability_svgs(result: ExperimentResult) -> Dict[str, str]:
    study = result.extra["study"]
    nodes = result.extra["node_counts"]
    speedups = {system: [p.speedup for p in points]
                for system, points in study.items()}
    gflops = {system: [p.gflops for p in points]
              for system, points in study.items()}
    title_speed, title_abs = _SCALABILITY_TITLES[result.experiment_id]
    first, second = result.experiment_id.replace("fig", "").split("_")
    return {
        f"fig{first}": line_chart(
            title_speed, "GTX480 nodes", "speedup", nodes, speedups,
            ideal=[n / nodes[0] for n in nodes]),
        f"fig{second}": line_chart(
            title_abs, "GTX480 nodes", "GFLOPS", nodes, gflops),
    }


def _fig6_svgs(result: ExperimentResult) -> Dict[str, str]:
    perf = result.extra["performance"]
    out: Dict[str, str] = {}
    for app, per_device in perf.items():
        devices = list(per_device)
        series = {
            "unoptimized": [per_device[d]["unoptimized"] for d in devices],
            "optimized": [per_device[d]["optimized"] for d in devices],
        }
        slug = app.replace("-", "")
        out[f"fig6_{slug}"] = bar_chart(
            f"Fig. 6 — {app} kernel performance", "device", "GFLOPS",
            devices, series)
    return out


def _fig15_svg(result: ExperimentResult) -> Dict[str, str]:
    apps = [row[0] for row in result.rows]
    series = {
        "heterogeneous": [row[1] for row in result.rows],
        "homogeneous": [row[2] for row in result.rows],
    }
    return {"fig15": bar_chart(
        "Fig. 15 — Efficiency of heterogeneous executions",
        "application", "efficiency (%)", apps, series)}


def svgs_for(result: ExperimentResult) -> Dict[str, str]:
    """SVG figures for an experiment result (empty dict if none apply)."""
    if result.experiment_id in _SCALABILITY_TITLES:
        return _scalability_svgs(result)
    if result.experiment_id == "fig6":
        return _fig6_svgs(result)
    if result.experiment_id == "fig15":
        return _fig15_svg(result)
    return {}
