"""Shared utilities: units, table formatting."""

from .tables import format_series, format_table
from .units import (
    GB,
    GIGA,
    KB,
    KILO,
    MB,
    MEGA,
    TERA,
    fmt_bytes,
    fmt_gflops,
    fmt_rate,
    fmt_time,
    gflops,
)

__all__ = [
    "format_table",
    "format_series",
    "KB", "MB", "GB", "KILO", "MEGA", "GIGA", "TERA",
    "gflops", "fmt_gflops", "fmt_bytes", "fmt_time", "fmt_rate",
]
