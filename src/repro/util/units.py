"""Unit helpers: sizes, rates and time formatting.

Conventions used throughout the reproduction:

* time is in **seconds** of virtual (simulated) time,
* data sizes are in **bytes**,
* compute is in **flops** and rates in **flop/s** (printed as GFLOPS,
  matching the paper's figures).
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB",
    "KILO", "MEGA", "GIGA", "TERA",
    "gflops", "fmt_gflops", "fmt_bytes", "fmt_time", "fmt_rate",
]

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

KB = 1024.0
MB = 1024.0 ** 2
GB = 1024.0 ** 3


def gflops(flops: float, seconds: float) -> float:
    """Rate in GFLOPS for ``flops`` of work done in ``seconds``."""
    if seconds <= 0:
        raise ValueError(f"non-positive duration {seconds}")
    return flops / seconds / GIGA


def fmt_gflops(rate_flops_per_s: float) -> str:
    """Format a flop/s rate as the paper does (GFLOPS)."""
    return f"{rate_flops_per_s / GIGA:.1f} GFLOPS"


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count."""
    for unit, div in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(nbytes) >= div:
            return f"{nbytes / div:.2f} {unit}"
    return f"{nbytes:.0f} B"


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable bandwidth."""
    return f"{bytes_per_s / 1e9:.2f} GB/s"
