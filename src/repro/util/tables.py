"""Plain-text table rendering for experiment output.

The benchmark harness prints rows that mirror the paper's tables and the
series behind its figures; this module renders them readably without any
plotting dependency.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_label: str, xs: Sequence[Any], series: dict,
                  title: Optional[str] = None) -> str:
    """Render named y-series against a shared x axis (a 'figure' as text)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)
