"""Dependency-free SVG charts.

The benchmark harness regenerates the paper's *figures*, not only their
numbers; this module renders line charts (the scalability figures 7-14) and
bar charts (Figs. 6 and 15) as standalone SVG text, with axes, ticks and a
legend — no matplotlib required.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["line_chart", "bar_chart", "PALETTE"]

#: color cycle for series
PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
           "#8c564b", "#17becf"]

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 24, 40, 48


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(count, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        if raw <= mult * mag:
            step = mult * mag
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _fmt_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    return f"{value:g}"


class _Canvas:
    def __init__(self, width: int, height: int, title: str,
                 x_label: str, y_label: str):
        self.width = width
        self.height = height
        self.plot_w = width - _MARGIN_L - _MARGIN_R
        self.plot_h = height - _MARGIN_T - _MARGIN_B
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>',
            f'<text x="{width / 2}" y="{height - 8}" '
            f'text-anchor="middle">{_esc(x_label)}</text>',
            f'<text x="14" y="{height / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {height / 2})">{_esc(y_label)}</text>',
        ]

    def x(self, frac: float) -> float:
        return _MARGIN_L + frac * self.plot_w

    def y(self, frac: float) -> float:
        return _MARGIN_T + (1.0 - frac) * self.plot_h

    def axes(self) -> None:
        self.parts.append(
            f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{self.plot_w}" '
            f'height="{self.plot_h}" fill="none" stroke="#444"/>')

    def legend(self, names: Sequence[str]) -> None:
        lx = _MARGIN_L + 10
        for i, name in enumerate(names):
            ly = _MARGIN_T + 14 + i * 16
            color = PALETTE[i % len(PALETTE)]
            self.parts.append(
                f'<rect x="{lx}" y="{ly - 8}" width="10" height="10" '
                f'fill="{color}"/>')
            self.parts.append(
                f'<text x="{lx + 16}" y="{ly + 1}">{_esc(name)}</text>')

    def finish(self) -> str:
        self.parts.append("</svg>")
        return "\n".join(self.parts)


def line_chart(title: str, x_label: str, y_label: str,
               xs: Sequence[float], series: Dict[str, Sequence[float]],
               width: int = 640, height: int = 400,
               ideal: Optional[Sequence[float]] = None) -> str:
    """A multi-series line chart (one line per system, markers at points).

    ``ideal`` adds a dashed reference line (e.g. linear speedup).
    """
    if not xs or not series:
        raise ValueError("line_chart needs x values and at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    canvas = _Canvas(width, height, title, x_label, y_label)
    all_y = [y for ys in series.values() for y in ys]
    if ideal is not None:
        all_y += list(ideal)
    y_ticks = _nice_ticks(0.0, max(all_y))
    y_hi = y_ticks[-1]
    x_lo, x_hi = min(xs), max(xs)
    span = (x_hi - x_lo) or 1.0

    def fx(v):
        return canvas.x((v - x_lo) / span)

    def fy(v):
        return canvas.y(v / y_hi if y_hi else 0.0)

    # grid + ticks
    for t in y_ticks:
        y = fy(t)
        canvas.parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y}" x2="{_MARGIN_L + canvas.plot_w}" '
            f'y2="{y}" stroke="#ddd"/>')
        canvas.parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 4}" '
            f'text-anchor="end">{_fmt_tick(t)}</text>')
    for v in xs:
        x = fx(v)
        canvas.parts.append(
            f'<text x="{x}" y="{_MARGIN_T + canvas.plot_h + 16}" '
            f'text-anchor="middle">{_fmt_tick(v)}</text>')

    if ideal is not None:
        points = " ".join(f"{fx(v)},{fy(w)}" for v, w in zip(xs, ideal))
        canvas.parts.append(
            f'<polyline points="{points}" fill="none" stroke="#999" '
            f'stroke-dasharray="5,4"/>')

    for i, (name, ys) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        points = " ".join(f"{fx(v)},{fy(w)}" for v, w in zip(xs, ys))
        canvas.parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>')
        for v, w in zip(xs, ys):
            canvas.parts.append(
                f'<circle cx="{fx(v)}" cy="{fy(w)}" r="3" fill="{color}"/>')

    canvas.axes()
    canvas.legend(list(series))
    return canvas.finish()


def bar_chart(title: str, x_label: str, y_label: str,
              categories: Sequence[str], series: Dict[str, Sequence[float]],
              width: int = 720, height: int = 400) -> str:
    """A grouped bar chart (one group per category, one bar per series)."""
    if not categories or not series:
        raise ValueError("bar_chart needs categories and at least one series")
    for name, ys in series.items():
        if len(ys) != len(categories):
            raise ValueError(f"series {name!r} length mismatch")
    canvas = _Canvas(width, height, title, x_label, y_label)
    all_y = [y for ys in series.values() for y in ys]
    y_ticks = _nice_ticks(0.0, max(all_y))
    y_hi = y_ticks[-1] or 1.0

    for t in y_ticks:
        y = canvas.y(t / y_hi)
        canvas.parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y}" x2="{_MARGIN_L + canvas.plot_w}" '
            f'y2="{y}" stroke="#ddd"/>')
        canvas.parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 4}" '
            f'text-anchor="end">{_fmt_tick(t)}</text>')

    n_groups = len(categories)
    n_series = len(series)
    group_w = canvas.plot_w / n_groups
    bar_w = group_w * 0.8 / n_series
    for gi, cat in enumerate(categories):
        gx = _MARGIN_L + gi * group_w
        canvas.parts.append(
            f'<text x="{gx + group_w / 2}" '
            f'y="{_MARGIN_T + canvas.plot_h + 16}" '
            f'text-anchor="middle">{_esc(cat)}</text>')
        for si, (name, ys) in enumerate(series.items()):
            value = ys[gi]
            h = canvas.plot_h * (value / y_hi)
            x = gx + group_w * 0.1 + si * bar_w
            y = _MARGIN_T + canvas.plot_h - h
            color = PALETTE[si % len(PALETTE)]
            canvas.parts.append(
                f'<rect x="{x:.2f}" y="{y:.2f}" width="{bar_w:.2f}" '
                f'height="{h:.2f}" fill="{color}"/>')

    canvas.axes()
    canvas.legend(list(series))
    return canvas.finish()
