"""Cashmere: the integration of Satin and MCL (the paper's contribution).

``CashmereRuntime`` runs divide-and-conquer applications on clusters whose
nodes carry heterogeneous many-core devices: cluster-level random work
stealing (from Satin), MCL kernels selected/compiled per device, the
min-makespan intra-node device scheduler, PCIe/compute overlap, automatic
device memory management, and CPU fallback.

This package initializer is *lazy* (PEP 562): ``repro.core.runtime``
imports the Satin runtime while ``repro.satin.steal`` imports the unified
policy registry (:mod:`repro.core.policy`), so an eager ``__init__`` would
close an import cycle.  Attribute access loads the owning submodule on
first use; ``from repro.core import Cashmere`` keeps working unchanged.
"""

from importlib import import_module
from typing import TYPE_CHECKING, Any, List

#: public name -> owning submodule (lazily imported on attribute access)
_EXPORTS = {
    "Cashmere": ".api",
    "DeviceHandle": ".api",
    "KernelHandle": ".api",
    "KernelLaunch": ".api",
    "MCL": ".api",
    "gantt_overview": ".gantt",
    "gantt_zoomed": ".gantt",
    "kernel_lanes": ".gantt",
    "node_queues": ".gantt",
    "CashmereConfig": ".runtime",
    "CashmereRuntime": ".runtime",
    "KernelLaunchError": ".runtime",
    "SchedulingPolicy": ".policy",
    "create_policy": ".policy",
    "policy_names": ".policy",
    "register_policy": ".policy",
    "DevicePlacementPolicy": ".scheduler",
    "DeviceScheduler": ".scheduler",
    "SchedulingDecision": ".scheduler",
}

__all__ = list(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .api import Cashmere, DeviceHandle, KernelHandle, KernelLaunch, MCL
    from .gantt import gantt_overview, gantt_zoomed, kernel_lanes, node_queues
    from .policy import (
        SchedulingPolicy,
        create_policy,
        policy_names,
        register_policy,
    )
    from .runtime import CashmereConfig, CashmereRuntime, KernelLaunchError
    from .scheduler import (
        DevicePlacementPolicy,
        DeviceScheduler,
        SchedulingDecision,
    )


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
