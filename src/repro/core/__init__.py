"""Cashmere: the integration of Satin and MCL (the paper's contribution).

``CashmereRuntime`` runs divide-and-conquer applications on clusters whose
nodes carry heterogeneous many-core devices: cluster-level random work
stealing (from Satin), MCL kernels selected/compiled per device, the
min-makespan intra-node device scheduler, PCIe/compute overlap, automatic
device memory management, and CPU fallback.
"""

from .api import Cashmere, DeviceHandle, KernelHandle, KernelLaunch, MCL
from .gantt import gantt_overview, gantt_zoomed, kernel_lanes, node_queues
from .runtime import CashmereConfig, CashmereRuntime, KernelLaunchError
from .scheduler import DeviceScheduler, SchedulingDecision

__all__ = [
    "CashmereRuntime",
    "CashmereConfig",
    "KernelLaunchError",
    "DeviceScheduler",
    "SchedulingDecision",
    "Cashmere",
    "MCL",
    "KernelHandle",
    "KernelLaunch",
    "DeviceHandle",
    "gantt_zoomed",
    "gantt_overview",
    "node_queues",
    "kernel_lanes",
]
