"""The user-facing kernel front-end of Fig. 4.

The default leaf path in :class:`~repro.core.runtime.CashmereRuntime` covers
the common case automatically; this module provides the *explicit* API for
advanced leaves — multiple kernels, multiple launches, and device-resident
copies (Sec. II-C1)::

    def leaf(self, task, ctx):                    # inside an app
        kernel = Cashmere.get_kernel(ctx, "matmul")
        device = kernel.get_device()              # pin a device
        yield from device.copy_to_device(nbytes)  # keep data across launches
        for step in range(iterations):
            kl = kernel.create_launch(device=device)
            yield from MCL.launch(kl, params, h2d_bytes=0, d2h_bytes=0)
        yield from device.copy_from_device(out_bytes)
        device.release()
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..devices.device import SimDevice
from ..satin.job import LeafContext
from .runtime import CashmereRuntime, KernelLaunchError
from .scheduler import SchedulingDecision

__all__ = ["Cashmere", "MCL", "KernelHandle", "KernelLaunch", "DeviceHandle"]


class DeviceHandle:
    """A device pinned by a leaf for multi-launch data reuse
    (``Kernel.getDevice()`` / ``Device.copy()`` of Sec. II-C1)."""

    def __init__(self, kernel: "KernelHandle", decision: SchedulingDecision):
        self.kernel = kernel
        self.decision = decision
        self.device: SimDevice = decision.device
        self._allocated = 0.0
        self._released = False

    def copy_to_device(self, nbytes: float) -> Generator:
        """Process: stage data that stays resident across launches."""
        self._check_live()
        yield self.device.alloc(nbytes)
        self._allocated += nbytes
        yield from self.device.copy_to_device(nbytes, label=f"{self.kernel.name}-pin")

    def copy_from_device(self, nbytes: float) -> Generator:
        """Process: read back device-resident data."""
        self._check_live()
        yield from self.device.copy_from_device(nbytes, label=f"{self.kernel.name}-pin")

    def release(self) -> None:
        """Free the pinned memory and the scheduler reservation."""
        if self._released:
            return
        self._released = True
        if self._allocated > 0:
            self.device.free(self._allocated)
        self.kernel.runtime.scheduler.job_finished(self.decision)

    def _check_live(self) -> None:
        if self._released:
            raise KernelLaunchError("device handle already released")


class KernelLaunch:
    """One prepared launch (``kernel.createLaunch()`` of Fig. 4)."""

    def __init__(self, kernel: "KernelHandle", device: Optional[DeviceHandle] = None):
        self.kernel = kernel
        self.pinned = device
        self.launched = False

    def execute(self, params: Dict[str, Any], h2d_bytes: float,
                d2h_bytes: float) -> Generator:
        """Process: run the launch (transfers + kernel, overlappable)."""
        if self.launched:
            raise KernelLaunchError("a KernelLaunch is single-use")
        self.launched = True
        kernel = self.kernel
        runtime = kernel.runtime
        if self.pinned is not None:
            decision = self.pinned.decision
            device = self.pinned.device
            own_reservation = False
        else:
            decision = runtime.scheduler.choose(kernel.node.devices, kernel.name)
            device = decision.device
            own_reservation = True
        compiled = runtime._node_kernels[kernel.node.rank][kernel.name][
            device.spec.name]
        profile = compiled.profile(params, h2d_bytes=h2d_bytes,
                                   d2h_bytes=d2h_bytes, label=kernel.name)
        footprint = h2d_bytes + d2h_bytes
        try:
            if footprint > 0:
                yield device.alloc(footprint)
            yield from device.copy_to_device(h2d_bytes, label=f"{kernel.name}-in")
            yield from device.run_kernel(profile, label=kernel.name)
            yield from device.copy_from_device(d2h_bytes, label=f"{kernel.name}-out")
        finally:
            if footprint > 0:
                yield device.free(footprint)
            if own_reservation:
                runtime.scheduler.job_finished(decision)


class KernelHandle:
    """A kernel bound to a node (what ``Cashmere.getKernel()`` returns)."""

    def __init__(self, runtime: CashmereRuntime, node: Any, name: str):
        self.runtime = runtime
        self.node = node
        self.name = name

    def create_launch(self, device: Optional[DeviceHandle] = None) -> KernelLaunch:
        return KernelLaunch(self, device)

    def get_device(self) -> DeviceHandle:
        """Pin a device chosen by the intra-node scheduler."""
        decision = self.runtime.scheduler.choose(self.node.devices, self.name)
        return DeviceHandle(self, decision)


class Cashmere:
    """Static facade mirroring the paper's API names."""

    @staticmethod
    def get_kernel(ctx: LeafContext, name: Optional[str] = None) -> KernelHandle:
        """``Cashmere.getKernel()``: look up a kernel on the leaf's node."""
        runtime = ctx.runtime
        if not isinstance(runtime, CashmereRuntime):
            raise KernelLaunchError("getKernel() requires a CashmereRuntime")
        compiled = runtime.get_kernel(ctx.node, name)  # validates availability
        resolved = name if name is not None else runtime.library.kernel_names()[0]
        del compiled
        return KernelHandle(runtime, ctx.node, resolved)

    #: ``Cashmere.enableManyCore()`` is implicit in this reproduction: the
    #: runtime consults :meth:`DivideConquerApp.is_manycore` (Fig. 5 line 5).


class MCL:
    """Front-end that launches kernels (``MCL.launch`` of Fig. 4)."""

    @staticmethod
    def launch(kl: KernelLaunch, params: Dict[str, Any],
               h2d_bytes: float = 0.0, d2h_bytes: float = 0.0) -> Generator:
        """Process: copy data in, execute on the selected device, copy out."""
        yield from kl.execute(params, h2d_bytes, d2h_bytes)
