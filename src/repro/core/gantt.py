"""Gantt-chart reporting for Cashmere runs (the paper's Figs. 16-17).

The simulated cluster records every CPU task, host<->device transfer,
network send and kernel execution as trace activities.  These helpers slice
the trace the way the paper presents it: a zoomed-in multi-queue view of a
couple of nodes (Fig. 16), and a kernels-only overview of the whole run
(Fig. 17).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.trace import TraceRecorder, render_gantt_ascii

__all__ = ["node_queues", "gantt_zoomed", "gantt_overview", "kernel_lanes"]


def node_queues(trace: TraceRecorder, node_name: str) -> List[str]:
    """All trace lanes ('queues', in the paper's terminology) of one node."""
    return [q for q in trace.queues()
            if q == node_name or q.startswith(node_name + "/")]


def kernel_lanes(trace: TraceRecorder) -> List[str]:
    """Lanes that carry kernel executions (Fig. 17 keeps only these)."""
    return sorted({a.queue for a in trace.by_kind("kernel")})


def gantt_zoomed(trace: TraceRecorder, node_names: Sequence[str],
                 t0: Optional[float] = None, t1: Optional[float] = None,
                 width: int = 100) -> str:
    """Fig. 16: all queues of selected nodes, zoomed to [t0, t1]."""
    lanes: List[str] = []
    for name in node_names:
        lanes.extend(node_queues(trace, name))
    return render_gantt_ascii(trace, width=width, queues=lanes, t0=t0, t1=t1)


def gantt_overview(trace: TraceRecorder, width: int = 100) -> str:
    """Fig. 17: the whole run, kernel executions only."""
    return render_gantt_ascii(trace, width=width, queues=kernel_lanes(trace),
                              kinds=("kernel",))
