"""Unified scheduling-policy protocol and registry.

The paper's contributions are layered: Satin's cluster-level random work
stealing (Sec. II-A) balances load *between* nodes, and Cashmere's
min-makespan device scheduler (Sec. III-B) balances load *within* a node.
Both are load-balancing policies, and both benefit from being first-class
pluggable components (cf. EngineCL's scheduler plugins): new policies can
be added, selected from config/CLI, and compared in ablations without
touching the runtime.

This module is the one spine both kinds share:

* :class:`SchedulingPolicy` — the common protocol: a policy has a ``kind``
  (``"steal"`` or ``"device"``), a registered ``name``, and emits
  ``sched_decision`` observability events in one unified shape,
* a **registry** keyed by ``(kind, name)`` — ``repro.satin.steal`` registers
  the cluster-level steal policies, :mod:`repro.core.scheduler` the
  intra-node device-placement policies,
* one config/CLI surface: ``CashmereConfig(steal_policy=...,
  scheduler_policy=...)`` and ``python -m repro run --steal-policy ...``
  both resolve names through :func:`create_policy`.

The unified ``sched_decision`` event always carries ``policy`` (the
registered name), ``scope`` (the policy kind) and ``chosen`` (the selected
device lane or victim rank); kind-specific snapshots ride along as extra
fields, so one replay tool can audit every placement decision a run made.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type, TypeVar

from ..obs.bus import EventBus

__all__ = [
    "SchedulingPolicy",
    "register_policy",
    "create_policy",
    "policy_names",
    "policy_class",
]


class SchedulingPolicy:
    """Base protocol shared by steal and device-placement policies.

    Subclasses set the class attributes and register themselves with
    :func:`register_policy`.  A policy instance is bound to at most one
    runtime; :meth:`bind` hands it the runtime's event bus.
    """

    #: policy family: ``"steal"`` (cluster level) or ``"device"`` (intra-node)
    kind: str = ""
    #: registered name (the config/CLI identifier)
    name: str = ""
    #: whether this policy emits ``sched_decision`` events.  The paper's
    #: baseline policies keep this ``False`` where emission would change the
    #: historical event-stream contract (the device scheduler emits through
    #: its own snapshot path; the random steal policy is silent so decision
    #: counts keep matching ``DeviceScheduler.decisions``).
    emits_decisions: bool = False

    def __init__(self) -> None:
        self.obs: Optional[EventBus] = None

    def bind(self, obs: Optional[EventBus]) -> "SchedulingPolicy":
        """Attach the runtime's event bus (fluent)."""
        self.obs = obs
        return self

    # -- unified event shape -------------------------------------------------
    def emit_decision(self, node: Optional[int], chosen: object,
                      **fields: object) -> None:
        """Emit one ``sched_decision`` event in the unified shape.

        Every decision event carries ``policy``, ``scope`` and ``chosen``;
        callers add kind-specific snapshot fields (pending work, victim
        order, weights, ...).  No-op when unbound, disabled, or when the
        policy opts out via ``emits_decisions``.
        """
        if not self.emits_decisions:
            return
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        obs.emit("sched_decision", node=node, policy=self.name,
                 scope=self.kind, chosen=chosen, **fields)


_P = TypeVar("_P", bound=Type[SchedulingPolicy])

#: (kind, name) -> policy class, in registration order per kind
_REGISTRY: Dict[Tuple[str, str], Type[SchedulingPolicy]] = {}


def register_policy(cls: _P) -> _P:
    """Class decorator: register a policy under ``(cls.kind, cls.name)``."""
    if not cls.kind or not cls.name:
        raise ValueError(
            f"{cls.__name__} must define non-empty 'kind' and 'name'")
    key = (cls.kind, cls.name)
    if key in _REGISTRY:
        raise ValueError(
            f"duplicate policy registration {cls.kind}:{cls.name}")
    _REGISTRY[key] = cls
    return cls


def policy_names(kind: str) -> List[str]:
    """Registered policy names of one kind, in registration order."""
    return [name for (k, name) in _REGISTRY if k == kind]


def policy_class(kind: str, name: str) -> Type[SchedulingPolicy]:
    """Look up a registered policy class (raises ``ValueError`` if absent).

    The error names the *kind* and enumerates the names registered for that
    kind — a typo'd ``--scheduler-policy`` should list the device policies,
    not the steal or admission ones.
    """
    try:
        return _REGISTRY[(kind, name)]
    except KeyError:
        known = tuple(policy_names(kind))
        raise ValueError(
            f"unknown policy {name!r} for kind {kind!r}; "
            f"known {kind} policies: {known}") from None


def create_policy(kind: str, name: str, **kwargs: object) -> SchedulingPolicy:
    """Instantiate a registered policy by kind and name."""
    return policy_class(kind, name)(**kwargs)


#: hook type for callers that want to enumerate both families
PolicyFactory = Callable[..., SchedulingPolicy]
