"""Intra-node load balancing across heterogeneous many-core devices.

Implements the algorithm of Sec. III-B: initially jobs are placed with a
*static table of relative device speeds* (e.g. K20 = 40, GTX480 = 20); once
a kernel has run on a device, its *measured* execution time is used.  A new
job is submitted to the device queue that minimizes the node's overall
makespan:

    choose  argmin_d  max_e ( pending_e + [e == d] * t_d )

which reproduces the paper's example — with the K20 queue at 3×100 ms and
the GTX480 queue at 1×125 ms, a new job goes to the GTX480 because
max(300, 250) < max(400, 125).

Placement rules are pluggable :class:`DevicePlacementPolicy` objects
registered in the unified policy registry (:mod:`repro.core.policy`) under
kind ``"device"``, sharing one ``sched_decision`` event shape and one
config/CLI surface with the cluster-level steal policies of
:mod:`repro.satin.steal`.  :class:`DeviceScheduler` keeps the prediction
model and the queue-reservation bookkeeping; the policy only selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..devices.device import SimDevice
from ..obs.bus import EventBus
from .policy import SchedulingPolicy, create_policy, policy_names, register_policy

__all__ = ["DeviceScheduler", "DevicePlacementPolicy", "SchedulingDecision",
           "MakespanPolicy", "LookaheadMakespanPolicy", "POLICIES"]

#: placement reference time used before any measurement exists; only the
#: *relative* speeds matter for the decision, but a plausible absolute value
#: keeps the pending-work bookkeeping meaningful.
_BOOTSTRAP_REFERENCE_S = 50e-3
_BOOTSTRAP_REFERENCE_SPEED = 40.0  # the K20's table entry


@dataclass
class SchedulingDecision:
    device: SimDevice
    predicted_s: float
    makespan_s: float
    used_measurement: bool


class DevicePlacementPolicy(SchedulingPolicy):
    """Pure device-selection rule; state beyond selection lives elsewhere.

    ``select`` receives the node's devices and the per-lane ``(seconds,
    used_measurement)`` predictions and returns a decision *without*
    reserving queue time — the :class:`DeviceScheduler` owns the
    ``pending_work_s`` reservation and the statistics.
    """

    kind = "device"
    emits_decisions = True

    def select(self, devices: List[SimDevice],
               predictions: Dict[str, Tuple[float, bool]]
               ) -> SchedulingDecision:
        raise NotImplementedError

    # -- DAG lookahead hooks (driven by repro.graph) ------------------------
    # The graph executor calls these around a whole-graph run.  The
    # defaults make every leaf-at-a-time policy a valid (graph-oblivious)
    # DAG policy: no preparation, FIFO dependency-resolution order, and
    # per-node selection that ignores where the inputs live.  Only
    # :class:`LookaheadMakespanPolicy` overrides them.

    def graph_prepare(self, graph: Any,
                      exec_estimate: Callable[[str], float],
                      comm_estimate: Callable[[Any], float]) -> None:
        """Called once before a DAG run starts dispatching.

        ``exec_estimate(node_name)`` is the mean roofline execution time
        across the device pool; ``comm_estimate(edge)`` the mean
        PCIe(+network) cost of moving that edge between two distinct
        devices.  Stateless policies ignore both.
        """

    def graph_order(self, ready: Sequence[str], graph: Any) -> List[str]:
        """Dispatch order for a batch of ready nodes (default: FIFO)."""
        return list(ready)

    def graph_select(self, name: str, devices: List[SimDevice],
                     predictions: Dict[str, Tuple[float, bool]],
                     ctx: Any) -> SchedulingDecision:
        """Place one ready DAG node.

        ``ctx`` is the executor's schedule context: ``ctx.now``,
        ``ctx.in_edges(name)``, ``ctx.placement(src) -> lane | None`` and
        ``ctx.edge_cost(edge, src_lane, dst_lane)``.  The default ignores
        it and falls back to the policy's leaf-at-a-time :meth:`select`.
        """
        return self.select(devices, predictions)


@register_policy
class MakespanPolicy(DevicePlacementPolicy):
    """The paper's algorithm: measured times, min-makespan placement."""

    name = "makespan"

    def select(self, devices: List[SimDevice],
               predictions: Dict[str, Tuple[float, bool]]
               ) -> SchedulingDecision:
        best: Optional[SchedulingDecision] = None
        for dev in devices:
            t_d, used_measurement = predictions[dev.lane]
            makespan = max(
                (other.pending_work_s + (t_d if other is dev else 0.0))
                for other in devices)
            if (best is None or makespan < best.makespan_s
                    or (makespan == best.makespan_s
                        and dev.spec.static_speed
                        > best.device.spec.static_speed)):
                best = SchedulingDecision(device=dev, predicted_s=t_d,
                                          makespan_s=makespan,
                                          used_measurement=used_measurement)
        assert best is not None
        return best


@register_policy
class LookaheadMakespanPolicy(MakespanPolicy):
    """Dependency-aware lookahead placement for DAG runs (HEFT-style).

    Where greedy ``makespan`` sees one job at a time, this policy sees the
    whole :class:`~repro.graph.model.TaskGraph`:

    * :meth:`graph_prepare` computes each node's *upward rank* — its mean
      roofline execution time plus the most expensive downstream chain of
      (mean transfer + rank) over its out-edges — i.e. the remaining
      critical path through that node,
    * :meth:`graph_order` dispatches ready nodes by descending rank, so
      critical-path work claims fast devices first,
    * :meth:`graph_select` places each node on the device minimising its
      *earliest finish time*: queue availability and the arrival of every
      input — an input produced on the **same** device is free, a
      cross-device input pays d2h + (network) + h2d.  That data-locality
      term is what the greedy policy cannot see.

    Outside a DAG run (plain Cashmere leaf placement) it inherits the
    greedy measured-time min-makespan behaviour unchanged.
    """

    name = "makespan-lookahead"

    def __init__(self) -> None:
        super().__init__()
        #: node name -> upward rank (seconds of remaining critical path)
        self._rank: Dict[str, float] = {}
        #: node name -> estimated finish time of the placed node
        self._finish: Dict[str, float] = {}

    def graph_prepare(self, graph: Any,
                      exec_estimate: Callable[[str], float],
                      comm_estimate: Callable[[Any], float]) -> None:
        ranks: Dict[str, float] = {}
        for name in reversed(graph.topo_order()):
            critical = 0.0
            for edge in graph.out_edges(name):
                cand = comm_estimate(edge) + ranks[edge.dst]
                if cand > critical:
                    critical = cand
            ranks[name] = exec_estimate(name) + critical
        self._rank = ranks
        self._finish = {}

    def graph_order(self, ready: Sequence[str], graph: Any) -> List[str]:
        # descending rank; insertion index breaks ties deterministically
        return sorted(ready,
                      key=lambda n: (-self._rank.get(n, 0.0),
                                     graph.node_index(n)))

    def graph_select(self, name: str, devices: List[SimDevice],
                     predictions: Dict[str, Tuple[float, bool]],
                     ctx: Any) -> SchedulingDecision:
        best: Optional[SchedulingDecision] = None
        best_eft = 0.0
        for dev in devices:
            t_d, used = predictions[dev.lane]
            ready_t = ctx.now
            for edge in ctx.in_edges(name):
                src_lane = ctx.placement(edge.src)
                arrival = self._finish.get(edge.src, ctx.now)
                if arrival < ctx.now:
                    arrival = ctx.now
                if src_lane is not None and src_lane != dev.lane:
                    arrival += ctx.edge_cost(edge, src_lane, dev.lane)
                if arrival > ready_t:
                    ready_t = arrival
            start = ctx.now + dev.pending_work_s
            if ready_t > start:
                start = ready_t
            eft = start + t_d
            if (best is None or eft < best_eft
                    or (eft == best_eft and dev.spec.static_speed
                        > best.device.spec.static_speed)):
                best = SchedulingDecision(device=dev, predicted_s=t_d,
                                          makespan_s=eft,
                                          used_measurement=used)
                best_eft = eft
        assert best is not None
        self._finish[name] = best_eft
        return best


@register_policy
class StaticFastestPolicy(DevicePlacementPolicy):
    """Always the highest static-speed device (Cashmere without measuring)."""

    name = "static"

    def select(self, devices: List[SimDevice],
               predictions: Dict[str, Tuple[float, bool]]
               ) -> SchedulingDecision:
        dev = max(devices, key=lambda d: d.spec.static_speed)
        t_d, used = predictions[dev.lane]
        return SchedulingDecision(device=dev, predicted_s=t_d,
                                  makespan_s=dev.pending_work_s + t_d,
                                  used_measurement=used)


@register_policy
class RoundRobinPolicy(DevicePlacementPolicy):
    """Speed-oblivious rotation (a naive baseline)."""

    name = "round-robin"

    def __init__(self) -> None:
        super().__init__()
        self._counter = 0

    def select(self, devices: List[SimDevice],
               predictions: Dict[str, Tuple[float, bool]]
               ) -> SchedulingDecision:
        dev = devices[self._counter % len(devices)]
        self._counter += 1
        t_d, used = predictions[dev.lane]
        return SchedulingDecision(device=dev, predicted_s=t_d,
                                  makespan_s=dev.pending_work_s + t_d,
                                  used_measurement=used)


#: available placement policies (ablation bench compares them)
POLICIES = tuple(policy_names("device"))


class DeviceScheduler:
    """Per-node scheduler state lives on the devices themselves
    (``pending_work_s``, ``measured_times``); this class is stateless apart
    from statistics and can be shared by all nodes of a runtime.

    ``policy`` selects the placement rule by registry name:

    * ``makespan`` — the paper's algorithm (measured times, min-makespan),
    * ``static`` — always the device with the highest static-speed rating
      (what Cashmere would do if it never measured anything),
    * ``round-robin`` — speed-oblivious rotation (a naive baseline).
    """

    def __init__(self, policy: str = "makespan",
                 obs: Optional[EventBus] = None) -> None:
        p = create_policy("device", policy)
        assert isinstance(p, DevicePlacementPolicy)
        self._policy: DevicePlacementPolicy = p
        self.policy = policy
        self.decisions = 0
        self.bootstrap_decisions = 0
        #: optional event bus; every placement emits a ``sched_decision``
        #: event carrying the pre-decision completion snapshot so the
        #: invariant can be replay-checked from the log alone.
        self.obs = obs
        self._policy.bind(obs)

    def _emit_decision(self, kernel_name: str,
                       decision: SchedulingDecision,
                       completions: Dict[str, float],
                       pending: Dict[str, float]) -> None:
        self._policy.emit_decision(
            node=decision.device.node_rank,
            chosen=decision.device.lane,
            kernel=kernel_name,
            predicted_s=decision.predicted_s,
            makespan_s=decision.makespan_s,
            used_measurement=decision.used_measurement,
            completions=completions,
            pending=pending,
        )

    # -- prediction -----------------------------------------------------------
    def predict(self, devices: List[SimDevice], kernel_name: str
                ) -> Dict[str, Tuple[float, bool]]:
        """Predicted per-device execution time for one job of a kernel.

        Returns ``device.lane -> (seconds, used_measurement)``.  If *any*
        device of the node has measured the kernel, others are scaled from
        that measurement via the static speed table; with no measurement at
        all, the bootstrap reference is scaled by the table alone.
        """
        reference: Optional[Tuple[float, float]] = None  # (time, speed)
        for dev in devices:
            t = dev.measured_times.get(kernel_name)
            if t is not None and (reference is None
                                  or dev.spec.static_speed > reference[1]):
                reference = (t, dev.spec.static_speed)
        out: Dict[str, Tuple[float, bool]] = {}
        for dev in devices:
            measured = dev.measured_times.get(kernel_name)
            if measured is not None:
                out[dev.lane] = (measured, True)
            elif reference is not None:
                ref_t, ref_speed = reference
                out[dev.lane] = (ref_t * ref_speed / dev.spec.static_speed, False)
            else:
                out[dev.lane] = (
                    _BOOTSTRAP_REFERENCE_S * _BOOTSTRAP_REFERENCE_SPEED
                    / dev.spec.static_speed, False)
        return out

    # -- placement -----------------------------------------------------------
    def choose(self, devices: List[SimDevice], kernel_name: str
               ) -> SchedulingDecision:
        """Pick a device according to the configured policy."""
        if not devices:
            raise ValueError("node has no many-core devices")
        predictions = self.predict(devices, kernel_name)
        # pre-decision snapshots, captured before ``pending_work_s`` mutates
        # (only when someone will see them — this is a per-leaf hot path)
        if self.obs is not None and self.obs.enabled:
            pending = {d.lane: d.pending_work_s for d in devices}
            completions = {d.lane: d.pending_work_s + predictions[d.lane][0]
                           for d in devices}
        else:
            pending = completions = {}
        decision = self._policy.select(devices, predictions)
        decision.device.pending_work_s += decision.predicted_s
        self.decisions += 1
        if self.policy == "makespan" and not decision.used_measurement:
            self.bootstrap_decisions += 1
        self._emit_decision(kernel_name, decision, completions, pending)
        return decision

    def job_finished(self, decision: SchedulingDecision) -> None:
        """Release the queue reservation (the device recorded the measured
        time itself when the kernel ran)."""
        decision.device.pending_work_s = max(
            0.0, decision.device.pending_work_s - decision.predicted_s)
