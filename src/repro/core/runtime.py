"""The Cashmere runtime: Satin + MCL on heterogeneous many-core clusters.

Cashmere extends the Satin runtime with (Sec. II-C, III-B):

* **initialization** — rank 0 becomes the master and broadcasts run-time
  information; every node then compiles the most specific kernel version for
  each of its devices,
* **enableManyCore()** — once a task is "small enough for many-core", spawns
  stop producing stealable jobs and become node-local threads feeding the
  devices (handled by the base class via :meth:`_manycore_enabled`),
* **leaf execution on devices** — a leaf picks a device with the intra-node
  min-makespan scheduler, stages input over PCIe, runs the MCL kernel, and
  copies results back; the three device engines let transfers overlap kernel
  executions (Fig. 16),
* **automatic device memory management** — a launch blocks until its working
  set fits in device memory,
* **CPU fallback** — if the kernel launch fails, the leaf runs on the CPU
  (Fig. 4's catch block).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..cluster.das4 import SimCluster
from ..cluster.node import ComputeNode
from ..devices.device import SimDevice
from ..mcl.kernels import KernelLibrary
from ..satin.comm import RuntimeInfo
from ..satin.job import DivideConquerApp
from ..satin.runtime import RuntimeConfig, SatinRuntime
from .scheduler import DeviceScheduler

__all__ = ["CashmereConfig", "CashmereRuntime", "KernelLaunchError",
           "KernelVerificationError"]


class KernelLaunchError(RuntimeError):
    """A device kernel launch failed (triggers the CPU fallback)."""


class KernelVerificationError(RuntimeError):
    """The kernel library failed static verification (verify_kernels=True)."""


class CashmereConfig(RuntimeConfig):
    """Cashmere defaults differ from Satin's.

    One leaf already fills a whole device, so a node needs far fewer
    concurrent jobs than Satin's 8 (Sec. V-B).  Four node-level workers keep
    the PCIe bus busy and give the intra-node scheduler a deep enough queue
    to feed a slower second device (the K20 + Xeon Phi nodes of Fig. 16).

    The deliberate deviations from ``RuntimeConfig`` override its named
    ``DEFAULT_*`` class constants, so the relationship between the two
    configs is explicit rather than two literals that could silently drift.
    """

    #: one leaf fills a device; 4 workers keep PCIe and both devices fed
    DEFAULT_WORKERS_PER_NODE = 4
    #: Cashmere runs are short (device leaves); a tight steal-backoff cap
    #: keeps iteration starts responsive at negligible event cost.
    DEFAULT_STEAL_BACKOFF_MAX_S = 0.02

    def __init__(self, workers_per_node: Optional[int] = None,
                 kernel_compile_s: float = 0.0,
                 runtime_info_bytes: float = 4096.0,
                 scheduler_policy: str = "makespan",
                 out_of_core: bool = False,
                 **kwargs: Any):
        if workers_per_node is None:
            workers_per_node = self.DEFAULT_WORKERS_PER_NODE
        kwargs.setdefault("steal_backoff_max_s",
                          self.DEFAULT_STEAL_BACKOFF_MAX_S)
        super().__init__(workers_per_node=workers_per_node, **kwargs)
        #: simulated time to JIT one kernel for one device at init
        self.kernel_compile_s = kernel_compile_s
        #: size of the master's runtime-information broadcast
        self.runtime_info_bytes = runtime_info_bytes
        #: intra-node device placement policy (see DeviceScheduler)
        self.scheduler_policy = scheduler_policy
        #: stream leaves whose working set exceeds device memory in chunks
        #: (the paper's future work, Sec. VI: "Glasswing supports out-of-core
        #: data which Cashmere does not support yet").  Off by default, in
        #: which case oversized leaves fall back to the CPU (Fig. 4).
        self.out_of_core = out_of_core


class CashmereRuntime(SatinRuntime):
    """Satin runtime extended with many-core execution through MCL."""

    def __init__(self, cluster: SimCluster, app: DivideConquerApp,
                 library: KernelLibrary,
                 config: Optional[CashmereConfig] = None):
        super().__init__(cluster, app, config or CashmereConfig())
        self.library = library
        if self.config.verify_kernels:
            self._verify_library()
        self.scheduler = DeviceScheduler(policy=self.config.scheduler_policy,
                                         obs=self.env.obs)
        #: compiled kernels per (node rank, kernel name, device name)
        self._node_kernels: Dict[int, Dict[str, Dict[str, Any]]] = {}

    def _verify_library(self) -> None:
        """Static-verify every registered kernel version (opt-in gate).

        Enabled with ``RuntimeConfig.verify_kernels``; any *unsuppressed*
        error-severity finding aborts construction with a
        :class:`KernelVerificationError` listing the findings.
        """
        from ..mcl.verify import has_errors, render_text
        findings = []
        for name in self.library.kernel_names():
            for version in self.library.versions(name).values():
                findings.extend(version.verify())
        if has_errors(findings):
            raise KernelVerificationError(
                "kernel library failed static verification:\n"
                + render_text(findings))

    # ------------------------------------------------------------------
    # initialization (Sec. III-B "On initialization")
    # ------------------------------------------------------------------
    def begin(self, root_task: Any):
        """Start a Cashmere run without driving the event loop.

        The initialization phase (runtime-info broadcast + kernel
        compilation) runs to completion here — makespan measurement starts
        *after* it, as in :meth:`run` — and the returned root process is
        then driven by the caller (see :meth:`SatinRuntime.begin`).
        """
        if self._started:
            raise RuntimeError(
                f"a {type(self).__name__} instance runs exactly once")
        self._started = True
        self._start_nodes()
        init_proc = self.env.process(self._initialize())
        self.env.run(until=init_proc)
        master = self.cluster.node(0)
        self._run_start = self.env.now
        return self.env.process(self._root(master, root_task))

    def _initialize(self) -> Generator:
        """Master broadcast + per-node kernel compilation."""
        yield from self.comm.channel(0).broadcast(
            RuntimeInfo(), nbytes=self.config.runtime_info_bytes)
        for node in self.cluster.nodes:
            per_node = self._node_kernels.setdefault(node.rank, {})
            for name in self.library.kernel_names():
                per_kernel = per_node.setdefault(name, {})
                for dev in node.devices:
                    # compile() selects the most specific version and caches.
                    per_kernel[dev.spec.name] = self.library.compile(
                        name, dev.spec.name)
                    if self.config.kernel_compile_s > 0:
                        yield from node.cpu_delay(self.config.kernel_compile_s,
                                                  label="jit-compile")

    # ------------------------------------------------------------------
    # the programming-model hooks
    # ------------------------------------------------------------------
    def _manycore_enabled(self, node: ComputeNode) -> bool:
        return bool(node.devices)

    def get_kernel(self, node: ComputeNode, name: Optional[str] = None):
        """``Cashmere.getKernel()`` (Fig. 4): the compiled kernels of a node.

        With a single registered kernel the name may be omitted; with more,
        it must be given (exactly the paper's rule).
        """
        names = self.library.kernel_names()
        if name is None:
            if len(names) != 1:
                raise KeyError(
                    f"getKernel() without a name needs exactly one registered "
                    f"kernel; have {names}")
            name = names[0]
        per_node = self._node_kernels.get(node.rank, {})
        if name not in per_node or not per_node[name]:
            raise KeyError(f"node {node.rank} has no compiled kernel {name!r} "
                           "(no devices, or init not run)")
        return per_node[name]

    # ------------------------------------------------------------------
    # leaf execution on devices
    # ------------------------------------------------------------------
    def _execute_leaf(self, node: ComputeNode, task: Any,
                      task_id: int = -1) -> Generator:
        if not node.devices:
            result = yield from super()._execute_leaf(node, task, task_id)
            return result
        try:
            kernel_name = self.app.leaf_kernel_name(task)
        except NotImplementedError:
            result = yield from super()._execute_leaf(node, task, task_id)
            return result
        try:
            result = yield from self._launch_leaf_kernel(node, task, kernel_name)
            return result
        except (KernelLaunchError, MemoryError):
            # Fig. 4: catch -> leafCPU(a, b)
            self.stats.count_cpu_fallback()
            result = yield from super()._execute_leaf(node, task, task_id)
            return result

    def _launch_leaf_kernel(self, node: ComputeNode, task: Any,
                            kernel_name: str) -> Generator:
        app = self.app
        decision = self.scheduler.choose(node.devices, kernel_name)
        device = decision.device
        compiled = self._node_kernels[node.rank][kernel_name][device.spec.name]
        params = app.leaf_kernel_params(task)
        h2d = app.leaf_h2d_bytes(task)
        d2h = app.leaf_d2h_bytes(task)
        profile = compiled.profile(params, h2d_bytes=h2d, d2h_bytes=d2h,
                                   label=kernel_name)
        footprint = h2d + d2h
        if footprint > device.spec.mem_bytes and self.config.out_of_core:
            try:
                yield from self._launch_out_of_core(device, profile,
                                                    kernel_name)
            finally:
                self.scheduler.job_finished(decision)
            self.stats.count_out_of_core()
            return self._leaf_token(task)
        try:
            yield device.alloc(footprint)   # raises MemoryError if impossible
        except MemoryError:
            self.scheduler.job_finished(decision)
            raise
        try:
            yield from device.copy_to_device(h2d, label=f"{kernel_name}-in")
            yield from device.run_kernel(profile, label=kernel_name)
            yield from device.copy_from_device(d2h, label=f"{kernel_name}-out")
        finally:
            self.scheduler.job_finished(decision)
            yield device.free(footprint)
        return self._leaf_token(task)

    def _launch_out_of_core(self, device: SimDevice, profile: Any,
                            kernel_name: str) -> Generator:
        """Stream an oversized leaf through the device in pipelined chunks.

        The launch is split into equal fractions small enough that two
        chunks fit in device memory simultaneously, so chunk *k+1*'s input
        transfer overlaps chunk *k*'s kernel.  Each chunk is a linearly
        scaled copy of the full launch profile.
        """
        import math

        footprint = profile.h2d_bytes + profile.d2h_bytes
        # Two resident chunks for the pipeline, with some headroom.
        chunk_budget = device.spec.mem_bytes * 0.45
        chunks = max(int(math.ceil(footprint / chunk_budget)), 2)
        part = profile.scaled(1.0 / chunks)
        part_bytes = part.h2d_bytes + part.d2h_bytes

        def one_chunk(index: int) -> Generator:
            yield device.alloc(part_bytes)
            try:
                yield from device.copy_to_device(
                    part.h2d_bytes, label=f"{kernel_name}-ooc{index}-in")
                yield from device.run_kernel(
                    part, label=f"{kernel_name}-ooc{index}")
                yield from device.copy_from_device(
                    part.d2h_bytes, label=f"{kernel_name}-ooc{index}-out")
            finally:
                yield device.free(part_bytes)

        # Chunk processes run concurrently; the device's engines pipeline
        # them while the memory admission keeps at most two resident.
        procs = [self.env.process(one_chunk(i)) for i in range(chunks)]
        for proc in procs:
            yield proc
