"""DAS-4 cluster presets.

The paper's test-bed (Sec. IV) is the main DAS-4 cluster: 74 dual Xeon E5620
nodes on QDR InfiniBand, with 22 GTX480, 8 K20 (two of which also host a Xeon
Phi), 2 C2050, 1 Titan, 1 GTX680 and 1 HD7970.  This module builds the
configurations used in the evaluation:

* homogeneous 1..16 GTX480 nodes (the scalability studies, Figs. 7-14),
* the 15-node heterogeneous configuration used for raytracer and matmul,
* the 22/23-node configurations used for k-means and n-body (Table III),
  where Xeon Phis share a node with a K20, as on the real machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.engine import Environment
from ..sim.network import QDR_INFINIBAND, Network, NetworkSpec
from ..sim.trace import TraceRecorder
from .node import ComputeNode

__all__ = [
    "ClusterConfig",
    "SimCluster",
    "gtx480_cluster",
    "satin_cpu_cluster",
    "heterogeneous_small",
    "heterogeneous_kmeans",
    "heterogeneous_nbody",
    "single_device_cluster",
]


@dataclass
class ClusterConfig:
    """Declarative description of a cluster to simulate."""

    name: str
    #: one entry per node: tuple of device names on that node (may be empty)
    nodes: List[Tuple[str, ...]]
    network: NetworkSpec = QDR_INFINIBAND
    #: devices overlap PCIe transfers with kernels (False = ablation)
    device_overlap: bool = True

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def device_counts(self) -> dict:
        counts: dict = {}
        for devs in self.nodes:
            for d in devs:
                counts[d] = counts.get(d, 0) + 1
        return counts


class SimCluster:
    """Instantiated simulated cluster: environment, network, nodes, trace.

    Observability: the cluster's :class:`~repro.obs.bus.EventBus` lives on
    the environment (``cluster.obs`` is an alias for ``cluster.env.obs``).
    ``trace_enabled`` and ``obs_enabled`` both switch the bus on; the Gantt
    :class:`TraceRecorder` is a subscriber that turns the bus's interval
    events into activities, so figures and metrics share one event stream.
    """

    def __init__(self, config: ClusterConfig, trace_enabled: bool = False,
                 obs_enabled: bool = False):
        self.config = config
        self.env = Environment()
        self.env.obs.enabled = trace_enabled or obs_enabled
        self.obs = self.env.obs
        self.trace = TraceRecorder(enabled=trace_enabled, bus=self.env.obs)
        self.network = Network(self.env, config.network)
        self.nodes: List[ComputeNode] = [
            ComputeNode(self.env, self.network, rank, devs, trace=self.trace,
                        device_overlap=config.device_overlap)
            for rank, devs in enumerate(config.nodes)
        ]
        #: cached alive-node list — the worker loops consult it on every
        #: pop/steal round, so rebuilding it per call costs real wall-clock.
        #: Membership changes go through :meth:`membership_changed`.
        self._alive_cache: Optional[List[ComputeNode]] = None
        #: bumped on every membership change; derived caches (e.g. the
        #: runtime's per-rank steal-candidate lists) key off it
        self.alive_version: int = 0

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, rank: int) -> ComputeNode:
        return self.nodes[rank]

    def alive_nodes(self) -> List[ComputeNode]:
        """The non-crashed nodes (cached; callers must not mutate)."""
        cache = self._alive_cache
        if cache is None:
            cache = self._alive_cache = [n for n in self.nodes
                                         if not n.crashed]
        return cache

    def membership_changed(self) -> None:
        """Invalidate the alive-nodes cache after a ``crashed`` flip."""
        self._alive_cache = None
        self.alive_version += 1


def gtx480_cluster(num_nodes: int, network: NetworkSpec = QDR_INFINIBAND) -> ClusterConfig:
    """Homogeneous GTX480 nodes — the scalability studies run on 1..16 of these."""
    if not 1 <= num_nodes <= 22:
        raise ValueError("DAS-4 has 22 GTX480 nodes")
    return ClusterConfig(
        name=f"das4-{num_nodes}x-gtx480",
        nodes=[("gtx480",) for _ in range(num_nodes)],
        network=network,
    )


def satin_cpu_cluster(num_nodes: int, network: NetworkSpec = QDR_INFINIBAND) -> ClusterConfig:
    """CPU-only nodes for original-Satin baseline measurements."""
    return ClusterConfig(
        name=f"das4-{num_nodes}x-cpu",
        nodes=[() for _ in range(num_nodes)],
        network=network,
    )


def single_device_cluster(device: str, network: NetworkSpec = QDR_INFINIBAND) -> ClusterConfig:
    """One node with one device — used for one-node reference GFLOPS."""
    return ClusterConfig(name=f"das4-1x-{device}", nodes=[(device,)], network=network)


def heterogeneous_small(network: NetworkSpec = QDR_INFINIBAND) -> ClusterConfig:
    """Table III configuration for raytracer and matmul (15 devices/nodes).

    10 GTX480, 2 C2050, 1 GTX680, 1 Titan, 1 HD7970.
    """
    nodes: List[Tuple[str, ...]] = (
        [("gtx480",)] * 10 + [("c2050",)] * 2 + [("gtx680",)] + [("titan",)] + [("hd7970",)]
    )
    return ClusterConfig(name="das4-het-15", nodes=nodes, network=network)


def heterogeneous_kmeans(network: NetworkSpec = QDR_INFINIBAND) -> ClusterConfig:
    """Table III configuration for k-means (22 devices on 21 nodes).

    The 15-device configuration plus 7 K20s and 1 Xeon Phi; the Phi shares a
    node with a K20, as on DAS-4 ("each fitted in a K20 node", Sec. IV).
    """
    nodes = list(heterogeneous_small(network).nodes)
    nodes += [("k20",)] * 6 + [("k20", "xeon_phi")]
    return ClusterConfig(name="das4-het-kmeans", nodes=nodes, network=network)


def heterogeneous_nbody(network: NetworkSpec = QDR_INFINIBAND) -> ClusterConfig:
    """Table III configuration for n-body (24 devices on 22 nodes).

    The 15-device configuration plus 7 K20s and 2 Xeon Phis (two K20 nodes
    each also carry a Phi).
    """
    nodes = list(heterogeneous_small(network).nodes)
    nodes += [("k20",)] * 5 + [("k20", "xeon_phi")] * 2
    return ClusterConfig(name="das4-het-nbody", nodes=nodes, network=network)
