"""Simulated DAS-4 cluster: nodes, devices, interconnect presets."""

from .das4 import (
    ClusterConfig,
    SimCluster,
    gtx480_cluster,
    heterogeneous_kmeans,
    heterogeneous_nbody,
    heterogeneous_small,
    satin_cpu_cluster,
    single_device_cluster,
)
from .node import ComputeNode

__all__ = [
    "ComputeNode",
    "ClusterConfig",
    "SimCluster",
    "gtx480_cluster",
    "satin_cpu_cluster",
    "single_device_cluster",
    "heterogeneous_small",
    "heterogeneous_kmeans",
    "heterogeneous_nbody",
]
