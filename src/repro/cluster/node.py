"""Simulated compute node.

A DAS-4 node is a dual quad-core Xeon E5620 host with zero or more many-core
devices on its PCIe bus, attached to the cluster interconnect.  The host CPU
cores are a shared resource: Satin leaf computations, communication handling
and load-balancing all compete for them — the effect the paper identifies as
the second cause of Satin's reduced scalability (Sec. V-B).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..devices.device import SimDevice
from ..devices.specs import HOST_CPU, CpuSpec, device_spec
from typing import Callable

from ..sim.engine import Environment, Event, Timeout
from ..sim.network import Endpoint, Network
from ..sim.resources import Resource
from ..sim.trace import TraceRecorder

__all__ = ["ComputeNode"]


class _DelayOp:
    """Zero-process mirror of ``env.process(cpu_delay(s); finish())``.

    Replays that spawned generator's event structure exactly: a
    front-priority starter stands in for the Process's ``Initialize``
    (same heap slot, so the core is claimed at the same virtual moment),
    then grant → Timeout → busy-accounting/obs/release → ``finish()``,
    each at the pop where the generator would have resumed.  Only the
    spawned process's StopIteration completion event is dropped — it has
    no waiters on this fire-and-forget path, and removing a pop wholesale
    never reorders the remaining events.
    """

    __slots__ = ("node", "seconds", "label", "finish", "req", "start",
                 "completes")

    def __init__(self, node: "ComputeNode", seconds: float, label: str,
                 finish: Callable[[], None], completes: bool):
        self.node = node
        self.seconds = seconds
        self.label = label
        self.finish = finish
        self.req = None
        self.start = 0.0
        #: True when the mirrored process *ended* right after ``finish``
        #: (fire-and-forget): an inert event then stands in for its
        #: StopIteration completion pop, keeping event counts identical.
        #: False when the process went on to send (the transfer chain's
        #: own fillers cover the tail).
        self.completes = completes
        env = node.env
        starter = Event(env)
        starter._ok = True
        starter._value = None
        starter.callbacks.append(self._begin)
        env._schedule(starter, 0, front=True)

    def _begin(self, _event: Event) -> None:
        if self.seconds <= 0:
            self.finish()
            if self.completes:
                Event(self.node.env).succeed(None)
            return
        req = self.node.cores.request()
        req.callbacks.append(self._granted)
        self.req = req

    def _granted(self, _event: Event) -> None:
        env = self.node.env
        self.start = env._now
        hop = Timeout(env, self.seconds)
        hop.callbacks.append(self._done)

    def _done(self, _event: Event) -> None:
        node = self.node
        env = node.env
        self.node.busy_cpu_s += env._now - self.start
        obs = env.obs
        if obs.enabled:
            obs.emit("cpu", node=node.rank, lane=f"{node.name}/cpu",
                     start=self.start, end=env._now, label=self.label)
        node.cores.release(self.req)
        self.finish()
        if self.completes:
            Event(env).succeed(None)


class ComputeNode:
    """One cluster node: host CPU, devices, network endpoint."""

    def __init__(self, env: Environment, network: Network, rank: int,
                 device_names: Sequence[str] = (),
                 cpu: CpuSpec = HOST_CPU,
                 trace: Optional[TraceRecorder] = None,
                 device_overlap: bool = True):
        self.env = env
        self.rank = rank
        self.name = f"node{rank}"
        self.cpu = cpu
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.endpoint: Endpoint = network.attach(rank)
        self.cores = Resource(env, capacity=cpu.cores)
        self.devices: List[SimDevice] = []
        for i, dev_name in enumerate(device_names):
            self.devices.append(
                SimDevice(env, device_spec(dev_name), self.name, index=i,
                          trace=self.trace, overlap=device_overlap)
            )
        #: set by fault injection; a crashed node stops participating
        self.crashed = False
        #: cumulative host-CPU busy time (core-seconds), for utilization
        self.busy_cpu_s = 0.0

    @property
    def device_names(self) -> List[str]:
        return [d.spec.name for d in self.devices]

    def cpu_compute(self, flops: float, label: str = "cpu") -> Generator:
        """Process: run a single-threaded CPU computation on one core.

        This is how original-Satin leaves execute; it occupies one of the
        node's 8 cores for flops / sustained-single-core-rate seconds.
        """
        with (yield self.cores.request()):
            start = self.env.now
            yield self.env.timeout(flops / self.cpu.core_flops)
            self.busy_cpu_s += self.env.now - start
            obs = self.env.obs
            if obs.enabled:
                obs.emit("cpu", node=self.rank, lane=f"{self.name}/cpu",
                         start=start, end=self.env.now, label=label)

    def cpu_delay_async(self, seconds: float, label: str,
                        finish: Callable[[], None],
                        completes: bool = True) -> None:
        """Occupy a core for ``seconds``, then call ``finish()`` — without
        spawning a Process.  Event-order-identical replacement for
        ``env.process(<generator doing cpu_delay(seconds); finish()>)``;
        see :class:`_DelayOp`.  Pass ``completes=False`` when ``finish``
        itself continues the mirrored process (e.g. into a send)."""
        _DelayOp(self, seconds, label, finish, completes)

    def cpu_delay(self, seconds: float, label: str = "cpu") -> Generator:
        """Process: occupy one core for a fixed time (protocol overheads)."""
        if seconds <= 0:
            return
        # Hot path (every protocol overhead charges a core): explicit
        # release instead of the context manager, direct Timeout.
        env = self.env
        cores = self.cores
        req = yield cores.request()
        try:
            start = env.now
            yield Timeout(env, seconds)
            self.busy_cpu_s += env.now - start
            obs = env.obs
            if obs.enabled:
                obs.emit("cpu", node=self.rank, lane=f"{self.name}/cpu",
                         start=start, end=env.now, label=label)
        finally:
            cores.release(req)

    def __repr__(self) -> str:
        devs = ",".join(self.device_names) or "cpu-only"
        return f"<ComputeNode {self.name} [{devs}]>"
