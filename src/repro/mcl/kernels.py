"""Kernel versions, most-specific selection and compilation.

Stepwise refinement produces multiple files with different versions of the
same kernel (Sec. III-A): e.g. ``matmul`` on level ``perfect`` plus an
optimized version on ``gpu``.  :class:`KernelLibrary` stores them and, for a
given device, *automatically chooses the most specific version*: the version
whose level lies deepest on the device's ancestry path.  In the paper's
example, with versions at perfect/gpu/amd/hd7970, the Xeon Phi gets
``perfect``, all NVIDIA GPUs get ``gpu``, and the HD7970 gets ``hd7970``.

:meth:`KernelLibrary.compile` then translates the chosen version down to the
leaf, generates OpenCL source and the launch configuration, and bundles the
cost model — the :class:`CompiledKernel` Cashmere ships to each node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .verify.findings import Finding

from ..devices.perfmodel import KernelProfile
from ..devices.specs import DeviceSpec, device_spec
from .compiler.analysis import KernelAnalysis, analyze_cost
from .compiler.codegen import LaunchConfig, derive_launch_config, generate_opencl
from .compiler.efficiency import EfficiencyEstimate, estimate_efficiency
from .compiler.feedback import FeedbackItem, get_feedback
from .compiler.translate import translate
from .hdl.library import get_description, leaf_names
from .mcpl import ast as mcpl_ast
from .mcpl.interpreter import execute
from .mcpl.parser import parse_kernels
from .mcpl.semantics import KernelInfo, analyze

__all__ = ["KernelVersion", "CompiledKernel", "KernelLibrary",
           "CACHE_MISS_RATE", "effective_device_bytes"]

#: Fraction of *re-read* traffic that misses when the reused array does not
#: fit in the device's last-level cache.
CACHE_MISS_RATE = 0.5


def effective_device_bytes(analysis: KernelAnalysis, spec: DeviceSpec) -> float:
    """Cache-aware effective DRAM traffic of a kernel launch.

    Per accessed array: streaming traffic (roughly one visit per element) is
    compulsory; re-read traffic is served by the last-level cache when the
    array fits, and mostly misses otherwise.  This is why a naive k-means
    (centroids of a few tens of KB, cache-resident) stays compute-bound while
    a naive matmul (panels of hundreds of MB) is crushed by DRAM traffic.
    """
    by_array = analysis.global_bytes_by_array or {}
    footprints = analysis.array_footprints or {}
    if not by_array:
        return analysis.global_bytes
    total = 0.0
    for array, traffic in by_array.items():
        size = footprints.get(array)
        if size is None or traffic <= size * 1.5:
            total += traffic                      # streaming / unknown size
        elif size <= spec.l2_bytes:
            total += size                          # reused, cache-resident
        else:
            total += size + (traffic - size) * CACHE_MISS_RATE
    return total


@dataclass
class KernelVersion:
    """One source version of a kernel at one abstraction level."""

    name: str
    level: str
    kernel: mcpl_ast.Kernel
    info: KernelInfo
    source: str

    @property
    def depth(self) -> int:
        """Depth of the level in the hierarchy (0 = perfect)."""
        return len(get_description(self.level).ancestry()) - 1

    def feedback(self, params: Optional[Dict[str, Any]] = None) -> List[FeedbackItem]:
        return get_feedback(self.info, params)

    def verify(self) -> List["Finding"]:
        """Run the static verifier over this version.

        Inline ``// lint: ignore[...]`` comments in the registered source are
        honoured, so the returned findings are exactly the *unsuppressed*
        ones.  See :mod:`repro.mcl.verify`.
        """
        from .verify import verify_kernel
        return verify_kernel(self.info, self.source)


@dataclass
class CompiledKernel:
    """A kernel version compiled for one leaf device."""

    name: str
    device: str
    version_level: str        #: level of the source version that was selected
    leaf_kernel: mcpl_ast.Kernel   #: translated to the leaf level
    leaf_info: KernelInfo
    opencl_source: str
    spec: DeviceSpec

    def __post_init__(self) -> None:
        # Analyses depend only on the scalar parameters; leaf launches reuse
        # the same shapes thousands of times, so cache them.
        self._analysis_cache: Dict[Tuple, KernelAnalysis] = {}
        self._efficiency_cache: Dict[Tuple, EfficiencyEstimate] = {}

    @staticmethod
    def _key(params: Dict[str, Any]) -> Tuple:
        return tuple(sorted(params.items()))

    def launch_config(self, params: Dict[str, Any]) -> LaunchConfig:
        """Work-group/work-item configuration for the given parameters."""
        return derive_launch_config(self.leaf_info, params)

    def analysis(self, params: Dict[str, Any]) -> KernelAnalysis:
        key = self._key(params)
        if key not in self._analysis_cache:
            self._analysis_cache[key] = analyze_cost(self.leaf_info, params)
        return self._analysis_cache[key]

    def efficiency(self, params: Dict[str, Any]) -> EfficiencyEstimate:
        key = self._key(params)
        if key not in self._efficiency_cache:
            self._efficiency_cache[key] = estimate_efficiency(
                self.leaf_info, self.analysis(params), self.spec, params)
        return self._efficiency_cache[key]

    def profile(self, params: Dict[str, Any],
                h2d_bytes: float = 0.0, d2h_bytes: float = 0.0,
                label: Optional[str] = None) -> KernelProfile:
        """Roofline profile of one launch, for the device simulator."""
        analysis = self.analysis(params)
        eff = self.efficiency(params)
        return KernelProfile(
            name=label or self.name,
            flops=analysis.flops,
            device_bytes=effective_device_bytes(analysis, self.spec),
            compute_efficiency=eff.compute_efficiency,
            memory_efficiency=eff.memory_efficiency,
            divergence_factor=eff.divergence_factor,
            h2d_bytes=h2d_bytes,
            d2h_bytes=d2h_bytes,
        )

    def execute(self, *args: Any) -> Any:
        """Run the leaf kernel through the MCPL interpreter (validation)."""
        return execute(self.leaf_info, *args)


class KernelLibrary:
    """All versions of all kernels of an application."""

    def __init__(self) -> None:
        self._versions: Dict[str, Dict[str, KernelVersion]] = {}
        self._compiled: Dict[Tuple[str, str], CompiledKernel] = {}

    # -- registration ----------------------------------------------------------
    def add_source(self, source: str) -> List[KernelVersion]:
        """Parse MCPL source and register every kernel version in it."""
        added = []
        for kernel in parse_kernels(source):
            info = analyze(kernel)
            version = KernelVersion(
                name=kernel.name, level=kernel.level, kernel=kernel,
                info=info, source=source)
            by_level = self._versions.setdefault(kernel.name, {})
            if kernel.level in by_level:
                raise ValueError(
                    f"duplicate version of {kernel.name!r} at level "
                    f"{kernel.level!r}")
            by_level[kernel.level] = version
            added.append(version)
        return added

    def kernel_names(self) -> List[str]:
        return sorted(self._versions)

    def versions(self, name: str) -> Dict[str, KernelVersion]:
        try:
            return dict(self._versions[name])
        except KeyError:
            raise KeyError(
                f"no kernel {name!r} registered; have {self.kernel_names()}"
            ) from None

    # -- selection -----------------------------------------------------------
    def select_version(self, name: str, device: str) -> KernelVersion:
        """Most specific version for a device (deepest on its ancestry path)."""
        by_level = self.versions(name)
        path = get_description(device).level_names()
        best: Optional[KernelVersion] = None
        for level in path:  # root..leaf: later (deeper) wins
            if level in by_level:
                best = by_level[level]
        if best is None:
            raise KeyError(
                f"kernel {name!r} has no version applicable to {device!r} "
                f"(versions at {sorted(by_level)}, device path {path})")
        return best

    def compile(self, name: str, device: str) -> CompiledKernel:
        """Compile (and cache) the most specific version for a leaf device."""
        key = (name, device)
        if key in self._compiled:
            return self._compiled[key]
        spec = device_spec(device)
        version = self.select_version(name, device)
        leaf_kernel = translate(version.kernel, device)
        leaf_info = analyze(leaf_kernel, get_description(device))
        compiled = CompiledKernel(
            name=name,
            device=device,
            version_level=version.level,
            leaf_kernel=leaf_kernel,
            leaf_info=leaf_info,
            opencl_source=generate_opencl(leaf_info),
            spec=spec,
        )
        self._compiled[key] = compiled
        return compiled

    def compile_all(self, name: str) -> Dict[str, CompiledKernel]:
        """Compile a kernel for every leaf device (what MCL does for Fig. 2)."""
        return {leaf: self.compile(name, leaf) for leaf in leaf_names()}

    def generate_glue(self, name: str) -> str:
        """Generate the Cashmere glue-code module for a kernel.

        The glue records, per device, the selected version level and how to
        configure the launch; Cashmere loads this to call MCL kernels from
        the divide-and-conquer framework.
        """
        lines = [
            f'"""Cashmere glue for kernel {name!r} — generated by MCL."""',
            "",
            f"KERNEL = {name!r}",
            "",
            "SELECTED_VERSIONS = {",
        ]
        for leaf in leaf_names():
            version = self.select_version(name, leaf)
            lines.append(f"    {leaf!r}: {version.level!r},")
        lines.append("}")
        lines.append("")
        lines.append("def launch_config(device, params):")
        lines.append("    from repro.mcl.kernels import KernelLibrary  # runtime lookup")
        lines.append("    raise NotImplementedError('resolved by Cashmere at run time')")
        return "\n".join(lines) + "\n"
