"""Static kernel analysis: flops, memory traffic, divergence.

The MCL compiler understands how MCPL computation maps to the hardware
(Sec. II-B), which lets it predict kernel behaviour.  This module walks a
kernel's AST with the scalar parameters bound to concrete values and
computes:

* ``flops`` — floating-point operations executed by the whole kernel,
* ``global_bytes`` — traffic to the device's ``main`` memory.  Accesses to
  arrays staged in ``local`` memory are charged once for the staging loop
  and *not* per use — this is exactly why tiled (optimized) kernels win in
  Fig. 6,
* ``divergence`` — the fraction of work executed under data-dependent
  control flow, which on SIMD hardware serializes lanes (the raytracer's
  limiting factor).

Loop trip counts are evaluated from the bound parameters; expressions that
depend on a ``foreach`` index are evaluated at the index's midpoint, a
standard representative-iteration approximation.  Data-dependent ``while``
loops cannot be counted statically and fall back to
``DEFAULT_WHILE_TRIPS``, flagged as divergent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..mcpl import ast
from ..mcpl.semantics import KernelInfo, analyze

__all__ = ["KernelAnalysis", "analyze_cost", "DEFAULT_WHILE_TRIPS"]

DEFAULT_WHILE_TRIPS = 16

_FLOP_OPS = {"+", "-", "*", "/"}
#: flop cost of builtin calls (single-precision device estimates)
_BUILTIN_FLOPS = {
    "sqrt": 4, "rsqrt": 2, "fabs": 1, "floor": 1, "ceil": 1,
    "exp": 8, "log": 8, "sin": 8, "cos": 8, "tan": 12,
    "pow": 16, "min": 1, "max": 1, "clamp": 2, "int_cast": 0, "float_cast": 0,
    "barrier": 0,
}


@dataclass
class KernelAnalysis:
    """Result of statically analyzing one kernel with bound parameters."""

    flops: float
    global_bytes: float
    local_bytes: float
    divergence: float        #: 0 (straight-line) .. 1 (all work divergent)
    parallelism: float       #: total foreach iterations at the top level
    #: global traffic split per accessed array (cache modeling needs this)
    global_bytes_by_array: Dict[str, float] = field(default_factory=dict)
    #: in-memory size of each array parameter, from its tracked dims
    array_footprints: Dict[str, float] = field(default_factory=dict)

    @property
    def arithmetic_intensity(self) -> float:
        """flops per byte of global traffic (the roofline x-axis)."""
        return self.flops / self.global_bytes if self.global_bytes > 0 else float("inf")


class _Unknown(Exception):
    """An expression could not be evaluated statically."""


class _CostWalker:
    def __init__(self, info: KernelInfo, params: Dict[str, Any]):
        self.info = info
        self.params = dict(params)
        # Only the kernel's array *parameters* live in device (global)
        # memory; every declared array — `local` tiles, `private` registers,
        # plain C-style locals — is on-chip.
        param_arrays = {p.name for p in info.kernel.params if p.type.is_array}
        self.local_arrays = {name for name, typ in info.symbols.items()
                             if typ.is_array and name not in param_arrays}
        # Array element type sizes
        self.elem_bytes = {name: typ.element_bytes
                           for name, typ in info.symbols.items() if typ.is_array}
        self.flops = 0.0
        self.global_bytes = 0.0
        self.global_by_array: Dict[str, float] = {}
        self.local_bytes = 0.0
        self.divergent_flops = 0.0
        self.top_parallelism = 1.0
        self._nest_product = 1.0
        self._saw_top_foreach = False

    # -- static expression evaluation --------------------------------------
    def eval_expr(self, expr: ast.Expr, env: Dict[str, Any]):
        """Evaluate with MCPL numeric semantics: int / int truncates.

        Returns a Python int or float; raises :class:`_Unknown` for
        expressions depending on unbound variables.  Loop-variable midpoints
        stored as floats make affected divisions approximate, which is fine
        for cost estimation.
        """
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name in env:
                return env[expr.name]
            raise _Unknown(expr.name)
        if isinstance(expr, ast.Binary):
            left = self.eval_expr(expr.left, env)
            right = self.eval_expr(expr.right, env)
            both_int = isinstance(left, int) and isinstance(right, int)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                if right == 0:
                    raise _Unknown("div0")
                if both_int:
                    q = abs(left) // abs(right)
                    return q if (left >= 0) == (right >= 0) else -q
                return left / right
            if expr.op == "%":
                if right == 0:
                    return 0
                if both_int:
                    return left - (abs(left) // abs(right)) * \
                        (right if (left >= 0) == (right >= 0) else -right)
                return left % right
            raise _Unknown(expr.op)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self.eval_expr(expr.operand, env)
        if isinstance(expr, ast.Call) and expr.name in ("min", "max"):
            values = [self.eval_expr(a, env) for a in expr.args]
            return min(values) if expr.name == "min" else max(values)
        raise _Unknown(type(expr).__name__)

    # -- expression costs ----------------------------------------------------
    def expr_cost(self, expr: ast.Expr, mult: float, divergent: bool) -> None:
        """Accumulate the cost of evaluating ``expr`` once, times ``mult``."""
        if expr is None:
            return
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.Var)):
            return
        if isinstance(expr, ast.Index):
            for idx in expr.indices:
                self.expr_cost(idx, mult, divergent)
            nbytes = self.elem_bytes.get(expr.array, 4)
            if expr.array in self.local_arrays:
                self.local_bytes += nbytes * mult
            else:
                self.global_bytes += nbytes * mult
                self.global_by_array[expr.array] = \
                    self.global_by_array.get(expr.array, 0.0) + nbytes * mult
            return
        if isinstance(expr, ast.Binary):
            self.expr_cost(expr.left, mult, divergent)
            self.expr_cost(expr.right, mult, divergent)
            if expr.op in _FLOP_OPS and self._is_float_op(expr):
                self.flops += mult
                if divergent:
                    self.divergent_flops += mult
            return
        if isinstance(expr, ast.Unary):
            self.expr_cost(expr.operand, mult, divergent)
            if expr.op == "-" and self._is_float_op(expr):
                self.flops += mult
            return
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self.expr_cost(arg, mult, divergent)
            cost = _BUILTIN_FLOPS.get(expr.name, 1)
            self.flops += cost * mult
            if divergent:
                self.divergent_flops += cost * mult
            return

    def _is_float_op(self, expr: ast.Expr) -> bool:
        """Heuristic type inference: does this operation produce a float?"""
        if isinstance(expr, ast.FloatLit):
            return True
        if isinstance(expr, ast.IntLit):
            return False
        if isinstance(expr, ast.Var):
            typ = self.info.symbols.get(expr.name)
            return typ is not None and typ.base == "float"
        if isinstance(expr, ast.Index):
            typ = self.info.symbols.get(expr.array)
            return typ is not None and typ.base == "float"
        if isinstance(expr, ast.Binary):
            return self._is_float_op(expr.left) or self._is_float_op(expr.right)
        if isinstance(expr, ast.Unary):
            return self._is_float_op(expr.operand)
        if isinstance(expr, ast.Call):
            return expr.name not in ("int_cast",)
        return False

    # -- statement costs --------------------------------------------------------
    def stmt_cost(self, stmt: ast.Stmt, env: Dict[str, float],
                  mult: float, divergent: bool, depth: int) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self.stmt_cost(s, env, mult, divergent, depth)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self.expr_cost(stmt.init, mult, divergent)
                try:
                    # Track statically evaluable locals (e.g. recovered
                    # indices like `int w = ci * 4 + ti;`) so later loop
                    # bounds that mention them stay analyzable.
                    env[stmt.name] = self.eval_expr(stmt.init, env)
                except _Unknown:
                    pass
        elif isinstance(stmt, ast.Assign):
            self.expr_cost(stmt.value, mult, divergent)
            if isinstance(stmt.target, ast.Index):
                self.expr_cost(stmt.target, mult, divergent)
            if stmt.op != "=" and self._target_is_float(stmt.target):
                self.flops += mult
                if divergent:
                    self.divergent_flops += mult
        elif isinstance(stmt, ast.Foreach):
            count = self._trip_count(stmt.count, env)
            # Parallelism of the kernel is the deepest foreach-nest product.
            nest_product = self._nest_product * max(count, 1.0)
            self.top_parallelism = max(self.top_parallelism, nest_product)
            self._saw_top_foreach = True
            # Evaluate the body at the midpoints of equal index buckets and
            # average: a single midpoint thread misrepresents kernels whose
            # work distribution depends on the index (chunked loops on the
            # Xeon Phi where only the first threads have work, bounds guards
            # introduced by block decomposition).  Bucket midpoints estimate
            # coverage fractions without double-weighting the extremes.
            buckets = int(min(max(count, 1), 8))
            # Integer sample indices (foreach variables are ints) at bucket
            # midpoints, clamped to the valid range.
            samples = sorted({
                min(int(count * (2 * i + 1) / (2 * buckets)),
                    max(int(count) - 1, 0))
                for i in range(buckets)})
            weight = mult * count / len(samples)
            prev = self._nest_product
            self._nest_product = nest_product
            for value in samples:
                inner_env = dict(env)
                inner_env[stmt.var] = value
                self.stmt_cost(stmt.body, inner_env, weight, divergent, depth + 1)
            self._nest_product = prev
        elif isinstance(stmt, ast.For):
            trips, loop_env = self._for_trips(stmt, env)
            self.stmt_cost(stmt.body, loop_env, mult * trips, divergent, depth)
            self.stmt_cost(stmt.step, loop_env, mult * trips, divergent, depth)
        elif isinstance(stmt, ast.If):
            self.expr_cost(stmt.cond, mult, divergent)
            data_dep = self._is_data_dependent(stmt.cond, env)
            if not data_dep:
                # Statically decidable guards (bounds checks introduced by
                # block decomposition, chunk guards) cost only the branch
                # actually taken at this sample point.
                taken = self._eval_condition(stmt.cond, env)
                if taken is True:
                    self.stmt_cost(stmt.then, env, mult, divergent, depth)
                    return
                if taken is False:
                    if stmt.orelse is not None:
                        self.stmt_cost(stmt.orelse, env, mult, divergent, depth)
                    return
            # Each branch runs with probability 1/2 when data-dependent;
            # on SIMD hardware both sides cost time, which the divergence
            # score captures.
            branch_mult = mult * (0.5 if data_dep else 1.0)
            self.stmt_cost(stmt.then, env, branch_mult, divergent or data_dep, depth)
            if stmt.orelse is not None:
                self.stmt_cost(stmt.orelse, env, branch_mult,
                               divergent or data_dep, depth)
        elif isinstance(stmt, ast.While):
            self.expr_cost(stmt.cond, mult, True)
            self.stmt_cost(stmt.body, env, mult * DEFAULT_WHILE_TRIPS, True, depth)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.expr_cost(stmt.value, mult, divergent)
        elif isinstance(stmt, ast.ExprStmt):
            self.expr_cost(stmt.expr, mult, divergent)
        # Break/Continue cost nothing.

    def _target_is_float(self, target: ast.Expr) -> bool:
        name = target.name if isinstance(target, ast.Var) else target.array
        typ = self.info.symbols.get(name)
        return typ is not None and typ.base == "float"

    def _trip_count(self, expr: ast.Expr, env: Dict[str, float]) -> float:
        try:
            return max(self.eval_expr(expr, env), 0.0)
        except _Unknown:
            return float(DEFAULT_WHILE_TRIPS)

    def _for_trips(self, stmt: ast.For, env: Dict[str, float]):
        """Estimate a for loop's trip count from init/cond/step."""
        loop_env = dict(env)
        var: Optional[str] = None
        if isinstance(stmt.init, ast.VarDecl) and stmt.init.init is not None:
            var = stmt.init.name
            try:
                loop_env[var] = self.eval_expr(stmt.init.init, env)
            except _Unknown:
                loop_env[var] = 0.0
        elif isinstance(stmt.init, ast.Assign) and isinstance(stmt.init.target, ast.Var):
            var = stmt.init.target.name
            try:
                loop_env[var] = self.eval_expr(stmt.init.value, env)
            except _Unknown:
                loop_env[var] = 0.0
        # Pattern: (a conjunction of) i < bound, with a linear step.
        def conjuncts(expr):
            if isinstance(expr, ast.Binary) and expr.op == "&&":
                yield from conjuncts(expr.left)
                yield from conjuncts(expr.right)
            else:
                yield expr

        bounds = []
        if var is not None and stmt.cond is not None:
            for c in conjuncts(stmt.cond):
                if (isinstance(c, ast.Binary) and c.op in ("<", "<=")
                        and isinstance(c.left, ast.Var) and c.left.name == var):
                    try:
                        bounds.append((self.eval_expr(c.right, loop_env), c.op))
                    except _Unknown:
                        pass
        if bounds:
            try:
                bound, op = min(bounds, key=lambda b: b[0])
                start = loop_env[var]
                step = 1.0
                if (isinstance(stmt.step, ast.Assign)
                        and stmt.step.op in ("+=",)):
                    try:
                        step = self.eval_expr(stmt.step.value, loop_env)
                    except _Unknown:
                        step = 1.0
                trips = max((bound - start) / max(step, 1.0), 0.0)
                if op == "<=":
                    trips += 1
                # Representative midpoint for the loop variable inside the body.
                loop_env[var] = start + max(trips - 1, 0.0) / 2.0 * step
                return trips, loop_env
            except _Unknown:
                pass
        return float(DEFAULT_WHILE_TRIPS), loop_env

    def _eval_condition(self, cond: ast.Expr, env: Dict[str, float]):
        """Statically evaluate a boolean condition, or None if unknown."""
        if isinstance(cond, ast.Binary):
            if cond.op == "&&":
                left = self._eval_condition(cond.left, env)
                right = self._eval_condition(cond.right, env)
                if left is False or right is False:
                    return False
                if left is True and right is True:
                    return True
                return None
            if cond.op == "||":
                left = self._eval_condition(cond.left, env)
                right = self._eval_condition(cond.right, env)
                if left is True or right is True:
                    return True
                if left is False and right is False:
                    return False
                return None
            if cond.op in ("<", "<=", ">", ">=", "==", "!="):
                try:
                    left = self.eval_expr(cond.left, env)
                    right = self.eval_expr(cond.right, env)
                except _Unknown:
                    return None
                return {
                    "<": left < right, "<=": left <= right,
                    ">": left > right, ">=": left >= right,
                    "==": left == right, "!=": left != right,
                }[cond.op]
        return None

    def _is_data_dependent(self, cond: ast.Expr, env: Dict[str, float]) -> bool:
        """A condition is data-dependent if it reads array contents or RNG state."""
        for node in _walk(cond):
            if isinstance(node, ast.Index):
                return True
            if isinstance(node, ast.Var) and node.name not in env \
                    and node.name not in self.params:
                # Reads a mutable local computed from data.
                typ = self.info.symbols.get(node.name)
                if typ is not None and typ.base == "float":
                    return True
        return False


def _walk(expr: ast.Expr):
    yield expr
    if isinstance(expr, ast.Binary):
        yield from _walk(expr.left)
        yield from _walk(expr.right)
    elif isinstance(expr, ast.Unary):
        yield from _walk(expr.operand)
    elif isinstance(expr, ast.Call):
        for a in expr.args:
            yield from _walk(a)
    elif isinstance(expr, ast.Index):
        for i in expr.indices:
            yield from _walk(i)


def analyze_cost(info_or_kernel, params: Dict[str, Any]) -> KernelAnalysis:
    """Statically analyze a kernel with scalar parameters bound.

    ``params`` maps every scalar parameter name to its value for the launch
    being modeled (e.g. ``{"n": 32768, "m": 32768, "p": 32768}``).
    """
    info = info_or_kernel if isinstance(info_or_kernel, KernelInfo) \
        else analyze(info_or_kernel)
    missing = [p.name for p in info.kernel.scalar_params if p.name not in params]
    if missing:
        raise ValueError(f"analyze_cost: missing parameter values for {missing}")
    walker = _CostWalker(info, params)
    env = {name: float(value) for name, value in params.items()}
    walker.stmt_cost(info.kernel.body, env, 1.0, False, 0)
    divergence = (walker.divergent_flops / walker.flops) if walker.flops > 0 else 0.0
    footprints: Dict[str, float] = {}
    for p in info.kernel.array_params:
        size = float(p.type.element_bytes)
        try:
            for dim in p.type.dims:
                size *= walker.eval_expr(dim, env)
            footprints[p.name] = size
        except _Unknown:
            pass
    return KernelAnalysis(
        flops=walker.flops,
        global_bytes=walker.global_bytes,
        local_bytes=walker.local_bytes,
        divergence=min(divergence, 1.0),
        parallelism=walker.top_parallelism if walker._saw_top_foreach else 1.0,
        global_bytes_by_array=walker.global_by_array,
        array_footprints=footprints,
    )
