"""The stepwise-refinement feedback engine.

MCL's methodology (Sec. II-B): programmers pick a hardware description,
receive compiler feedback, and modify the kernel until no feedback remains;
then the compiler translates the kernel one level down, where it can say
more because it knows more about the hardware.  This module produces that
feedback by inspecting the kernel AST against the knowledge available at its
level:

* ``accelerator`` — working set must fit the finite device memory.
* ``gpu`` — arrays re-read inside sequential loops should be staged into
  ``local`` memory (tiling); the innermost-varying index should be the last
  array dimension (coalescing).
* ``nvidia`` / ``amd`` — data-dependent control flow diverges warps /
  wavefronts.
* ``mic`` — express the innermost parallelism with the ``vectors`` unit or
  the 512-bit VPU stays idle.

A kernel version is *optimized* for a level when it has no unresolved
feedback at that level; the efficiency model (:mod:`.efficiency`) turns the
remaining items into roofline efficiency factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ..mcpl import ast
from ..mcpl.semantics import KernelInfo, analyze

__all__ = ["FeedbackItem", "get_feedback", "is_optimized_for"]


@dataclass(frozen=True)
class FeedbackItem:
    """One piece of compiler feedback."""

    level: str    #: hardware-description level that produced the item
    code: str     #: stable identifier, e.g. "use-local-memory"
    message: str

    def __str__(self) -> str:
        return f"[{self.level}] {self.code}: {self.message}"


def _walk_stmts(stmt: ast.Stmt):
    yield stmt
    if isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            yield from _walk_stmts(s)
    elif isinstance(stmt, ast.Foreach):
        yield from _walk_stmts(stmt.body)
    elif isinstance(stmt, ast.For):
        yield from _walk_stmts(stmt.body)
    elif isinstance(stmt, ast.If):
        yield from _walk_stmts(stmt.then)
        if stmt.orelse is not None:
            yield from _walk_stmts(stmt.orelse)
    elif isinstance(stmt, ast.While):
        yield from _walk_stmts(stmt.body)


def _walk_exprs(stmt: ast.Stmt):
    def from_expr(expr):
        if expr is None:
            return
        yield expr
        if isinstance(expr, ast.Binary):
            yield from from_expr(expr.left)
            yield from from_expr(expr.right)
        elif isinstance(expr, ast.Unary):
            yield from from_expr(expr.operand)
        elif isinstance(expr, ast.Call):
            for a in expr.args:
                yield from from_expr(a)
        elif isinstance(expr, ast.Index):
            for i in expr.indices:
                yield from from_expr(i)

    for s in _walk_stmts(stmt):
        if isinstance(s, ast.VarDecl):
            yield from from_expr(s.init)
        elif isinstance(s, ast.Assign):
            yield from from_expr(s.target)
            yield from from_expr(s.value)
        elif isinstance(s, (ast.If, ast.While)):
            yield from from_expr(s.cond)
        elif isinstance(s, ast.For):
            yield from from_expr(s.cond)
        elif isinstance(s, ast.Foreach):
            yield from from_expr(s.count)
        elif isinstance(s, ast.ExprStmt):
            yield from from_expr(s.expr)
        elif isinstance(s, ast.Return):
            yield from from_expr(s.value)


def _vars_of(expr: ast.Expr) -> Set[str]:
    out: Set[str] = set()

    def rec(e):
        if isinstance(e, ast.Var):
            out.add(e.name)
        elif isinstance(e, ast.Binary):
            rec(e.left)
            rec(e.right)
        elif isinstance(e, ast.Unary):
            rec(e.operand)
        elif isinstance(e, ast.Call):
            for a in e.args:
                rec(a)
        elif isinstance(e, ast.Index):
            for i in e.indices:
                rec(i)

    rec(expr)
    return out


def _loop_vars(info: KernelInfo) -> Set[str]:
    """Variables of sequential for loops (candidates for data reuse)."""
    out: Set[str] = set()
    for s in _walk_stmts(info.kernel.body):
        if isinstance(s, ast.For) and isinstance(s.init, ast.VarDecl):
            out.add(s.init.name)
    return out


def _reused_global_arrays(info: KernelInfo) -> Set[str]:
    """Global arrays indexed by a sequential loop variable.

    Each foreach work-item re-reads them as the loop runs, so staging them
    into local memory (a tile) removes redundant global traffic.
    """
    loops = _loop_vars(info)
    if not loops:
        return set()
    reused: Set[str] = set()
    for expr in _walk_exprs(info.kernel.body):
        if isinstance(expr, ast.Index) and expr.array not in info.local_arrays:
            for idx in expr.indices:
                if _vars_of(idx) & loops:
                    reused.add(expr.array)
    return reused


def _uncoalesced_arrays(info: KernelInfo) -> Set[str]:
    """Multi-dim global arrays whose *last* index does not vary fastest.

    Heuristic: the innermost foreach variable should appear in the last
    index position; if it appears only in an earlier position, adjacent
    work-items touch strided addresses.
    """
    if not info.foreachs:
        return set()
    innermost = max(info.foreachs, key=lambda f: f.depth)
    tvar = innermost.stmt.var
    bad: Set[str] = set()
    for expr in _walk_exprs(info.kernel.body):
        if (isinstance(expr, ast.Index) and len(expr.indices) >= 2
                and expr.array not in info.local_arrays):
            positions = [i for i, idx in enumerate(expr.indices)
                         if tvar in _vars_of(idx)]
            if positions and max(positions) != len(expr.indices) - 1:
                bad.add(expr.array)
    return bad


#: reused arrays below this size fit comfortably in L1/registers
LOCAL_WORTHWHILE_BYTES = 16 * 1024


def _filter_small_arrays(info: KernelInfo, arrays: Set[str],
                         params: Dict[str, Any]) -> Set[str]:
    from .analysis import _CostWalker, _Unknown
    walker = _CostWalker(info, params)
    env = {k: float(v) for k, v in params.items()}
    out: Set[str] = set()
    for name in arrays:
        typ = info.symbols.get(name)
        if typ is None or not typ.is_array:
            continue
        size = float(typ.element_bytes)
        try:
            for dim in typ.dims:
                size *= walker.eval_expr(dim, env)
        except _Unknown:
            out.add(name)  # unknown size: keep the feedback
            continue
        if size > LOCAL_WORTHWHILE_BYTES:
            out.add(name)
    return out


def _has_data_dependent_flow(info: KernelInfo) -> bool:
    for s in _walk_stmts(info.kernel.body):
        if isinstance(s, (ast.If, ast.While)) and s.cond is not None:
            for e in _ExprIter(s.cond):
                if isinstance(e, ast.Index):
                    return True
    return False


class _ExprIter:
    def __init__(self, expr: ast.Expr):
        self.expr = expr

    def __iter__(self):
        stack = [self.expr]
        while stack:
            e = stack.pop()
            yield e
            if isinstance(e, ast.Binary):
                stack += [e.left, e.right]
            elif isinstance(e, ast.Unary):
                stack.append(e.operand)
            elif isinstance(e, ast.Call):
                stack += e.args
            elif isinstance(e, ast.Index):
                stack += e.indices


def get_feedback(info_or_kernel, params: Optional[Dict[str, Any]] = None
                 ) -> List[FeedbackItem]:
    """Compute the compiler feedback for a kernel at its level.

    ``params`` (scalar parameter values) enables the memory-footprint check
    at level ``accelerator`` and below; without them that check is skipped.
    """
    info = info_or_kernel if isinstance(info_or_kernel, KernelInfo) \
        else analyze(info_or_kernel)
    hd = info.description
    levels = hd.level_names()
    items: List[FeedbackItem] = []

    # accelerator: finite device memory.
    if "accelerator" in levels and params is not None:
        main = hd.memory_space("main")
        if main is not None and main.capacity_bytes is not None:
            footprint = 0.0
            evaluatable = True
            for p in info.kernel.array_params:
                size = float(p.type.element_bytes)
                for dim in p.type.dims:
                    try:
                        from .analysis import _CostWalker
                        size *= _CostWalker(info, params).eval_expr(
                            dim, {k: float(v) for k, v in params.items()})
                    except Exception:
                        evaluatable = False
                if evaluatable:
                    footprint += size
            if evaluatable and footprint > main.capacity_bytes:
                items.append(FeedbackItem(
                    "accelerator", "working-set-too-large",
                    f"parameters occupy {footprint / 2 ** 30:.2f} GiB but device "
                    f"memory is {main.capacity_bytes / 2 ** 30:.2f} GiB; "
                    "divide the problem further before the leaf"))

    # gpu: local-memory staging and coalescing.
    if "gpu" in levels:
        reused = _reused_global_arrays(info)
        if reused and params is not None:
            # Tiny reused arrays (a raytracer's scene) live in registers/L1
            # anyway; staging them buys nothing.  Filter by size when the
            # compiler knows the parameter values.
            reused = _filter_small_arrays(info, reused, params)
        if reused and not info.local_arrays:
            items.append(FeedbackItem(
                "gpu", "use-local-memory",
                f"arrays {sorted(reused)} are re-read inside sequential loops "
                "by every thread; stage tiles into `local` memory"))
        bad = _uncoalesced_arrays(info)
        if bad:
            items.append(FeedbackItem(
                "gpu", "uncoalesced-access",
                f"arrays {sorted(bad)}: innermost threads access strided "
                "addresses; make the last index the thread index"))

    # nvidia / amd: SIMD divergence.
    if ("nvidia" in levels or "amd" in levels) and _has_data_dependent_flow(info):
        unit = "warps (32 threads)" if "nvidia" in levels else "wavefronts (64 lanes)"
        items.append(FeedbackItem(
            "nvidia" if "nvidia" in levels else "amd", "divergent-control-flow",
            f"data-dependent branches serialize {unit}; restructure or accept "
            "the penalty (algorithmic property)"))

    # mic: vectorization.
    if "mic" in levels and "vectors" not in info.units_used:
        items.append(FeedbackItem(
            "mic", "vectorize-inner-loop",
            "no `vectors` parallelism expressed; the 512-bit VPU stays idle — "
            "map the innermost foreach onto `vectors`"))

    return items


def is_optimized_for(info_or_kernel, params: Optional[Dict[str, Any]] = None) -> bool:
    """True when the kernel has no unresolved feedback at its level."""
    return not get_feedback(info_or_kernel, params)
