"""OpenCL-C code generation and launch-configuration derivation.

MCL generates OpenCL code for each leaf hardware description, plus glue code
that calls the kernels with the right work-group / work-item configuration
(Sec. III-A).  This module renders a (translated, leaf-level) kernel AST to
OpenCL C source text and derives the NDRange configuration from the kernel's
``foreach`` structure and its parameter values — different devices get
different granularities (the Xeon Phi's chunked loops produce far fewer,
coarser work-items than a GPU's).

The generated source is real OpenCL C and structurally checkable, but in
this reproduction it is never fed to an OpenCL driver; correctness of the
kernel semantics is validated via the MCPL interpreter instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..mcpl import ast
from ..mcpl.semantics import KernelInfo, analyze

__all__ = ["generate_opencl", "derive_launch_config", "LaunchConfig"]


@dataclass(frozen=True)
class LaunchConfig:
    """OpenCL NDRange configuration for one kernel launch."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]

    @property
    def work_items(self) -> int:
        out = 1
        for g in self.global_size:
            out *= g
        return out

    @property
    def work_groups(self) -> int:
        out = 1
        for g, l in zip(self.global_size, self.local_size):
            out *= max(g // max(l, 1), 1)
        return out


# Units that map to OpenCL group/local dimensions.
_GROUP_UNITS = {"blocks", "cores"}
_LOCAL_UNITS = {"threads"}
_SIMD_UNITS = {"warps", "wavefronts", "vectors"}


class _OpenClWriter:
    def __init__(self, info: KernelInfo):
        self.info = info
        self.lines: List[str] = []
        self.indent = 0
        #: foreach nest -> OpenCL dimension bookkeeping
        self.dim_counter = {"group": 0, "local": 0, "global": 0}

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text)

    # -- types / names -------------------------------------------------------
    def render_signature(self) -> str:
        kernel = self.info.kernel
        parts = []
        for p in kernel.params:
            if p.type.is_array:
                parts.append(f"__global {p.type.base}* {p.name}")
            else:
                parts.append(f"{p.type.base} {p.name}")
        return f"__kernel void {kernel.name}({', '.join(parts)})"

    def linearize(self, node: ast.Index) -> str:
        """Render a multi-dim access as linearized pointer arithmetic."""
        typ = self.info.symbols[node.array]
        dims = typ.dims
        expr = self.render_expr(node.indices[0])
        for axis in range(1, len(dims)):
            expr = f"({expr}) * ({self.render_expr(dims[axis])}) + " \
                   f"({self.render_expr(node.indices[axis])})"
        return f"{node.array}[{expr}]"

    # -- expressions -----------------------------------------------------------
    def render_expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.FloatLit):
            return f"{expr.value!r}f"
        if isinstance(expr, ast.Var):
            return expr.name
        if isinstance(expr, ast.Index):
            return self.linearize(expr)
        if isinstance(expr, ast.Binary):
            return f"({self.render_expr(expr.left)} {expr.op} {self.render_expr(expr.right)})"
        if isinstance(expr, ast.Unary):
            return f"({expr.op}{self.render_expr(expr.operand)})"
        if isinstance(expr, ast.Call):
            if expr.name == "barrier":
                return "barrier(CLK_LOCAL_MEM_FENCE)"
            args = ", ".join(self.render_expr(a) for a in expr.args)
            name = {"int_cast": "(int)", "float_cast": "(float)",
                    "fabs": "fabs", "rsqrt": "rsqrt"}.get(expr.name, expr.name)
            if name.startswith("("):
                return f"{name}({args})"
            return f"{name}({args})"
        raise ValueError(f"cannot render {expr!r}")  # pragma: no cover

    # -- statements ---------------------------------------------------------------
    def render_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.emit("{")
            self.indent += 1
            for s in stmt.stmts:
                self.render_stmt(s)
            self.indent -= 1
            self.emit("}")
        elif isinstance(stmt, ast.VarDecl):
            self.render_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            target = (stmt.target.name if isinstance(stmt.target, ast.Var)
                      else self.linearize(stmt.target))
            self.emit(f"{target} {stmt.op} {self.render_expr(stmt.value)};")
        elif isinstance(stmt, ast.Foreach):
            self.render_foreach(stmt)
        elif isinstance(stmt, ast.For):
            init = self.render_inline(stmt.init)
            step = self.render_inline(stmt.step)
            self.emit(f"for ({init}; {self.render_expr(stmt.cond)}; {step})")
            self.render_stmt(_as_block(stmt.body))
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({self.render_expr(stmt.cond)})")
            self.render_stmt(_as_block(stmt.then))
            if stmt.orelse is not None:
                self.emit("else")
                self.render_stmt(_as_block(stmt.orelse))
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({self.render_expr(stmt.cond)})")
            self.render_stmt(_as_block(stmt.body))
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {self.render_expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.emit("break;")
        elif isinstance(stmt, ast.Continue):
            self.emit("continue;")
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(f"{self.render_expr(stmt.expr)};")
        else:  # pragma: no cover
            raise ValueError(f"cannot render {stmt!r}")

    def render_inline(self, stmt: ast.Stmt) -> str:
        if isinstance(stmt, ast.VarDecl):
            init = f" = {self.render_expr(stmt.init)}" if stmt.init is not None else ""
            return f"{stmt.type.base} {stmt.name}{init}"
        if isinstance(stmt, ast.Assign):
            target = (stmt.target.name if isinstance(stmt.target, ast.Var)
                      else self.linearize(stmt.target))
            return f"{target} {stmt.op} {self.render_expr(stmt.value)}"
        raise ValueError(f"cannot inline {stmt!r}")  # pragma: no cover

    def render_decl(self, decl: ast.VarDecl) -> None:
        if decl.type.is_array:
            size = " * ".join(f"({self.render_expr(d)})" for d in decl.type.dims)
            qual = "__local " if decl.qualifier == "local" else ""
            self.emit(f"{qual}{decl.type.base} {decl.name}[{size}];")
        else:
            init = f" = {self.render_expr(decl.init)}" if decl.init is not None else ""
            self.emit(f"{decl.type.base} {decl.name}{init};")

    def render_foreach(self, stmt: ast.Foreach) -> None:
        """Map a foreach onto OpenCL work-item builtins.

        ``blocks``/``cores`` become ``get_group_id``, ``threads`` become
        ``get_local_id``, SIMD units (``vectors``) stay as sequential loops
        the device compiler vectorizes.
        """
        unit = stmt.unit
        if unit in _GROUP_UNITS:
            dim = self.dim_counter["group"]
            self.dim_counter["group"] += 1
            self.emit(f"int {stmt.var} = get_group_id({dim});  "
                      f"/* foreach {stmt.var} in {unit} */")
        elif unit in _LOCAL_UNITS and self.dim_counter["group"] > 0:
            dim = self.dim_counter["local"]
            self.dim_counter["local"] += 1
            self.emit(f"int {stmt.var} = get_local_id({dim});  "
                      f"/* foreach {stmt.var} in {unit} */")
        elif unit in _SIMD_UNITS:
            self.emit(f"#pragma unroll  /* {unit}: SIMD */")
            self.emit(f"for (int {stmt.var} = 0; {stmt.var} < "
                      f"{self.render_expr(stmt.count)}; {stmt.var}++)")
            self.render_stmt(_as_block(stmt.body))
            return
        else:
            dim = self.dim_counter["global"]
            self.dim_counter["global"] += 1
            self.emit(f"int {stmt.var} = get_global_id({dim});  "
                      f"/* foreach {stmt.var} in {unit} */")
            guard = f"if ({stmt.var} < {self.render_expr(stmt.count)})"
            self.emit(guard)
            self.render_stmt(_as_block(stmt.body))
            return
        self.render_stmt(_as_block(stmt.body))


def _as_block(stmt: ast.Stmt) -> ast.Block:
    return stmt if isinstance(stmt, ast.Block) else ast.Block(stmts=[stmt])


def generate_opencl(info_or_kernel) -> str:
    """Render a kernel as OpenCL C source text."""
    info = info_or_kernel if isinstance(info_or_kernel, KernelInfo) \
        else analyze(info_or_kernel)
    writer = _OpenClWriter(info)
    writer.emit(f"// generated by MCL from level '{info.kernel.level}'")
    writer.emit(writer.render_signature())
    writer.render_stmt(info.kernel.body)
    return "\n".join(writer.lines) + "\n"


def derive_launch_config(info_or_kernel, params: Dict[str, Any],
                         max_local: int = 256) -> LaunchConfig:
    """Derive the NDRange from the foreach structure and parameter values.

    Group-unit foreachs define the number of work-groups per dimension,
    local-unit foreachs the work-group size; a bare global ``threads``
    foreach (untranslated kernels) becomes a dimension of its own with a
    default work-group size.  This is the glue MCL generates so "different
    devices get their different granularity needs" (Sec. III-A).
    """
    info = info_or_kernel if isinstance(info_or_kernel, KernelInfo) \
        else analyze(info_or_kernel)
    env = {name: float(v) for name, v in params.items()}
    from .analysis import _CostWalker, _Unknown  # reuse the static evaluator
    walker = _CostWalker(info, params)

    groups: List[int] = []
    locals_: List[int] = []
    globals_: List[int] = []
    for fe in info.foreachs:
        try:
            count = int(walker.eval_expr(fe.stmt.count, env))
        except _Unknown:
            count = 1
        env[fe.stmt.var] = 0.0
        if fe.unit in _GROUP_UNITS:
            groups.append(max(count, 1))
        elif fe.unit in _LOCAL_UNITS and groups:
            locals_.append(max(count, 1))
        elif fe.unit in _SIMD_UNITS:
            continue
        else:
            globals_.append(max(count, 1))

    if groups:
        local = locals_ + [1] * (len(groups) - len(locals_))
        global_size = tuple(g * l for g, l in zip(groups, local[:len(groups)]))
        return LaunchConfig(global_size=global_size,
                            local_size=tuple(local[:len(groups)]))
    if globals_:
        dims = globals_[:3]
        local = []
        for i, g in enumerate(dims):
            local.append(min(max_local if i == len(dims) - 1 else 1, g))
        return LaunchConfig(global_size=tuple(dims), local_size=tuple(local))
    return LaunchConfig(global_size=(1,), local_size=(1,))
