"""Efficiency model: from compiler feedback to roofline efficiencies.

Bridges the MCL compiler and the device simulator: a kernel version's
*unresolved feedback items* (at the target device's leaf level) determine
which fraction of the device's peak compute/bandwidth it can achieve, and
how strongly divergence penalizes it.  Calibration constants are chosen so
the seven devices reproduce the relative behaviour the paper reports —
e.g. the Xeon Phi running a compute-bound kernel about 4× slower than a K20
(Sec. V-C), and optimization having almost no effect on the divergence-bound
raytracer (Sec. V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ...devices.specs import DeviceSpec
from ..hdl.library import get_description
from ..mcpl.semantics import KernelInfo, analyze
from .analysis import KernelAnalysis
from .feedback import get_feedback

__all__ = ["EfficiencyEstimate", "estimate_efficiency",
           "BASE_COMPUTE_EFF", "BASE_MEMORY_EFF"]

#: fraction of peak flops a feedback-clean kernel achieves via OpenCL
BASE_COMPUTE_EFF = 0.55
#: fraction of peak bandwidth a coalesced streaming kernel achieves
BASE_MEMORY_EFF = 0.65

#: multiplicative penalties for unresolved feedback items as
#: (memory_factor, compute_factor).  Unstaged inner loops are latency-bound
#: (repeated cache hits stall the pipeline), so they also cut the achievable
#: compute rate, not only bandwidth.
_PENALTIES = {
    "use-local-memory": (0.85, 0.35),
    "uncoalesced-access": (0.25, 0.5),
    "vectorize-inner-loop": (1.0, 0.12),  # scalar code on a 16-wide VPU
}

#: device-kind compute discount: OpenCL on the in-order Xeon Phi cores is
#: known to be far from peak even for tuned kernels; this constant makes an
#: optimized compute-bound kernel on the Phi ~4x slower than on a K20,
#: matching Sec. V-C.
_KIND_COMPUTE_FACTOR = {"gpu": 1.0, "accelerator": 0.45}

#: divergence turns into a serialization factor of up to this multiple
_MAX_DIVERGENCE_FACTOR = 6.0


@dataclass(frozen=True)
class EfficiencyEstimate:
    """Roofline efficiency factors for one kernel version on one device."""

    compute_efficiency: float
    memory_efficiency: float
    divergence_factor: float
    unresolved: tuple   #: codes of unresolved feedback items


def estimate_efficiency(info_or_kernel, analysis: KernelAnalysis,
                        spec: DeviceSpec,
                        params: Optional[Dict[str, Any]] = None
                        ) -> EfficiencyEstimate:
    """Estimate achievable efficiencies for a kernel version on a device.

    The kernel is judged against the *device's* full hardware-description
    ancestry: a ``perfect``-level kernel evaluated for a GTX480 receives the
    gpu/nvidia-level feedback it never addressed, and is penalized for it.
    """
    info = info_or_kernel if isinstance(info_or_kernel, KernelInfo) \
        else analyze(info_or_kernel)
    leaf = get_description(spec.name)
    # Re-analyze the same AST at the leaf level so every level's feedback
    # applies.  (The kernel must be valid there; levels only add detail.)
    leaf_info = analyze(info.kernel, leaf)
    items = get_feedback(leaf_info, params)

    compute_eff = BASE_COMPUTE_EFF * _KIND_COMPUTE_FACTOR.get(spec.kind, 1.0)
    memory_eff = BASE_MEMORY_EFF
    unresolved = []
    for item in items:
        unresolved.append(item.code)
        penalty = _PENALTIES.get(item.code)
        if penalty is None:
            continue
        mem_factor, compute_factor = penalty
        memory_eff *= mem_factor
        compute_eff *= compute_factor

    divergence_factor = 1.0 + (_MAX_DIVERGENCE_FACTOR - 1.0) * min(
        analysis.divergence, 1.0)

    return EfficiencyEstimate(
        compute_efficiency=max(min(compute_eff, 1.0), 1e-3),
        memory_efficiency=max(min(memory_eff, 1.0), 1e-3),
        divergence_factor=divergence_factor,
        unresolved=tuple(unresolved),
    )
