"""Level-to-level kernel translation.

MCL can automatically translate a kernel written for the programming
abstractions of hardware description *x* to the abstractions of a child
level *y* (Sec. III-A).  The mapping becomes more precise as the hardware
description gains detail, and — per the paper — *the compiler does not apply
optimizations during translation*: the transformations below only
restructure parallelism, never change the computation.

Two structural translations exist in the built-in hierarchy:

* entering ``gpu``: the outermost ``threads`` foreach is decomposed into a
  ``blocks`` × ``threads`` nest with a bounds guard,
* entering ``mic``: the outermost ``threads`` foreach is decomposed into
  ``cores`` × ``threads`` with a sequential chunk loop per hardware thread —
  the Xeon Phi needs much more coarse-grained parallelism than a GPU
  (Sec. III-A).

All other edges (gpu→nvidia→fermi→gtx480, ...) relabel the kernel only; the
added value of those levels is sharper feedback and device parameters.
"""

from __future__ import annotations

import copy
from typing import List

from ..hdl.ast import HardwareDescription
from ..hdl.library import get_description
from ..mcpl import ast
from ..mcpl.semantics import analyze

__all__ = ["translate", "TranslationError", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 256


class TranslationError(ValueError):
    """Raised when a kernel cannot be translated to the requested level."""


def _path_between(src: HardwareDescription, dst: HardwareDescription
                  ) -> List[HardwareDescription]:
    """Descriptions from ``src`` (exclusive) down to ``dst`` (inclusive)."""
    chain = dst.ancestry()
    names = [hd.name for hd in chain]
    if src.name not in names:
        raise TranslationError(
            f"{dst.name!r} is not a descendant of {src.name!r}; "
            f"cannot translate downward")
    return chain[names.index(src.name) + 1:]


def _int_expr(value: int) -> ast.IntLit:
    return ast.IntLit(value=value)


def _ceil_div(count: ast.Expr, block: int) -> ast.Expr:
    """AST for ``(count + block - 1) / block``."""
    return ast.Binary(
        op="/",
        left=ast.Binary(op="+", left=copy.deepcopy(count),
                        right=_int_expr(block - 1)),
        right=_int_expr(block),
    )


def _fresh_name(base: str, taken: set) -> str:
    if base not in taken:
        taken.add(base)
        return base
    i = 2
    while f"{base}{i}" in taken:
        i += 1
    taken.add(f"{base}{i}")
    return f"{base}{i}"


def _names_in(kernel: ast.Kernel) -> set:
    names = {p.name for p in kernel.params}

    def rec(stmt):
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                rec(s)
        elif isinstance(stmt, ast.VarDecl):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Foreach):
            names.add(stmt.var)
            rec(stmt.body)
        elif isinstance(stmt, ast.For):
            rec(stmt.init)
            rec(stmt.body)
        elif isinstance(stmt, ast.If):
            rec(stmt.then)
            if stmt.orelse is not None:
                rec(stmt.orelse)
        elif isinstance(stmt, ast.While):
            rec(stmt.body)

    rec(kernel.body)
    return names


def _to_gpu(kernel: ast.Kernel, hd: HardwareDescription) -> ast.Kernel:
    """Decompose the outermost ``threads`` foreach into blocks × threads."""
    kernel = copy.deepcopy(kernel)
    block = int(hd.param("max_block_threads", DEFAULT_BLOCK_SIZE) or DEFAULT_BLOCK_SIZE)
    block = min(block, DEFAULT_BLOCK_SIZE)
    taken = _names_in(kernel)

    def transform(stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            stmt.stmts = [transform(s) for s in stmt.stmts]
            return stmt
        if isinstance(stmt, ast.Foreach) and stmt.unit == "threads":
            bvar = _fresh_name("mcl_b", taken)
            tvar = _fresh_name("mcl_t", taken)
            recover = ast.VarDecl(
                type=ast.Type("int"), name=stmt.var,
                init=ast.Binary(
                    op="+",
                    left=ast.Binary(op="*", left=ast.Var(name=bvar),
                                    right=_int_expr(block)),
                    right=ast.Var(name=tvar)),
            )
            # The last block runs only the remaining threads:
            # min(count - b*block, block).  Emitting the exact count (rather
            # than a full block with a bounds guard) keeps the static cost
            # analysis exact for partially filled blocks.
            remaining = ast.Call(
                name="min",
                args=[ast.Binary(op="-", left=copy.deepcopy(stmt.count),
                                 right=ast.Binary(op="*",
                                                  left=ast.Var(name=bvar),
                                                  right=_int_expr(block))),
                      _int_expr(block)])
            inner = ast.Foreach(
                var=tvar, count=remaining, unit="threads",
                body=ast.Block(stmts=[recover, stmt.body]))
            return ast.Foreach(
                var=bvar, count=_ceil_div(stmt.count, block), unit="blocks",
                body=ast.Block(stmts=[inner]))
        return stmt

    # Only the outermost foreach is decomposed; inner `threads` foreachs keep
    # their unit (it exists on level gpu, nested inside blocks).
    new_stmts = []
    transformed = False
    for s in kernel.body.stmts:
        if not transformed and isinstance(s, ast.Foreach) and s.unit == "threads":
            new_stmts.append(transform(s))
            transformed = True
        else:
            new_stmts.append(s)
    kernel.body.stmts = new_stmts
    return kernel


def _to_mic(kernel: ast.Kernel, hd: HardwareDescription) -> ast.Kernel:
    """Decompose the outermost ``threads`` foreach into cores × threads chunks."""
    kernel = copy.deepcopy(kernel)
    cores = int(hd.par_unit("cores").max_count or 60)
    hw_threads = int(hd.par_unit("threads").max_count or 4)
    taken = _names_in(kernel)

    def transform(stmt: ast.Foreach) -> ast.Stmt:
        cvar = _fresh_name("mcl_c", taken)
        tvar = _fresh_name("mcl_t", taken)
        wvar = _fresh_name("mcl_w", taken)   # linear hardware-thread id
        chunkvar = _fresh_name("mcl_chunk", taken)
        total = cores * hw_threads
        # int mcl_w = c * hw_threads + t;
        wdecl = ast.VarDecl(
            type=ast.Type("int"), name=wvar,
            init=ast.Binary(
                op="+",
                left=ast.Binary(op="*", left=ast.Var(name=cvar),
                                right=_int_expr(hw_threads)),
                right=ast.Var(name=tvar)))
        # int chunk = (count + total - 1) / total;
        chunkdecl = ast.VarDecl(
            type=ast.Type("int"), name=chunkvar,
            init=_ceil_div(stmt.count, total))
        # for (i = w*chunk; i < min-like guard; i++)
        init = ast.VarDecl(
            type=ast.Type("int"), name=stmt.var,
            init=ast.Binary(op="*", left=ast.Var(name=wvar),
                            right=ast.Var(name=chunkvar)))
        cond = ast.Binary(
            op="&&",
            left=ast.Binary(op="<", left=ast.Var(name=stmt.var),
                            right=ast.Binary(
                                op="*",
                                left=ast.Binary(op="+", left=ast.Var(name=wvar),
                                                right=_int_expr(1)),
                                right=ast.Var(name=chunkvar))),
            right=ast.Binary(op="<", left=ast.Var(name=stmt.var),
                             right=copy.deepcopy(stmt.count)))
        step = ast.Assign(target=ast.Var(name=stmt.var), op="+=",
                          value=_int_expr(1))
        loop = ast.For(init=init, cond=cond, step=step, body=stmt.body)
        inner = ast.Foreach(
            var=tvar, count=_int_expr(hw_threads), unit="threads",
            body=ast.Block(stmts=[wdecl, chunkdecl, loop]))
        return ast.Foreach(var=cvar, count=_int_expr(cores), unit="cores",
                           body=ast.Block(stmts=[inner]))

    new_stmts = []
    transformed = False
    for s in kernel.body.stmts:
        if not transformed and isinstance(s, ast.Foreach) and s.unit == "threads":
            new_stmts.append(transform(s))
            transformed = True
        else:
            new_stmts.append(s)
    kernel.body.stmts = new_stmts
    return kernel


def translate(kernel: ast.Kernel, target_level: str) -> ast.Kernel:
    """Translate a kernel to a descendant hardware description.

    The result is semantically equivalent (validated by re-running semantic
    analysis at the target level) and carries ``target_level`` as its level.
    """
    src_hd = get_description(kernel.level)
    dst_hd = get_description(target_level)
    if src_hd.name == dst_hd.name:
        return copy.deepcopy(kernel)
    path = _path_between(src_hd, dst_hd)
    current = copy.deepcopy(kernel)
    for hd in path:
        if hd.name == "gpu":
            current = _to_gpu(current, hd)
        elif hd.name == "mic":
            current = _to_mic(current, hd)
        current.level = hd.name
    analyze(current, dst_hd)  # re-check at the target level
    return current
