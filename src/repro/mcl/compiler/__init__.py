"""The MCL compiler: analysis, feedback, translation, codegen, efficiency."""

from .analysis import DEFAULT_WHILE_TRIPS, KernelAnalysis, analyze_cost
from .codegen import LaunchConfig, derive_launch_config, generate_opencl
from .efficiency import EfficiencyEstimate, estimate_efficiency
from .feedback import FeedbackItem, get_feedback, is_optimized_for
from .translate import TranslationError, translate

__all__ = [
    "KernelAnalysis",
    "analyze_cost",
    "DEFAULT_WHILE_TRIPS",
    "FeedbackItem",
    "get_feedback",
    "is_optimized_for",
    "translate",
    "TranslationError",
    "generate_opencl",
    "derive_launch_config",
    "LaunchConfig",
    "EfficiencyEstimate",
    "estimate_efficiency",
]
