"""Recursive-descent parser for MCPL.

Grammar (simplified)::

    kernel   := IDENT type IDENT '(' [param (',' param)*] ')' block
    param    := type IDENT
    type     := ('void'|'int'|'float') ['[' expr (',' expr)* ']']
    block    := '{' stmt* '}'
    stmt     := block | decl | assign | foreach | for | if | while
              | return | break | continue | exprstmt
    foreach  := 'foreach' '(' ('int')? IDENT 'in' expr IDENT ')' stmt
    for      := 'for' '(' simple ';' expr ';' simple ')' stmt

Expressions use C precedence, including bit operations (the raytracer's
xorshift RNG needs them).
"""

from __future__ import annotations

from typing import List

from . import ast
from .lexer import McplSyntaxError, Token, tokenize

__all__ = ["parse_kernel", "parse_kernels", "McplSyntaxError"]


_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>="}

# Binary operator precedence levels, weakest first.
_BIN_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind != "eof":
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise McplSyntaxError(f"expected {text!r}, got {tok.text!r}", tok.line, tok.col)
        return tok

    def expect_ident(self) -> Token:
        tok = self.next()
        if tok.kind != "ident":
            raise McplSyntaxError(f"expected identifier, got {tok.text!r}", tok.line, tok.col)
        return tok

    # -- kernel -------------------------------------------------------------
    def parse_kernel(self) -> ast.Kernel:
        level = self.expect_ident().text
        ret = self.parse_type()
        name = self.expect_ident().text
        self.expect("(")
        params: List[ast.Param] = []
        if not self.accept(")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect_ident().text
                params.append(ast.Param(ptype, pname))
                if self.accept(")"):
                    break
                self.expect(",")
        body = self.parse_block()
        return ast.Kernel(level=level, return_type=ret, name=name,
                          params=params, body=body)

    def parse_type(self) -> ast.Type:
        tok = self.next()
        if tok.text not in ("void", "int", "float"):
            raise McplSyntaxError(f"expected type, got {tok.text!r}", tok.line, tok.col)
        dims: List[ast.Expr] = []
        if self.accept("["):
            while True:
                dims.append(self.parse_expr())
                if self.accept("]"):
                    break
                self.expect(",")
        return ast.Type(base=tok.text, dims=dims)

    # -- statements -----------------------------------------------------------
    def parse_block(self) -> ast.Block:
        open_tok = self.expect("{")
        stmts: List[ast.Stmt] = []
        while not self.accept("}"):
            if self.peek().kind == "eof":
                raise McplSyntaxError("unterminated block", open_tok.line, open_tok.col)
            stmts.append(self.parse_stmt())
        return ast.Block(line=open_tok.line, stmts=stmts)

    def parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "foreach":
            return self.parse_foreach()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "while":
            return self.parse_while()
        if tok.text == "return":
            self.next()
            value = None if self.peek().text == ";" else self.parse_expr()
            self.expect(";")
            return ast.Return(line=tok.line, value=value)
        if tok.text == "break":
            self.next()
            self.expect(";")
            return ast.Break(line=tok.line)
        if tok.text == "continue":
            self.next()
            self.expect(";")
            return ast.Continue(line=tok.line)
        if tok.text in ("local", "private", "const") or tok.text in ("int", "float"):
            stmt = self.parse_decl()
            self.expect(";")
            return stmt
        stmt = self.parse_simple()
        self.expect(";")
        return stmt

    def parse_decl(self) -> ast.VarDecl:
        tok = self.peek()
        qualifier = None
        if tok.text in ("local", "private", "const"):
            qualifier = self.next().text
        vtype = self.parse_type()
        name = self.expect_ident().text
        init = None
        if self.accept("="):
            init = self.parse_expr()
        return ast.VarDecl(line=tok.line, type=vtype, name=name,
                           qualifier=qualifier, init=init)

    def parse_simple(self) -> ast.Stmt:
        """Assignment, increment, or expression statement (no semicolon)."""
        tok = self.peek()
        if tok.text in ("int", "float"):
            return self.parse_decl()
        expr = self.parse_expr()
        nxt = self.peek()
        if nxt.text in _ASSIGN_OPS:
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise McplSyntaxError("invalid assignment target", nxt.line, nxt.col)
            op = self.next().text
            value = self.parse_expr()
            return ast.Assign(line=tok.line, target=expr, op=op, value=value)
        if nxt.text in ("++", "--"):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise McplSyntaxError("invalid increment target", nxt.line, nxt.col)
            self.next()
            delta = ast.IntLit(line=nxt.line, value=1)
            op = "+=" if nxt.text == "++" else "-="
            return ast.Assign(line=tok.line, target=expr, op=op, value=delta)
        return ast.ExprStmt(line=tok.line, expr=expr)

    def parse_foreach(self) -> ast.Foreach:
        tok = self.expect("foreach")
        self.expect("(")
        if self.peek().text == "int":
            self.next()
        var = self.expect_ident().text
        self.expect("in")
        count = self.parse_expr()
        unit = self.expect_ident().text
        self.expect(")")
        body = self.parse_stmt()
        return ast.Foreach(line=tok.line, var=var, count=count, unit=unit, body=body)

    def parse_for(self) -> ast.For:
        tok = self.expect("for")
        self.expect("(")
        init = self.parse_simple()
        self.expect(";")
        cond = self.parse_expr()
        self.expect(";")
        step = self.parse_simple()
        self.expect(")")
        body = self.parse_stmt()
        return ast.For(line=tok.line, init=init, cond=cond, step=step, body=body)

    def parse_if(self) -> ast.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_stmt()
        orelse = None
        if self.accept("else"):
            orelse = self.parse_stmt()
        return ast.If(line=tok.line, cond=cond, then=then, orelse=orelse)

    def parse_while(self) -> ast.While:
        tok = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        return ast.While(line=tok.line, cond=cond, body=body)

    # -- expressions ----------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BIN_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BIN_LEVELS[level]
        while self.peek().kind == "op" and self.peek().text in ops:
            tok = self.next()
            right = self._parse_binary(level + 1)
            left = ast.Binary(line=tok.line, op=tok.text, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "+"):
            self.next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        tok = self.next()
        if tok.kind == "int":
            return ast.IntLit(line=tok.line, value=int(tok.text, 0))
        if tok.kind == "float":
            return ast.FloatLit(line=tok.line, value=float(tok.text))
        if tok.text == "(":
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.kind != "ident":
            raise McplSyntaxError(f"unexpected token {tok.text!r}", tok.line, tok.col)
        # identifier: plain, call, or indexed
        if self.peek().text == "(":
            self.next()
            args: List[ast.Expr] = []
            if not self.accept(")"):
                while True:
                    args.append(self.parse_expr())
                    if self.accept(")"):
                        break
                    self.expect(",")
            return ast.Call(line=tok.line, name=tok.text, args=args)
        if self.peek().text == "[":
            self.next()
            indices: List[ast.Expr] = []
            while True:
                indices.append(self.parse_expr())
                if self.accept("]"):
                    break
                self.expect(",")
            return ast.Index(line=tok.line, array=tok.text, indices=indices)
        return ast.Var(line=tok.line, name=tok.text)


def parse_kernel(source: str) -> ast.Kernel:
    """Parse a single MCPL kernel definition."""
    parser = _Parser(tokenize(source))
    kernel = parser.parse_kernel()
    tail = parser.peek()
    if tail.kind != "eof":
        raise McplSyntaxError(f"trailing input {tail.text!r}", tail.line, tail.col)
    return kernel


def parse_kernels(source: str) -> List[ast.Kernel]:
    """Parse a file containing several kernel definitions."""
    parser = _Parser(tokenize(source))
    kernels: List[ast.Kernel] = []
    while parser.peek().kind != "eof":
        kernels.append(parser.parse_kernel())
    return kernels
