"""Semantic analysis for MCPL kernels.

Checks, against the kernel's hardware description:

* the kernel's level exists in the hardware-description library,
* every ``foreach`` unit is a parallelism abstraction available at that level
  (inherited from ancestors, as HDL levels refine their parents),
* memory-space qualifiers (``local``) name memory spaces of the level,
* variables are declared before use and not redeclared in scope,
* array accesses have the right number of indices,
* arrays are not used as scalars and scalars are not indexed.

The result is a :class:`KernelInfo` carrying the symbol table and the
``foreach`` structure, which the analysis, codegen and interpreter reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..hdl.ast import HardwareDescription
from ..hdl.library import get_description
from . import ast

__all__ = ["analyze", "KernelInfo", "McplSemanticError", "BUILTIN_FUNCTIONS"]


class McplSemanticError(ValueError):
    """A kernel violates MCPL static semantics."""


#: builtin math functions available in kernels (single-precision semantics);
#: ``barrier()`` synchronizes the work-items of one group and is a no-op in
#: the sequential reference interpreter.
BUILTIN_FUNCTIONS: Dict[str, int] = {
    "sqrt": 1, "rsqrt": 1, "fabs": 1, "floor": 1, "ceil": 1,
    "exp": 1, "log": 1, "sin": 1, "cos": 1, "tan": 1,
    "pow": 2, "min": 2, "max": 2, "clamp": 3, "int_cast": 1, "float_cast": 1,
    "barrier": 0,
}


@dataclass
class ForeachInfo:
    """One foreach in source order, with nesting depth."""

    stmt: ast.Foreach
    depth: int          #: 0 = outermost parallel loop
    unit: str


@dataclass
class KernelInfo:
    """Resolved facts about a checked kernel."""

    kernel: ast.Kernel
    description: HardwareDescription
    #: name -> declared type for every parameter and local
    symbols: Dict[str, ast.Type] = field(default_factory=dict)
    #: all foreach statements in source order
    foreachs: List[ForeachInfo] = field(default_factory=list)
    #: names of arrays declared with the `local` qualifier
    local_arrays: Set[str] = field(default_factory=set)
    #: parallelism units used, in nesting order of first use
    units_used: List[str] = field(default_factory=list)


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, ast.Type] = {}

    def declare(self, name: str, typ: ast.Type, line: int) -> None:
        if name in self.names:
            raise McplSemanticError(f"redeclaration of {name!r} (line {line})")
        self.names[name] = typ

    def lookup(self, name: str) -> Optional[ast.Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Checker:
    def __init__(self, kernel: ast.Kernel, description: HardwareDescription):
        self.kernel = kernel
        self.hd = description
        self.info = KernelInfo(kernel=kernel, description=description)

    def run(self) -> KernelInfo:
        scope = _Scope()
        # Parameter dims may only reference earlier (scalar int) parameters.
        for p in self.kernel.params:
            for dim in p.type.dims:
                self._check_dim_expr(dim, scope)
            scope.declare(p.name, p.type, 0)
            self.info.symbols[p.name] = p.type
        self._check_stmt(self.kernel.body, scope, foreach_depth=0)
        return self.info

    def _check_dim_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        for var in _walk_expr(expr):
            if isinstance(var, ast.Var):
                typ = scope.lookup(var.name)
                if typ is None:
                    raise McplSemanticError(
                        f"array dimension references undeclared {var.name!r} "
                        f"(line {var.line})")
                if typ.is_array or typ.base != "int":
                    raise McplSemanticError(
                        f"array dimension {var.name!r} must be a scalar int")

    # -- statements ------------------------------------------------------------
    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope, foreach_depth: int) -> None:
        if isinstance(stmt, ast.Block):
            inner = _Scope(scope)
            for s in stmt.stmts:
                self._check_stmt(s, inner, foreach_depth)
        elif isinstance(stmt, ast.VarDecl):
            self._check_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._check_lvalue(stmt.target, scope)
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.Foreach):
            self._check_foreach(stmt, scope, foreach_depth)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            self._check_stmt(stmt.init, inner, foreach_depth)
            self._check_expr(stmt.cond, inner)
            self._check_stmt(stmt.step, inner, foreach_depth)
            self._check_stmt(stmt.body, inner, foreach_depth)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope, foreach_depth)
            if stmt.orelse is not None:
                self._check_stmt(stmt.orelse, scope, foreach_depth)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.body, scope, foreach_depth)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
                if self.kernel.return_type.base == "void":
                    raise McplSemanticError(
                        f"void kernel returns a value (line {stmt.line})")
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        else:  # pragma: no cover - parser produces no other nodes
            raise McplSemanticError(f"unknown statement {stmt!r}")

    def _check_decl(self, decl: ast.VarDecl, scope: _Scope) -> None:
        if decl.qualifier is not None and decl.qualifier != "const":
            space = self.hd.memory_space(decl.qualifier)
            if space is None:
                raise McplSemanticError(
                    f"memory space {decl.qualifier!r} not defined at level "
                    f"{self.hd.name!r} (line {decl.line}); available: "
                    f"{sorted(n for hd in self.hd.ancestry() for n in hd.memory_spaces)}")
            if decl.qualifier == "local":
                self.info.local_arrays.add(decl.name)
        for dim in decl.type.dims:
            self._check_expr(dim, scope)
        if decl.init is not None:
            if decl.type.is_array:
                raise McplSemanticError(
                    f"array {decl.name!r} cannot have an initializer (line {decl.line})")
            self._check_expr(decl.init, scope)
        scope.declare(decl.name, decl.type, decl.line)
        self.info.symbols.setdefault(decl.name, decl.type)

    def _check_foreach(self, stmt: ast.Foreach, scope: _Scope, depth: int) -> None:
        unit = self.hd.par_unit(stmt.unit)
        if unit is None:
            available = sorted(
                n for hd in self.hd.ancestry() for n in hd.par_units)
            raise McplSemanticError(
                f"parallelism unit {stmt.unit!r} not defined at level "
                f"{self.hd.name!r} (line {stmt.line}); available: {available}")
        self._check_expr(stmt.count, scope)
        inner = _Scope(scope)
        inner.declare(stmt.var, ast.Type("int"), stmt.line)
        self.info.symbols.setdefault(stmt.var, ast.Type("int"))
        self.info.foreachs.append(ForeachInfo(stmt=stmt, depth=depth, unit=stmt.unit))
        if stmt.unit not in self.info.units_used:
            self.info.units_used.append(stmt.unit)
        self._check_stmt(stmt.body, inner, depth + 1)

    # -- expressions -------------------------------------------------------------
    def _check_lvalue(self, target: ast.Expr, scope: _Scope) -> None:
        if isinstance(target, ast.Var):
            typ = scope.lookup(target.name)
            if typ is None:
                raise McplSemanticError(
                    f"assignment to undeclared {target.name!r} (line {target.line})")
            if typ.is_array:
                raise McplSemanticError(
                    f"cannot assign whole array {target.name!r} (line {target.line})")
        elif isinstance(target, ast.Index):
            self._check_index(target, scope)
        else:
            raise McplSemanticError(f"invalid assignment target (line {target.line})")

    def _check_index(self, node: ast.Index, scope: _Scope) -> None:
        typ = scope.lookup(node.array)
        if typ is None:
            raise McplSemanticError(
                f"index into undeclared {node.array!r} (line {node.line})")
        if not typ.is_array:
            raise McplSemanticError(
                f"{node.array!r} is not an array (line {node.line})")
        if len(node.indices) != len(typ.dims):
            raise McplSemanticError(
                f"{node.array!r} has {len(typ.dims)} dims, indexed with "
                f"{len(node.indices)} (line {node.line})")
        for idx in node.indices:
            self._check_expr(idx, scope)

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return
        if isinstance(expr, ast.Var):
            typ = scope.lookup(expr.name)
            if typ is None:
                raise McplSemanticError(
                    f"use of undeclared {expr.name!r} (line {expr.line})")
            if typ.is_array:
                raise McplSemanticError(
                    f"array {expr.name!r} used as a scalar (line {expr.line})")
            return
        if isinstance(expr, ast.Index):
            self._check_index(expr, scope)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left, scope)
            self._check_expr(expr.right, scope)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand, scope)
            return
        if isinstance(expr, ast.Call):
            arity = BUILTIN_FUNCTIONS.get(expr.name)
            if arity is None:
                raise McplSemanticError(
                    f"unknown function {expr.name!r} (line {expr.line}); "
                    f"builtins: {sorted(BUILTIN_FUNCTIONS)}")
            if len(expr.args) != arity:
                raise McplSemanticError(
                    f"{expr.name}() takes {arity} args, got {len(expr.args)} "
                    f"(line {expr.line})")
            for arg in expr.args:
                self._check_expr(arg, scope)
            return
        raise McplSemanticError(f"unknown expression {expr!r}")  # pragma: no cover


def _walk_expr(expr: ast.Expr):
    yield expr
    if isinstance(expr, ast.Binary):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, ast.Unary):
        yield from _walk_expr(expr.operand)
    elif isinstance(expr, ast.Call):
        for a in expr.args:
            yield from _walk_expr(a)
    elif isinstance(expr, ast.Index):
        for i in expr.indices:
            yield from _walk_expr(i)


def analyze(kernel: ast.Kernel,
            description: Optional[HardwareDescription] = None) -> KernelInfo:
    """Check a kernel against its (or an explicit) hardware description."""
    hd = description if description is not None else get_description(kernel.level)
    if description is None and hd.name != kernel.level:  # pragma: no cover
        raise McplSemanticError(f"level mismatch for kernel {kernel.name}")
    return _Checker(kernel, hd).run()
