"""Tree-walking interpreter for MCPL kernels.

This is the reference executor used to validate kernels (and the code the
compiler generates from them) against plain numpy implementations.  A
``foreach`` executes its iterations sequentially — MCPL requires foreach
iterations to be independent, so sequential execution computes the same
result the parallel device would.

Numeric semantics follow C/OpenCL: ``int`` division truncates toward zero,
``%`` takes the sign of the dividend, and bit operations work on 32-bit
values (the raytracer's xorshift RNG relies on wrap-around).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Sequence, Union

import numpy as np

from . import ast
from .semantics import BUILTIN_FUNCTIONS, KernelInfo, analyze

__all__ = ["execute", "McplRuntimeError"]


class McplRuntimeError(RuntimeError):
    """Raised for runtime faults in kernel execution (bad args, OOB, ...)."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


_I32_MASK = 0xFFFFFFFF


def _to_i32(value: int) -> int:
    """Wrap to signed 32-bit, as device integers do."""
    value &= _I32_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


def _c_div(a: Union[int, float], b: Union[int, float]) -> Union[int, float]:
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise McplRuntimeError("integer division by zero")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _c_mod(a: Union[int, float], b: Union[int, float]) -> Union[int, float]:
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise McplRuntimeError("integer modulo by zero")
        return a - _c_div(a, b) * b
    return math.fmod(a, b)


_BUILTIN_IMPL = {
    "sqrt": lambda x: math.sqrt(x),
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "fabs": lambda x: abs(x),
    "floor": lambda x: math.floor(x),
    "ceil": lambda x: math.ceil(x),
    "exp": lambda x: math.exp(x),
    "log": lambda x: math.log(x),
    "sin": lambda x: math.sin(x),
    "cos": lambda x: math.cos(x),
    "tan": lambda x: math.tan(x),
    "pow": lambda x, y: math.pow(x, y),
    "min": lambda x, y: min(x, y),
    "max": lambda x, y: max(x, y),
    "clamp": lambda x, lo, hi: max(lo, min(hi, x)),
    "int_cast": lambda x: int(x),
    "float_cast": lambda x: float(x),
    # The interpreter runs foreach iterations sequentially, so group-level
    # synchronization is a no-op here (it matters in generated OpenCL).
    "barrier": lambda: 0,
}
assert set(_BUILTIN_IMPL) == set(BUILTIN_FUNCTIONS)


class _Frame:
    """One lexical scope of runtime values."""

    def __init__(self, parent: Optional["_Frame"] = None):
        self.parent = parent
        self.values: Dict[str, Any] = {}

    def declare(self, name: str, value: Any) -> None:
        self.values[name] = value

    def get(self, name: str) -> Any:
        frame: Optional[_Frame] = self
        while frame is not None:
            if name in frame.values:
                return frame.values[name]
            frame = frame.parent
        raise McplRuntimeError(f"undefined variable {name!r}")

    def set(self, name: str, value: Any) -> None:
        frame: Optional[_Frame] = self
        while frame is not None:
            if name in frame.values:
                frame.values[name] = value
                return
            frame = frame.parent
        raise McplRuntimeError(f"assignment to undefined {name!r}")


class _Interp:
    def __init__(self, info: KernelInfo, foreach_reverse: bool = False):
        self.info = info
        self.kernel = info.kernel
        self.foreach_reverse = foreach_reverse

    # -- entry ---------------------------------------------------------------
    def run(self, args: Sequence[Any]) -> Any:
        kernel = self.kernel
        if len(args) != len(kernel.params):
            raise McplRuntimeError(
                f"{kernel.name} takes {len(kernel.params)} args, got {len(args)}")
        frame = _Frame()
        for param, value in zip(kernel.params, args):
            if param.type.is_array:
                if not isinstance(value, np.ndarray):
                    raise McplRuntimeError(
                        f"parameter {param.name!r} must be a numpy array")
                if value.ndim != len(param.type.dims):
                    raise McplRuntimeError(
                        f"parameter {param.name!r}: expected "
                        f"{len(param.type.dims)}-D array, got {value.ndim}-D")
            else:
                value = int(value) if param.type.base == "int" else float(value)
            frame.declare(param.name, value)
        # Validate declared array shapes against the tracked size expressions.
        for param in kernel.params:
            if param.type.is_array:
                arr = frame.get(param.name)
                for axis, dim in enumerate(param.type.dims):
                    expected = self._eval(dim, frame)
                    if arr.shape[axis] != expected:
                        raise McplRuntimeError(
                            f"{param.name!r} axis {axis}: declared size "
                            f"{expected}, actual {arr.shape[axis]}")
        try:
            self._exec(kernel.body, frame)
        except _Return as ret:
            return ret.value
        return None

    # -- statements ---------------------------------------------------------
    def _exec(self, stmt: ast.Stmt, frame: _Frame) -> None:
        if isinstance(stmt, ast.Block):
            inner = _Frame(frame)
            for s in stmt.stmts:
                self._exec(s, inner)
        elif isinstance(stmt, ast.VarDecl):
            self._exec_decl(stmt, frame)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, frame)
        elif isinstance(stmt, ast.Foreach):
            count = self._eval(stmt.count, frame)
            order: Iterable[int] = range(int(count))
            if self.foreach_reverse:
                order = reversed(range(int(count)))
            for i in order:
                inner = _Frame(frame)
                inner.declare(stmt.var, i)
                self._exec(stmt.body, inner)
        elif isinstance(stmt, ast.For):
            inner = _Frame(frame)
            self._exec(stmt.init, inner)
            while _truthy(self._eval(stmt.cond, inner)):
                try:
                    self._exec(stmt.body, inner)
                except _Break:
                    break
                except _Continue:
                    pass
                self._exec(stmt.step, inner)
        elif isinstance(stmt, ast.If):
            if _truthy(self._eval(stmt.cond, frame)):
                self._exec(stmt.then, frame)
            elif stmt.orelse is not None:
                self._exec(stmt.orelse, frame)
        elif isinstance(stmt, ast.While):
            while _truthy(self._eval(stmt.cond, frame)):
                try:
                    self._exec(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.Return):
            raise _Return(None if stmt.value is None else self._eval(stmt.value, frame))
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        else:  # pragma: no cover
            raise McplRuntimeError(f"unknown statement {stmt!r}")

    def _exec_decl(self, decl: ast.VarDecl, frame: _Frame) -> None:
        if decl.type.is_array:
            shape = tuple(int(self._eval(d, frame)) for d in decl.type.dims)
            dtype = np.int64 if decl.type.base == "int" else np.float64
            frame.declare(decl.name, np.zeros(shape, dtype=dtype))
        else:
            if decl.init is not None:
                value = self._eval(decl.init, frame)
            else:
                value = 0
            value = int(value) if decl.type.base == "int" else float(value)
            frame.declare(decl.name, value)

    def _exec_assign(self, stmt: ast.Assign, frame: _Frame) -> None:
        value = self._eval(stmt.value, frame)
        target = stmt.target
        if isinstance(target, ast.Var):
            if stmt.op != "=":
                current = frame.get(target.name)
                value = self._binop(stmt.op[:-1], current, value)
            # Preserve declared int-ness of the variable.
            current = frame.get(target.name)
            if isinstance(current, int) and not isinstance(value, int):
                value = int(value)
            frame.set(target.name, value)
        else:
            arr = frame.get(target.array)
            idx = tuple(int(self._eval(i, frame)) for i in target.indices)
            for axis, i in enumerate(idx):
                if not 0 <= i < arr.shape[axis]:
                    raise McplRuntimeError(
                        f"index {i} out of bounds for axis {axis} of "
                        f"{target.array!r} (shape {arr.shape}, line {stmt.line})")
            if stmt.op != "=":
                value = self._binop(stmt.op[:-1], float(arr[idx])
                                    if arr.dtype.kind == "f" else int(arr[idx]), value)
            arr[idx] = value

    # -- expressions --------------------------------------------------------
    def _eval(self, expr: ast.Expr, frame: _Frame) -> Any:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Var):
            return frame.get(expr.name)
        if isinstance(expr, ast.Index):
            arr = frame.get(expr.array)
            idx = tuple(int(self._eval(i, frame)) for i in expr.indices)
            for axis, i in enumerate(idx):
                if not 0 <= i < arr.shape[axis]:
                    raise McplRuntimeError(
                        f"index {i} out of bounds for axis {axis} of "
                        f"{expr.array!r} (shape {arr.shape}, line {expr.line})")
            value = arr[idx]
            return float(value) if arr.dtype.kind == "f" else int(value)
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                return 1 if (_truthy(self._eval(expr.left, frame))
                             and _truthy(self._eval(expr.right, frame))) else 0
            if expr.op == "||":
                return 1 if (_truthy(self._eval(expr.left, frame))
                             or _truthy(self._eval(expr.right, frame))) else 0
            left = self._eval(expr.left, frame)
            right = self._eval(expr.right, frame)
            return self._binop(expr.op, left, right)
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return 0 if _truthy(value) else 1
            if expr.op == "~":
                return _to_i32(~int(value))
            raise McplRuntimeError(f"unknown unary {expr.op!r}")  # pragma: no cover
        if isinstance(expr, ast.Call):
            args = [self._eval(a, frame) for a in expr.args]
            try:
                return _BUILTIN_IMPL[expr.name](*args)
            except (ValueError, ZeroDivisionError, OverflowError) as exc:
                raise McplRuntimeError(
                    f"{expr.name}() failed at line {expr.line}: {exc}") from exc
        raise McplRuntimeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _binop(self, op: str, left: Any, right: Any) -> Any:
        both_int = isinstance(left, int) and isinstance(right, int)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            result = left * right
            return _to_i32(result) if both_int else result
        if op == "/":
            return _c_div(left, right)
        if op == "%":
            return _c_mod(left, right)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            table = {
                "==": left == right, "!=": left != right,
                "<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right,
            }
            return 1 if table[op] else 0
        # Bit operations: 32-bit integer semantics.
        li, ri = int(left), int(right)
        if op == "&":
            return _to_i32(li & ri)
        if op == "|":
            return _to_i32(li | ri)
        if op == "^":
            return _to_i32(li ^ ri)
        if op == "<<":
            return _to_i32((li & _I32_MASK) << (ri & 31))
        if op == ">>":
            # Logical shift on the 32-bit pattern (what xorshift RNGs need).
            return _to_i32((li & _I32_MASK) >> (ri & 31))
        raise McplRuntimeError(f"unknown operator {op!r}")  # pragma: no cover


def _truthy(value: Any) -> bool:
    return bool(value)


def execute(kernel_or_info: Union[ast.Kernel, KernelInfo], *args: Any,
            foreach_reverse: bool = False) -> Any:
    """Run a kernel on the given arguments (arrays are modified in place).

    ``foreach_reverse`` runs every ``foreach`` loop highest-index first.
    ``foreach`` declares its iterations order-independent, so *any* valid
    kernel must produce identical results — the verifier's tests use the
    reversed schedule as a cheap dynamic race probe.
    """
    info = kernel_or_info if isinstance(kernel_or_info, KernelInfo) else analyze(kernel_or_info)
    return _Interp(info, foreach_reverse=foreach_reverse).run(args)
