"""Lexer for MCPL, MCL's kernel programming language.

MCPL is C-like (Fig. 3 of the paper): the kernel in the running example is ::

    perfect void matmul(int n, int m, int p,
        float[n,m] c, float[n,p] a, float[p,m] b) {
      foreach (int i in n threads) {
        foreach (int j in m threads) {
          float sum = 0.0;
          for (int k = 0; k < p; k++) {
            sum += a[i,k] * b[k,j];
          }
          c[i,j] += sum;
        }
      }
    }

The lexer produces a token stream with line/column positions for error
reporting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

__all__ = ["Token", "tokenize", "McplSyntaxError", "KEYWORDS"]


class McplSyntaxError(ValueError):
    """Raised for malformed MCPL source, with source position."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


KEYWORDS = frozenset({
    "void", "int", "float", "foreach", "for", "in", "if", "else", "while",
    "return", "break", "continue", "local", "private", "const",
})


@dataclass(frozen=True)
class Token:
    kind: str   #: 'ident' | 'keyword' | 'int' | 'float' | 'op' | 'punct' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


_SPEC = [
    ("comment", r"//[^\n]*|/\*.*?\*/"),
    ("float", r"\d+\.\d*(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?|\d+[fF]"),
    ("int", r"0[xX][0-9a-fA-F]+|\d+"),
    ("ident", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("op", r"<<=|>>=|<<|>>|\+=|-=|\*=|/=|%=|==|!=|<=|>=|&&|\|\||\+\+|--|[-+*/%<>=!&|^~]"),
    ("punct", r"[()\[\]{},;]"),
    ("ws", r"[ \t\r\n]+"),
]
_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pat})" for name, pat in _SPEC), re.DOTALL)


def tokenize(source: str) -> List[Token]:
    """Tokenize MCPL source into a list ending with an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        m = _MASTER_RE.match(source, pos)
        if m is None:
            raise McplSyntaxError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1)
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        pos = m.end()
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos - (len(text) - text.rfind("\n") - 1)
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        if kind == "float" and text[-1] in "fF":
            text = text[:-1]
        tokens.append(Token(kind, text, line, col))
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
