"""AST node definitions for MCPL kernels.

Nodes carry the source line for diagnostics.  Array types record their
dimension *expressions* (``float[n,m]``), because MCPL arrays keep track of
their sizes (Sec. II-B) — the compiler uses these both to check index arity
and to derive work-group configurations and transfer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

__all__ = [
    "Type", "Param", "Kernel",
    "Expr", "IntLit", "FloatLit", "Var", "Index", "Binary", "Unary", "Call",
    "Stmt", "Block", "VarDecl", "Assign", "Foreach", "For", "If", "While",
    "Return", "Break", "Continue", "ExprStmt",
]


# --------------------------------------------------------------------------
# types
# --------------------------------------------------------------------------

@dataclass
class Type:
    """``int``, ``float``, ``void``, or an array thereof with dim exprs."""

    base: str                       #: 'int' | 'float' | 'void'
    dims: List["Expr"] = field(default_factory=list)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def element_bytes(self) -> int:
        return 4  # both int and float are 32-bit in MCPL/OpenCL

    def __str__(self) -> str:
        if not self.dims:
            return self.base
        return f"{self.base}[{','.join(str(d) for d in self.dims)}]"


@dataclass
class Param:
    type: Type
    name: str


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

@dataclass
class Expr:
    line: int = field(default=0, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class FloatLit(Expr):
    value: float = 0.0

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class Var(Expr):
    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass
class Index(Expr):
    """Multi-dimensional array access ``a[i,k]``."""

    array: str = ""
    indices: List[Expr] = field(default_factory=list)

    def __str__(self) -> str:
        return f"{self.array}[{','.join(str(i) for i in self.indices)}]"


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = field(default=0, compare=False)


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """Local declaration, optionally with a memory-space qualifier.

    Optimized GPU kernels declare staging tiles as
    ``local float[TS,TS] tile;`` — the qualifier names a memory space of the
    target hardware description.
    """

    type: Optional[Type] = None
    name: str = ""
    qualifier: Optional[str] = None   #: 'local' | 'private' | 'const' | None
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    target: Optional[Union[Var, Index]] = None
    op: str = "="                     #: '=', '+=', '-=', '*=', '/=', '%='
    value: Optional[Expr] = None


@dataclass
class Foreach(Stmt):
    """``foreach (int i in count unit) body`` — MCPL's parallel loop.

    ``unit`` names a parallelism abstraction of the kernel's hardware
    description (``threads`` on level perfect, ``blocks``/``threads``/
    ``vectors`` deeper down).
    """

    var: str = ""
    count: Optional[Expr] = None
    unit: str = ""
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None       #: VarDecl or Assign
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None       #: Assign
    body: Optional[Stmt] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    orelse: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


# --------------------------------------------------------------------------
# kernel
# --------------------------------------------------------------------------

@dataclass
class Kernel:
    """A complete MCPL kernel: ``<level> <type> <name>(<params>) { ... }``."""

    level: str
    return_type: Type
    name: str
    params: List[Param]
    body: Block

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name} has no parameter {name!r}")

    @property
    def array_params(self) -> List[Param]:
        return [p for p in self.params if p.type.is_array]

    @property
    def scalar_params(self) -> List[Param]:
        return [p for p in self.params if not p.type.is_array]
