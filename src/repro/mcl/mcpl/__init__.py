"""MCPL: MCL's kernel programming language (lexer, parser, semantics, interpreter)."""

from . import ast
from .interpreter import McplRuntimeError, execute
from .lexer import McplSyntaxError, Token, tokenize
from .parser import parse_kernel, parse_kernels
from .semantics import BUILTIN_FUNCTIONS, KernelInfo, McplSemanticError, analyze

__all__ = [
    "ast",
    "tokenize",
    "Token",
    "McplSyntaxError",
    "parse_kernel",
    "parse_kernels",
    "analyze",
    "KernelInfo",
    "McplSemanticError",
    "BUILTIN_FUNCTIONS",
    "execute",
    "McplRuntimeError",
]
