"""``python -m repro lint`` — run the MCPL static verifier.

Verifies the MCPL kernel sources of the built-in applications (or of
arbitrary ``.mcpl`` files) and prints the findings.  Exit status is 0 when
no *unsuppressed error-severity* finding remains, 1 otherwise — the same
gate CI applies with ``python -m repro lint --all``.

Usage::

    python -m repro lint --all                # every builtin app
    python -m repro lint kmeans matmul        # selected apps
    python -m repro lint --json --all         # machine-readable output
    python -m repro lint path/to/kernels.mcpl # a source file
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Dict, List, Optional, Tuple

from . import Finding, Severity, has_errors, render_json, render_text

__all__ = ["app_sources", "lint_main"]


def app_sources() -> Dict[str, List[str]]:
    """The builtin apps' MCPL sources, keyed by app name.

    Each app contributes its unoptimized source plus (when present) its
    optimized source — exactly what :meth:`CashmereApplication.build_library`
    registers.
    """
    from ...apps.kmeans import KMeansApp
    from ...apps.matmul import MatmulApp
    from ...apps.nbody import NBodyApp
    from ...apps.raytracer import RaytracerApp
    apps = {"matmul": MatmulApp, "kmeans": KMeansApp,
            "nbody": NBodyApp, "raytracer": RaytracerApp}
    out: Dict[str, List[str]] = {}
    for name, cls in apps.items():
        sources = [cls.KERNELS_UNOPTIMIZED]
        if cls.KERNELS_OPTIMIZED:
            sources.append(cls.KERNELS_OPTIMIZED)
        out[name] = sources
    return out


def _lint_source(source: str, origin: str) -> Optional[List[Finding]]:
    """Findings for one source, or ``None`` on a front-end diagnostic."""
    from . import verify_source
    from ..mcpl.lexer import McplSyntaxError
    from ..mcpl.semantics import McplSemanticError
    try:
        return verify_source(source)
    except (McplSyntaxError, McplSemanticError) as exc:
        print(f"{origin}: parse error: {exc}", file=sys.stderr)
        return None


def lint_main(targets: List[str], all_apps: bool = False,
              as_json: bool = False,
              errors_only: bool = False) -> int:
    """Entry point of the ``lint`` subcommand.  Returns the exit status."""
    known = app_sources()
    jobs: List[Tuple[str, str]] = []       # (origin label, source text)
    if all_apps:
        targets = sorted(known)
    if not targets:
        print("nothing to lint: give app names, file paths, or --all",
              file=sys.stderr)
        return 2
    for target in targets:
        if target in known:
            for i, src in enumerate(known[target]):
                kind = "unoptimized" if i == 0 else "optimized"
                jobs.append((f"{target} ({kind})", src))
        else:
            path = pathlib.Path(target)
            if not path.is_file():
                print(f"unknown app or file: {target!r} "
                      f"(apps: {', '.join(sorted(known))})", file=sys.stderr)
                return 2
            jobs.append((str(path), path.read_text()))

    all_findings: List[Finding] = []
    report: List[dict] = []
    for origin, source in jobs:
        findings = _lint_source(source, origin)
        if findings is None:
            return 2
        if errors_only:
            findings = [f for f in findings if f.severity is Severity.ERROR]
        all_findings.extend(findings)
        if as_json:
            report.append({
                "origin": origin,
                "findings": json.loads(render_json(findings))["findings"]})
        elif findings:
            print(f"== {origin} ==")
            print(render_text(findings))

    failed = has_errors(all_findings)
    if as_json:
        print(json.dumps({"ok": not failed, "sources": report}, indent=2))
    else:
        n_err = sum(1 for f in all_findings if f.severity is Severity.ERROR)
        n_warn = len(all_findings) - n_err
        status = "FAILED" if failed else "OK"
        print(f"lint {status}: {len(jobs)} source(s), "
              f"{n_err} error(s), {n_warn} warning(s)")
    return 1 if failed else 0
