"""Control-flow graphs and the dataflow core of the MCPL verifier.

A :class:`CFG` is built from a kernel's structured statement tree:

* one node per *atomic* statement (declaration, assignment, expression
  statement, return) plus one node per loop/branch *condition*,
* edges follow the structured control flow, including ``break`` /
  ``continue`` / ``return`` and loop back edges,
* ``foreach`` is modeled as a loop whose header defines the loop variable
  (its iterations may also execute zero times, so the header has an exit
  edge) — the *parallel* interpretation is handled separately by the race
  detector; for scalar dataflow the sequential reference semantics of the
  interpreter is the right model.

On top of the CFG this module provides the classic forward may-analysis of
**reaching definitions** via a worklist solver, and **def-use chains**
derived from it.  Both operate on *scalar* variables: MCPL array elements
are not tracked individually (array declarations count as initializing
definitions, array stores are never dead).

Scoping note: MCPL permits shadowing in nested blocks; like the semantic
analyzer's flat symbol table, the dataflow here identifies variables by
name.  Shadowed names (rare in kernels) merge conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..mcpl import ast
from ..mcpl.semantics import KernelInfo

__all__ = ["CFG", "CFGNode", "Definition", "build_cfg",
           "reaching_definitions", "def_use_chains"]


@dataclass
class Definition:
    """One definition site of a scalar variable."""

    def_id: int
    var: str
    node: int                 #: CFG node index (-1 for parameter pseudo-defs)
    line: int
    kind: str                 #: 'param' | 'decl' | 'assign' | 'loop'
    initialized: bool = True  #: False for `int x;` with no initializer
    stmt: Optional[ast.Stmt] = None


@dataclass
class CFGNode:
    """One CFG node: an atomic statement or a branch/loop condition."""

    index: int
    kind: str                       #: 'entry' | 'exit' | 'stmt' | 'cond'
    stmt: Optional[ast.Stmt] = None
    expr: Optional[ast.Expr] = None  #: condition expression for 'cond' nodes
    line: int = 0
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    #: scalar variables read at this node
    uses: Set[str] = field(default_factory=set)
    #: definitions generated at this node
    defs: List[Definition] = field(default_factory=list)


class CFG:
    """Control-flow graph of one kernel body."""

    def __init__(self, info: KernelInfo):
        self.info = info
        self.nodes: List[CFGNode] = []
        self.definitions: List[Definition] = []
        self.entry = self._new_node("entry")
        self.exit = self._new_node("exit")

    # -- construction helpers ----------------------------------------------
    def _new_node(self, kind: str, stmt: Optional[ast.Stmt] = None,
                  expr: Optional[ast.Expr] = None, line: int = 0) -> int:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt,
                       expr=expr, line=line)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def _add_def(self, node: int, var: str, line: int, kind: str,
                 initialized: bool = True,
                 stmt: Optional[ast.Stmt] = None) -> Definition:
        d = Definition(def_id=len(self.definitions), var=var, node=node,
                       line=line, kind=kind, initialized=initialized,
                       stmt=stmt)
        self.definitions.append(d)
        if node >= 0:
            self.nodes[node].defs.append(d)
        return d

    def is_scalar(self, name: str) -> bool:
        typ = self.info.symbols.get(name)
        return typ is not None and not typ.is_array


def _scalar_uses(expr: Optional[ast.Expr], cfg: CFG, out: Set[str]) -> None:
    """Collect scalar variable reads in an expression."""
    if expr is None:
        return
    if isinstance(expr, ast.Var):
        if cfg.is_scalar(expr.name):
            out.add(expr.name)
    elif isinstance(expr, ast.Binary):
        _scalar_uses(expr.left, cfg, out)
        _scalar_uses(expr.right, cfg, out)
    elif isinstance(expr, ast.Unary):
        _scalar_uses(expr.operand, cfg, out)
    elif isinstance(expr, ast.Call):
        for a in expr.args:
            _scalar_uses(a, cfg, out)
    elif isinstance(expr, ast.Index):
        for i in expr.indices:
            _scalar_uses(i, cfg, out)


class _Builder:
    """Threads the structured statement tree into CFG nodes and edges."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        #: (break-target, continue-target) stack for enclosing loops
        self.loop_stack: List[Tuple[int, int]] = []

    def build(self, body: ast.Stmt) -> None:
        tail = self._stmt(body, self.cfg.entry)
        if tail is not None:
            self.cfg._edge(tail, self.cfg.exit)

    # Returns the "fallthrough" node index, or None if control never falls
    # through (return/break/continue on every path).
    def _stmt(self, stmt: ast.Stmt, pred: Optional[int]) -> Optional[int]:
        cfg = self.cfg
        if pred is None:
            return None  # unreachable code: skip (semantics permits it)
        if isinstance(stmt, ast.Block):
            cur: Optional[int] = pred
            for s in stmt.stmts:
                cur = self._stmt(s, cur)
            return cur
        if isinstance(stmt, ast.VarDecl):
            node = cfg._new_node("stmt", stmt=stmt, line=stmt.line)
            cfg._edge(pred, node)
            assert stmt.type is not None
            for dim in stmt.type.dims:
                _scalar_uses(dim, cfg, cfg.nodes[node].uses)
            if stmt.type.is_array:
                cfg._add_def(node, stmt.name, stmt.line, "decl", True, stmt)
            else:
                _scalar_uses(stmt.init, cfg, cfg.nodes[node].uses)
                cfg._add_def(node, stmt.name, stmt.line, "decl",
                             stmt.init is not None, stmt)
            return node
        if isinstance(stmt, ast.Assign):
            node = cfg._new_node("stmt", stmt=stmt, line=stmt.line)
            cfg._edge(pred, node)
            uses = cfg.nodes[node].uses
            _scalar_uses(stmt.value, cfg, uses)
            target = stmt.target
            if isinstance(target, ast.Var):
                if stmt.op != "=":
                    uses.add(target.name)
                if cfg.is_scalar(target.name):
                    cfg._add_def(node, target.name, stmt.line, "assign",
                                 True, stmt)
            elif isinstance(target, ast.Index):
                for i in target.indices:
                    _scalar_uses(i, cfg, uses)
            return node
        if isinstance(stmt, ast.ExprStmt):
            node = cfg._new_node("stmt", stmt=stmt, line=stmt.line)
            cfg._edge(pred, node)
            _scalar_uses(stmt.expr, cfg, cfg.nodes[node].uses)
            return node
        if isinstance(stmt, ast.Return):
            node = cfg._new_node("stmt", stmt=stmt, line=stmt.line)
            cfg._edge(pred, node)
            _scalar_uses(stmt.value, cfg, cfg.nodes[node].uses)
            cfg._edge(node, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                cfg._edge(pred, self.loop_stack[-1][0])
            return None
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                cfg._edge(pred, self.loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.If):
            cond = cfg._new_node("cond", stmt=stmt, expr=stmt.cond,
                                 line=stmt.line)
            cfg._edge(pred, cond)
            _scalar_uses(stmt.cond, cfg, cfg.nodes[cond].uses)
            join = cfg._new_node("stmt", line=stmt.line)  # empty join node
            assert stmt.then is not None
            then_tail = self._stmt(stmt.then, cond)
            if then_tail is not None:
                cfg._edge(then_tail, join)
            if stmt.orelse is not None:
                else_tail = self._stmt(stmt.orelse, cond)
                if else_tail is not None:
                    cfg._edge(else_tail, join)
            else:
                cfg._edge(cond, join)
            return join if cfg.nodes[join].preds else None
        if isinstance(stmt, ast.While):
            cond = cfg._new_node("cond", stmt=stmt, expr=stmt.cond,
                                 line=stmt.line)
            cfg._edge(pred, cond)
            _scalar_uses(stmt.cond, cfg, cfg.nodes[cond].uses)
            after = cfg._new_node("stmt", line=stmt.line)
            cfg._edge(cond, after)
            self.loop_stack.append((after, cond))
            assert stmt.body is not None
            body_tail = self._stmt(stmt.body, cond)
            self.loop_stack.pop()
            if body_tail is not None:
                cfg._edge(body_tail, cond)
            return after
        if isinstance(stmt, ast.For):
            init_tail = pred
            if stmt.init is not None:
                init_tail = self._stmt(stmt.init, pred)
            cond = cfg._new_node("cond", stmt=stmt, expr=stmt.cond,
                                 line=stmt.line)
            if init_tail is not None:
                cfg._edge(init_tail, cond)
            _scalar_uses(stmt.cond, cfg, cfg.nodes[cond].uses)
            after = cfg._new_node("stmt", line=stmt.line)
            cfg._edge(cond, after)
            # continue jumps to the step, which loops back to the condition.
            step_entry = cfg._new_node("stmt", line=stmt.line)  # pre-step join
            self.loop_stack.append((after, step_entry))
            assert stmt.body is not None
            body_tail = self._stmt(stmt.body, cond)
            self.loop_stack.pop()
            if body_tail is not None:
                cfg._edge(body_tail, step_entry)
            if cfg.nodes[step_entry].preds:
                step_tail = self._stmt(stmt.step, step_entry) \
                    if stmt.step is not None else step_entry
                if step_tail is not None:
                    cfg._edge(step_tail, cond)
            return after
        if isinstance(stmt, ast.Foreach):
            header = cfg._new_node("cond", stmt=stmt, expr=stmt.count,
                                   line=stmt.line)
            cfg._edge(pred, header)
            _scalar_uses(stmt.count, cfg, cfg.nodes[header].uses)
            cfg._add_def(header, stmt.var, stmt.line, "loop", True, stmt)
            after = cfg._new_node("stmt", line=stmt.line)
            cfg._edge(header, after)
            self.loop_stack.append((after, header))
            assert stmt.body is not None
            body_tail = self._stmt(stmt.body, header)
            self.loop_stack.pop()
            if body_tail is not None:
                cfg._edge(body_tail, header)
            return after
        raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover


def build_cfg(info: KernelInfo) -> CFG:
    """Build the CFG of a checked kernel, with parameter pseudo-definitions."""
    cfg = CFG(info)
    for p in info.kernel.params:
        cfg._add_def(-1, p.name, 0, "param", True, None)
    _Builder(cfg).build(info.kernel.body)
    return cfg


def reaching_definitions(cfg: CFG) -> List[Set[int]]:
    """IN sets of the classic reaching-definitions analysis, per node.

    ``result[n]`` is the set of definition ids that may reach the *entry* of
    node ``n``.  Parameter pseudo-definitions reach the CFG entry.
    """
    n_nodes = len(cfg.nodes)
    gen: List[Set[int]] = [set() for _ in range(n_nodes)]
    kill_vars: List[Set[str]] = [set() for _ in range(n_nodes)]
    defs_by_var: Dict[str, Set[int]] = {}
    for d in cfg.definitions:
        defs_by_var.setdefault(d.var, set()).add(d.def_id)
    for node in cfg.nodes:
        for d in node.defs:
            gen[node.index].add(d.def_id)
            kill_vars[node.index].add(d.var)

    entry_in: Set[int] = {d.def_id for d in cfg.definitions if d.node == -1}
    in_sets: List[Set[int]] = [set() for _ in range(n_nodes)]
    in_sets[cfg.entry] = set(entry_in)
    out_sets: List[Set[int]] = [set() for _ in range(n_nodes)]

    worklist = list(range(n_nodes))
    while worklist:
        n = worklist.pop()
        node = cfg.nodes[n]
        new_in: Set[int] = set(entry_in) if n == cfg.entry else set()
        for p in node.preds:
            new_in |= out_sets[p]
        in_sets[n] = new_in
        new_out = set(new_in)
        for var in kill_vars[n]:
            new_out -= defs_by_var[var]
        new_out |= gen[n]
        if new_out != out_sets[n]:
            out_sets[n] = new_out
            worklist.extend(node.succs)
    return in_sets


def def_use_chains(cfg: CFG,
                   in_sets: Optional[List[Set[int]]] = None
                   ) -> Dict[int, List[Tuple[int, str]]]:
    """Map each definition id to its uses ``(node index, variable)``.

    A node "uses" a definition ``d`` of variable ``v`` when it reads ``v``
    and ``d`` reaches the node's entry.
    """
    if in_sets is None:
        in_sets = reaching_definitions(cfg)
    chains: Dict[int, List[Tuple[int, str]]] = {
        d.def_id: [] for d in cfg.definitions}
    by_id = {d.def_id: d for d in cfg.definitions}
    for node in cfg.nodes:
        if not node.uses:
            continue
        for def_id in in_sets[node.index]:
            d = by_id[def_id]
            if d.var in node.uses:
                chains[def_id].append((node.index, d.var))
    return chains
