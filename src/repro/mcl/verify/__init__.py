"""MCPL static verifier: races, bounds, initialization, memory budgets.

The verifier runs a small family of analyses over a checked kernel
(:class:`~repro.mcl.mcpl.semantics.KernelInfo`) and reports *findings*
with stable rule codes:

========  ========  ==========================================================
code      severity  meaning
========  ========  ==========================================================
MCL101    error     cross-iteration array race inside a ``foreach``
MCL102    error     cross-iteration scalar race (write to an outer scalar)
MCL201    error     subscript not provably within the declared dimension
MCL301    error     read of a possibly-uninitialized local
MCL302    warning   dead store
MCL303    warning   unused kernel parameter
MCL401    error     ``barrier()`` under divergent control flow
MCL501    error     local/private memory exceeds the level's capacity
========  ========  ==========================================================

Intentional violations (SIMD reductions, data-dependent scatter) are
acknowledged with inline ``// lint: ignore[CODE] justification`` comments in
the kernel source; see :mod:`.findings`.  The rule catalogue is documented
in ``docs/lint.md``.

Entry points: :func:`verify_kernel` for one checked kernel,
:func:`verify_source` for a source string with any number of kernel
versions, and ``python -m repro lint`` on the command line.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from ..mcpl.parser import parse_kernels
from ..mcpl.semantics import KernelInfo, analyze
from .findings import (Finding, Rule, RULES, Severity, Suppressions,
                       filter_suppressed, render_json, render_text,
                       scan_suppressions)
from .lints import check_bounds, check_dataflow, check_memory, check_params
from .race import check_races

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "Severity",
    "Suppressions",
    "render_text",
    "render_json",
    "scan_suppressions",
    "verify_kernel",
    "verify_source",
    "has_errors",
]


def verify_kernel(info: KernelInfo,
                  source: Optional[str] = None) -> List[Finding]:
    """All findings for one checked kernel, sorted and suppression-filtered.

    When ``source`` is given, inline ``// lint: ignore[...]`` comments in it
    are honoured; line numbers in the findings refer to this source string.
    """
    findings: List[Finding] = []
    findings.extend(check_races(info))
    findings.extend(check_bounds(info))
    findings.extend(check_dataflow(info))
    findings.extend(check_params(info))
    findings.extend(check_memory(info))
    tag = f"{info.kernel.name}@{info.kernel.level}"
    findings = [replace(f, origin=tag) if f.origin is None else f
                for f in findings]
    if source is not None:
        findings = filter_suppressed(findings, scan_suppressions(source))
    return sorted(findings, key=Finding.sort_key)


def verify_source(source: str) -> List[Finding]:
    """Verify every kernel version in an MCPL source string."""
    findings: List[Finding] = []
    for kernel in parse_kernels(source):
        findings.extend(verify_kernel(analyze(kernel), source))
    return sorted(findings, key=Finding.sort_key)


def has_errors(findings: List[Finding]) -> bool:
    """Does the list contain at least one error-severity finding?"""
    return any(f.severity is Severity.ERROR for f in findings)
