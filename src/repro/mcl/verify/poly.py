"""Symbolic polynomials over kernel variables — the verifier's little algebra.

Subscript analysis (race detection) and bounds analysis (interval lints) both
need to compare expressions like ``(w + 1) * chunk`` and ``w * chunk + chunk``
for equality, extract the coefficient of a loop variable, or prove that a
difference is non-negative.  MCPL index expressions are built from integer
arithmetic on loop variables and scalar parameters, so a *polynomial with
rational coefficients over named symbols* is exactly the right normal form.

Operations the verifier cannot express polynomially (division, modulo,
builtin calls, array loads) are folded into *opaque atoms*: a fresh symbol
named by the printed source expression.  Two occurrences of the same
expression — e.g. the ``(np + 239) / 240`` chunk size inlined at its
definition and at its use — normalize to the same atom, which is what lets
the dependence test prove that Xeon-Phi-style chunked loops partition their
index range.

Symbols are assumed to denote *non-negative integers* (loop variables and
size parameters), which justifies the sufficient non-negativity test
"every coefficient is >= 0".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional, Tuple

from ..mcpl import ast

__all__ = ["Poly", "expr_to_poly", "ATOM_PREFIX"]

#: prefix marking opaque atoms (non-polynomial subexpressions)
ATOM_PREFIX = "@"

#: a monomial is a sorted tuple of symbol names (with repetition for powers)
Monomial = Tuple[str, ...]


class Poly:
    """An immutable polynomial: ``{monomial: coefficient}``."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[Monomial, Fraction]] = None):
        clean: Dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff != 0:
                    clean[mono] = Fraction(coeff)
        self.terms = clean

    # -- constructors -------------------------------------------------------
    @staticmethod
    def const(value: object) -> "Poly":
        return Poly({(): Fraction(value)})  # type: ignore[arg-type]

    @staticmethod
    def var(name: str) -> "Poly":
        return Poly({(name,): Fraction(1)})

    # -- queries ------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return all(mono == () for mono in self.terms)

    def constant_value(self) -> Optional[Fraction]:
        """The value if constant, else ``None``."""
        if self.is_constant:
            return self.terms.get((), Fraction(0))
        return None

    def symbols(self) -> Iterable[str]:
        for mono in self.terms:
            yield from mono

    def mentions(self, name: str) -> bool:
        return any(name in mono for mono in self.terms)

    def coefficient_of(self, name: str) -> "Poly":
        """Coefficient polynomial of ``name`` — only for degree <= 1 in it.

        ``coefficient_of('w')`` on ``w * chunk + chunk`` is ``chunk``.
        Raises :class:`ValueError` if ``name`` appears with degree >= 2.
        """
        out: Dict[Monomial, Fraction] = {}
        for mono, coeff in self.terms.items():
            k = mono.count(name)
            if k == 0:
                continue
            if k > 1:
                raise ValueError(f"degree of {name!r} exceeds 1 in {self}")
            rest = tuple(s for s in mono if s != name)
            out[rest] = out.get(rest, Fraction(0)) + coeff
        return Poly(out)

    def drop(self, name: str) -> "Poly":
        """The terms not mentioning ``name``."""
        return Poly({m: c for m, c in self.terms.items() if name not in m})

    def is_nonnegative(self) -> bool:
        """Sufficient test: every coefficient >= 0 (symbols are >= 0)."""
        return all(coeff >= 0 for coeff in self.terms.values())

    def is_nonpositive(self) -> bool:
        return all(coeff <= 0 for coeff in self.terms.values())

    def is_zero(self) -> bool:
        return not self.terms

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "Poly") -> "Poly":
        out = dict(self.terms)
        for mono, coeff in other.terms.items():
            out[mono] = out.get(mono, Fraction(0)) + coeff
        return Poly(out)

    def __sub__(self, other: "Poly") -> "Poly":
        out = dict(self.terms)
        for mono, coeff in other.terms.items():
            out[mono] = out.get(mono, Fraction(0)) - coeff
        return Poly(out)

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __mul__(self, other: "Poly") -> "Poly":
        out: Dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                mono = tuple(sorted(m1 + m2))
                out[mono] = out.get(mono, Fraction(0)) + c1 * c2
        return Poly(out)

    def scale(self, factor: object) -> "Poly":
        f = Fraction(factor)  # type: ignore[arg-type]
        return Poly({m: c * f for m, c in self.terms.items()})

    def substitute(self, name: str, replacement: "Poly") -> "Poly":
        """Replace every occurrence of ``name`` (any degree) by a polynomial."""
        out = Poly()
        for mono, coeff in self.terms.items():
            term = Poly({tuple(s for s in mono if s != name): coeff})
            for _ in range(mono.count(name)):
                term = term * replacement
            out = out + term
        return out

    # -- structural equality ------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Poly) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono in sorted(self.terms):
            coeff = self.terms[mono]
            sym = "*".join(mono) if mono else ""
            if sym and coeff == 1:
                parts.append(sym)
            elif sym:
                parts.append(f"{coeff}*{sym}")
            else:
                parts.append(str(coeff))
        return " + ".join(parts)


def _atom(expr: ast.Expr) -> Poly:
    """Fold a non-polynomial expression into an opaque (but stable) symbol."""
    return Poly.var(ATOM_PREFIX + str(expr))


def expr_to_poly(expr: ast.Expr,
                 substitutions: Optional[Dict[str, Poly]] = None) -> Poly:
    """Normalize an MCPL expression into a :class:`Poly`.

    ``substitutions`` maps variable names to the polynomial of their (single
    reaching) definition — used to inline recovered indices such as
    ``int i = b * 256 + t;`` before subscripts are compared.

    The function is total: anything non-polynomial (division, modulo, calls,
    array loads) becomes an opaque atom keyed by its printed form, so equal
    source expressions stay comparable.
    """
    subs = substitutions or {}
    if isinstance(expr, ast.IntLit):
        return Poly.const(expr.value)
    if isinstance(expr, ast.FloatLit):
        return Poly.const(Fraction(expr.value).limit_denominator(10**9))
    if isinstance(expr, ast.Var):
        if expr.name in subs:
            return subs[expr.name]
        return Poly.var(expr.name)
    if isinstance(expr, ast.Unary):
        if expr.op == "-" and expr.operand is not None:
            return -expr_to_poly(expr.operand, subs)
        return _atom(expr)
    if isinstance(expr, ast.Binary):
        assert expr.left is not None and expr.right is not None
        if expr.op in ("+", "-", "*"):
            left = expr_to_poly(expr.left, subs)
            right = expr_to_poly(expr.right, subs)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            return left * right
        if expr.op == "/":
            # Exact constant division stays polynomial; `x / c` with a
            # constant divisor divides every coefficient only when the
            # result is provably exact (single-term multiples). Otherwise
            # the whole (floor) division is an opaque atom.
            left = expr_to_poly(expr.left, subs)
            right = expr_to_poly(expr.right, subs)
            rc = right.constant_value()
            lc = left.constant_value()
            if rc is not None and rc != 0 and lc is not None:
                q = lc / rc
                if q.denominator == 1:
                    return Poly.const(q)
        return _atom(expr)
    # Index loads, calls: opaque.
    return _atom(expr)
