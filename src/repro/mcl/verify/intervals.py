"""Symbolic interval analysis over ``foreach`` / ``for`` bounds.

This is the value-range half of the dataflow core: a structured abstract
interpretation of the kernel body in the domain of *symbolic intervals*.
Bounds are :class:`~.poly.Poly` values over scalar parameters (and opaque
atoms), so ``foreach (int i in n threads)`` gives ``i`` the interval
``[0, n - 1]`` — exactly what the out-of-bounds lint needs to compare
subscripts against declared array dimensions like ``float[n,m]``.

Because bounds are symbolic, an interval keeps a small *set* of candidate
bounds (each individually valid); comparisons use the polynomial
non-negativity test, and joins keep only candidates provably dominating the
other side.  Loops are handled with a bounded fixpoint plus per-bound
widening (a bound that keeps moving is dropped rather than the whole
interval), so monotone loop counters keep their stable side.

Guard refinement understands ``<, <=, >, >=, ==`` comparisons, conjunctions
on the true branch and disjunctions on the false branch.  Guards whose
left-hand side is not a plain variable (``if (jj + x / 4 < n)``) are kept
as *facts* keyed by the expression's polynomial normal form and matched
against subscripts that differ from the guarded expression by a constant.

The analysis also records every array access with the intervals of its
subscripts — the input of the bounds lint — and the symbolic iteration
ranges of all loops, which the race detector reuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from ..mcpl import ast
from ..mcpl.semantics import KernelInfo
from .poly import Poly, expr_to_poly

__all__ = ["Interval", "AccessRecord", "LoopRange", "IntervalAnalysis",
           "analyze_intervals"]

_MAX_CANDIDATES = 4


def _provable_le(a: Poly, b: Poly) -> bool:
    """True when ``a <= b`` for every non-negative symbol valuation."""
    return (b - a).is_nonnegative()


@dataclass(frozen=True)
class Interval:
    """A symbolic interval with candidate lower/upper bounds.

    Every element of ``los`` is a valid lower bound and every element of
    ``his`` a valid upper bound; empty tuples mean unbounded on that side.
    """

    los: Tuple[Poly, ...] = ()
    his: Tuple[Poly, ...] = ()

    @staticmethod
    def top() -> "Interval":
        return Interval((), ())

    @staticmethod
    def exact(p: Poly) -> "Interval":
        return Interval((p,), (p,))

    @staticmethod
    def const(value: object) -> "Interval":
        return Interval.exact(Poly.const(value))

    def with_hi(self, hi: Poly) -> "Interval":
        """Add an upper-bound candidate (newest first — it wins the cap)."""
        his = tuple(self.his)
        if hi not in his:
            his = ((hi,) + his)[:_MAX_CANDIDATES]
        return Interval(self.los, his)

    def with_lo(self, lo: Poly) -> "Interval":
        """Add a lower-bound candidate (newest first — it wins the cap)."""
        los = tuple(self.los)
        if lo not in los:
            los = ((lo,) + los)[:_MAX_CANDIDATES]
        return Interval(los, self.his)

    def nonneg(self) -> bool:
        """Provably >= 0?"""
        return any(lo.is_nonnegative() for lo in self.los)

    def bounded_above_by(self, limit: Poly) -> bool:
        """Provably <= limit?"""
        return any(_provable_le(hi, limit) for hi in self.his)


def join(a: Interval, b: Interval) -> Interval:
    """Least-ish upper bound: keep candidates that dominate the other side."""
    los = []
    for lo in a.los:
        if any(_provable_le(lo, lo2) for lo2 in b.los):
            los.append(lo)
    for lo in b.los:
        if lo not in los and any(_provable_le(lo, lo2) for lo2 in a.los):
            los.append(lo)
    his = []
    for hi in a.his:
        if any(_provable_le(hi2, hi) for hi2 in b.his):
            his.append(hi)
    for hi in b.his:
        if hi not in his and any(_provable_le(hi2, hi) for hi2 in a.his):
            his.append(hi)
    return Interval(tuple(los[:_MAX_CANDIDATES]), tuple(his[:_MAX_CANDIDATES]))


def _add(a: Interval, b: Interval) -> Interval:
    los = tuple(x + y for x in a.los for y in b.los)[:_MAX_CANDIDATES]
    his = tuple(x + y for x in a.his for y in b.his)[:_MAX_CANDIDATES]
    return Interval(los, his)


def _neg(a: Interval) -> Interval:
    return Interval(tuple(-h for h in a.his), tuple(-lo for lo in a.los))


def _first(bounds: Tuple[Poly, ...]) -> Optional[Poly]:
    return bounds[0] if bounds else None


def _mul(a: Interval, b: Interval) -> Interval:
    # Constant factor: scale (swapping for negative constants).
    for x, y in ((a, b), (b, a)):
        cs = [lo.constant_value() for lo in x.los if lo.is_constant]
        cs2 = [hi.constant_value() for hi in x.his if hi.is_constant]
        consts = [c for c in cs if c is not None and c in
                  [d for d in cs2 if d is not None]]
        if consts:
            c = consts[0]
            if c >= 0:
                return Interval(tuple(lo.scale(c) for lo in y.los),
                                tuple(hi.scale(c) for hi in y.his))
            return Interval(tuple(hi.scale(c) for hi in y.his),
                            tuple(lo.scale(c) for lo in y.los))
    # Non-negative times non-negative.
    if a.nonneg() and b.nonneg():
        los = tuple(x * y for x in a.los[:1] for y in b.los[:1])
        his = tuple(x * y for x in a.his[:2] for y in b.his[:2])
        return Interval(los, his[:_MAX_CANDIDATES])
    return Interval.top()


def _floordiv_hi(hi: Poly, divisor: Poly) -> Optional[Poly]:
    """Upper bound of ``floor(x / d)`` given ``x <= hi``.

    * constant divisor c > 0: ``hi / c`` (rational, still an upper bound);
    * single-symbol divisor p with ``hi = a*p + r``, constant ``r <= -1``
      and constant ``a``: ``floor(x/p) <= a - 1`` (since ``x/p < a``).
    """
    c = divisor.constant_value()
    if c is not None and c > 0:
        hc = hi.constant_value()
        if hc is not None:
            q = hc / c
            return Poly.const(q.numerator // q.denominator)
        return hi.scale(Fraction(1, 1) / c)
    syms = list(divisor.terms.keys())
    if len(syms) == 1 and len(syms[0]) == 1 and divisor.terms[syms[0]] == 1:
        p = syms[0][0]
        try:
            a = hi.coefficient_of(p)
        except ValueError:
            return None
        rest = hi - a * Poly.var(p)
        a_c, rest_c = a.constant_value(), rest.constant_value()
        if a_c is not None and a_c == int(a_c) and rest_c is not None \
                and rest_c <= -1:
            return Poly.const(int(a_c) - 1)
    return None


@dataclass
class AccessRecord:
    """One array access with the symbolic state at its program point."""

    array: str
    node: ast.Index
    line: int
    write: bool
    #: per-dimension: (index expression, interval, polynomial normal form)
    dims: List[Tuple[ast.Expr, Interval, Poly]] = field(default_factory=list)
    #: guard facts active at the access: (poly of guarded expr, strict upper
    #: bound poly) — ``poly < bound`` holds here
    facts: List[Tuple[Poly, Poly]] = field(default_factory=list)


@dataclass
class LoopRange:
    """Symbolic iteration range of one foreach/for loop variable."""

    var: str
    stmt: ast.Stmt
    interval: Interval
    #: trip count as a constant, when statically known (foreach literals)
    const_count: Optional[int] = None


Env = Dict[str, Interval]
Facts = List[Tuple[Poly, Poly]]


def _assigned_names(stmt: Optional[ast.Stmt], out: "Set[str]") -> None:
    """Names assigned (as scalars) anywhere in a statement tree."""
    if stmt is None:
        return
    if isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            _assigned_names(s, out)
    elif isinstance(stmt, ast.Assign):
        if isinstance(stmt.target, ast.Var):
            out.add(stmt.target.name)
    elif isinstance(stmt, ast.If):
        _assigned_names(stmt.then, out)
        _assigned_names(stmt.orelse, out)
    elif isinstance(stmt, (ast.While, ast.Foreach)):
        _assigned_names(stmt.body, out)
    elif isinstance(stmt, ast.For):
        _assigned_names(stmt.init, out)
        _assigned_names(stmt.step, out)
        _assigned_names(stmt.body, out)


class IntervalAnalysis:
    """Structured abstract interpreter producing access/loop records."""

    def __init__(self, info: KernelInfo):
        self.info = info
        self.record = True
        self.accesses: List[AccessRecord] = []
        self.loop_ranges: Dict[int, LoopRange] = {}   #: id(stmt) -> range
        # int parameters never assigned in the body are runtime *constants*:
        # their own symbol is always an exact bound, whatever branch
        # refinements or widening did to their environment interval.
        assigned: Set[str] = set()
        _assigned_names(info.kernel.body, assigned)
        self._const_params = {
            p.name for p in info.kernel.params
            if not p.type.is_array and p.type.base == "int"
            and p.name not in assigned}

    # -- entry --------------------------------------------------------------
    def run(self) -> None:
        env: Env = {}
        for p in self.info.kernel.params:
            if not p.type.is_array:
                if p.type.base == "int":
                    env[p.name] = Interval.exact(Poly.var(p.name))
                else:
                    env[p.name] = Interval.top()
        self._stmt(self.info.kernel.body, env, [])

    # -- expressions --------------------------------------------------------
    def eval(self, expr: Optional[ast.Expr], env: Env, facts: Facts
             ) -> Interval:
        if expr is None:
            return Interval.top()
        if isinstance(expr, ast.IntLit):
            return Interval.const(expr.value)
        if isinstance(expr, ast.FloatLit):
            return Interval.const(Fraction(expr.value).limit_denominator(10**9))
        if isinstance(expr, ast.Var):
            iv = env.get(expr.name, Interval.top())
            if expr.name in self._const_params:
                exact = Poly.var(expr.name)
                iv = iv.with_lo(exact).with_hi(exact)
            return iv
        if isinstance(expr, ast.Unary):
            if expr.op == "-":
                return _neg(self.eval(expr.operand, env, facts))
            return Interval.top()
        if isinstance(expr, ast.Index):
            self._record_access(expr, env, facts, write=False)
            return Interval.top()
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, facts)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env, facts)
        return Interval.top()

    def _eval_call(self, expr: ast.Call, env: Env, facts: Facts) -> Interval:
        args = [self.eval(a, env, facts) for a in expr.args]
        if expr.name in ("int_cast", "float_cast") and args:
            return args[0]
        if expr.name == "min" and len(args) == 2:
            a, b = args
            his = tuple(dict.fromkeys(a.his + b.his))[:_MAX_CANDIDATES]
            los = []
            for lo in a.los:
                if any(_provable_le(lo, lo2) for lo2 in b.los):
                    los.append(lo)
            for lo in b.los:
                if any(_provable_le(lo, lo2) for lo2 in a.los):
                    los.append(lo)
            return Interval(tuple(los[:_MAX_CANDIDATES]), his)
        if expr.name == "max" and len(args) == 2:
            a, b = args
            los = tuple(dict.fromkeys(a.los + b.los))[:_MAX_CANDIDATES]
            his = []
            for hi in a.his:
                if any(_provable_le(hi2, hi) for hi2 in b.his):
                    his.append(hi)
            for hi in b.his:
                if any(_provable_le(hi2, hi) for hi2 in a.his):
                    his.append(hi)
            return Interval(los, tuple(his[:_MAX_CANDIDATES]))
        if expr.name == "clamp" and len(args) == 3:
            return Interval(args[1].los, args[2].his)
        if expr.name == "fabs":
            return Interval((Poly.const(0),), args[0].his if args else ())
        return Interval.top()

    def _eval_binary(self, expr: ast.Binary, env: Env, facts: Facts
                     ) -> Interval:
        assert expr.left is not None and expr.right is not None
        left = self.eval(expr.left, env, facts)
        right = self.eval(expr.right, env, facts)
        if expr.op == "+":
            return _add(left, right)
        if expr.op == "-":
            return _add(left, _neg(right))
        if expr.op == "*":
            return _mul(left, right)
        if expr.op == "/":
            div = expr_to_poly(expr.right)
            his = []
            for hi in left.his:
                q = _floordiv_hi(hi, div)
                if q is not None:
                    his.append(q)
            los: Tuple[Poly, ...] = ()
            c = div.constant_value()
            if c is not None and c > 0 and left.nonneg():
                los = (Poly.const(0),)
            elif div.is_nonnegative() and not div.is_zero() and left.nonneg():
                los = (Poly.const(0),)
            return Interval(los, tuple(his[:_MAX_CANDIDATES]))
        if expr.op == "%":
            div = expr_to_poly(expr.right)
            c = div.constant_value()
            if left.nonneg():
                if c is not None and c > 0:
                    hi = Poly.const(c - 1)
                elif div.is_nonnegative() and not div.is_zero():
                    hi = div - Poly.const(1)
                else:
                    return Interval((Poly.const(0),), ())
                # also |x % d| <= x for non-negative x
                return Interval((Poly.const(0),),
                                (hi,) + left.his[:_MAX_CANDIDATES - 1])
            return Interval.top()
        if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            # comparisons yield 0/1; still evaluate operands for recording
            return Interval((Poly.const(0),), (Poly.const(1),))
        # shifts / bit operations: conservative
        return Interval.top()

    # -- guard refinement ---------------------------------------------------
    _NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=",
               "!=": "=="}

    def refine(self, env: Env, facts: Facts, cond: Optional[ast.Expr],
               branch: bool) -> Tuple[Env, Facts]:
        if cond is None or not isinstance(cond, ast.Binary):
            return env, facts
        op = cond.op
        if op == "&&":
            if branch:
                env, facts = self.refine(env, facts, cond.left, True)
                return self.refine(env, facts, cond.right, True)
            return env, facts
        if op == "||":
            if not branch:
                env, facts = self.refine(env, facts, cond.left, False)
                return self.refine(env, facts, cond.right, False)
            return env, facts
        if op not in ("<", "<=", ">", ">=", "==", "!="):
            return env, facts
        if not branch:
            op = self._NEGATE[op]
        if op == "!=":
            return env, facts
        left, right = cond.left, cond.right
        assert left is not None and right is not None
        # Normalize to LHS (op) RHS with op in {<, <=, ==} by swapping.
        if op in (">", ">="):
            left, right = right, left
            op = "<" if op == ">" else "<="
        env = dict(env)
        facts = list(facts)
        self._apply_le(env, facts, left, right, strict=(op == "<"))
        if op == "==":
            self._apply_le(env, facts, right, left, strict=False)
        elif op == "<=" or op == "<":
            pass
        if op == "==":
            pass
        else:
            # also refine the RHS variable's lower bound: right > left
            self._apply_ge(env, right, left, strict=(op == "<"))
        return env, facts

    def _apply_le(self, env: Env, facts: Facts, lhs: ast.Expr,
                  rhs: ast.Expr, strict: bool) -> None:
        """Record ``lhs < rhs`` (or <=) in env/facts."""
        bound = self.eval(rhs, env, facts)
        delta = Poly.const(1 if strict else 0)
        if isinstance(lhs, ast.Var) and lhs.name in self.info.symbols \
                and not self.info.symbols[lhs.name].is_array:
            iv = env.get(lhs.name, Interval.top())
            for hi in bound.his:
                iv = iv.with_hi(hi - delta)
            env[lhs.name] = iv
        else:
            lhs_poly = expr_to_poly(lhs)
            for hi in bound.his:
                facts.append((lhs_poly, hi + Poly.const(1) - delta))

    def _apply_ge(self, env: Env, rhs: ast.Expr, lhs: ast.Expr,
                  strict: bool) -> None:
        """From ``lhs < rhs``: refine rhs's lower bound to lhs (+1)."""
        if not (isinstance(rhs, ast.Var) and rhs.name in self.info.symbols
                and not self.info.symbols[rhs.name].is_array):
            return
        lo_iv = self.eval(lhs, env, [])
        delta = Poly.const(1 if strict else 0)
        iv = env.get(rhs.name, Interval.top())
        for lo in lo_iv.los:
            iv = iv.with_lo(lo + delta)
        env[rhs.name] = iv

    # -- access recording ---------------------------------------------------
    def _record_access(self, node: ast.Index, env: Env, facts: Facts,
                       write: bool) -> None:
        for idx in node.indices:
            self.eval(idx, env, facts)   # record nested accesses
        if not self.record:
            return
        rec = AccessRecord(array=node.array, node=node, line=node.line,
                           write=write, facts=list(facts))
        for idx in node.indices:
            iv = self.eval(idx, env, facts)
            rec.dims.append((idx, iv, expr_to_poly(idx)))
        self.accesses.append(rec)

    # -- statements ---------------------------------------------------------
    def _stmt(self, stmt: Optional[ast.Stmt], env: Env, facts: Facts) -> Env:
        if stmt is None:
            return env
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                env = self._stmt(s, env, facts)
            return env
        if isinstance(stmt, ast.VarDecl):
            assert stmt.type is not None
            env = dict(env)
            for dim in stmt.type.dims:
                self.eval(dim, env, facts)
            if stmt.type.is_array:
                return env
            if stmt.init is not None:
                env[stmt.name] = self.eval(stmt.init, env, facts)
            else:
                env[stmt.name] = Interval.top()
            return env
        if isinstance(stmt, ast.Assign):
            env = dict(env)
            value = self.eval(stmt.value, env, facts)
            target = stmt.target
            if isinstance(target, ast.Index):
                self._record_access(target, env, facts, write=True)
                return env
            assert isinstance(target, ast.Var)
            if stmt.op != "=":
                current = env.get(target.name, Interval.top())
                fake = ast.Binary(op=stmt.op[:-1], left=target,
                                  right=stmt.value, line=stmt.line)
                prev_record = self.record
                self.record = False
                value = self._eval_binary(fake, env, facts)
                self.record = prev_record
                del current
            if target.name in self.info.symbols \
                    and not self.info.symbols[target.name].is_array:
                env[target.name] = value
            return env
        if isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr, env, facts)
            return env
        if isinstance(stmt, ast.Return):
            self.eval(stmt.value, env, facts)
            return env
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return env
        if isinstance(stmt, ast.If):
            t_env, t_facts = self.refine(env, facts, stmt.cond, True)
            self.eval(stmt.cond, env, facts)
            out_t = self._stmt(stmt.then, t_env, t_facts)
            e_env, e_facts = self.refine(env, facts, stmt.cond, False)
            out_e = self._stmt(stmt.orelse, e_env, e_facts) \
                if stmt.orelse is not None else e_env
            return self._join_env(out_t, out_e)
        if isinstance(stmt, ast.While):
            return self._loop(stmt, stmt.cond, stmt.body, None, env, facts,
                              loop_var=None)
        if isinstance(stmt, ast.For):
            env = self._stmt(stmt.init, env, facts)
            var = None
            if isinstance(stmt.init, ast.VarDecl):
                var = stmt.init.name
            elif isinstance(stmt.init, ast.Assign) \
                    and isinstance(stmt.init.target, ast.Var):
                var = stmt.init.target.name
            return self._loop(stmt, stmt.cond, stmt.body, stmt.step, env,
                              facts, loop_var=var)
        if isinstance(stmt, ast.Foreach):
            count = self.eval(stmt.count, env, facts)
            env = dict(env)
            iv = Interval((Poly.const(0),),
                          tuple(hi - Poly.const(1) for hi in count.his))
            env[stmt.var] = iv
            const_count = None
            if isinstance(stmt.count, ast.IntLit):
                const_count = stmt.count.value
            assert stmt.body is not None
            self.loop_ranges[id(stmt)] = LoopRange(
                var=stmt.var, stmt=stmt, interval=iv,
                const_count=const_count)
            out = self._loop_body_fix(stmt.body, env, facts, None, None,
                                      pinned={stmt.var: iv})
            return self._join_env(env, out)
        raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover

    # -- loops --------------------------------------------------------------
    def _loop(self, stmt: ast.Stmt, cond: Optional[ast.Expr],
              body: Optional[ast.Stmt], step: Optional[ast.Stmt],
              env: Env, facts: Facts, loop_var: Optional[str]) -> Env:
        assert body is not None
        out = self._loop_body_fix(body, env, facts, cond, step, pinned={})
        if loop_var is not None and loop_var in out:
            t_env, _ = self.refine(out, facts, cond, True)
            self.loop_ranges[id(stmt)] = LoopRange(
                var=loop_var, stmt=stmt,
                interval=t_env.get(loop_var, Interval.top()))
        # After the loop the negated condition holds (if it simply exited).
        post, _ = self.refine(self._join_env(env, out), facts, cond, False)
        return post

    def _loop_body_fix(self, body: ast.Stmt, env: Env, facts: Facts,
                       cond: Optional[ast.Expr], step: Optional[ast.Stmt],
                       pinned: Dict[str, Interval]) -> Env:
        """Bounded fixpoint with per-bound widening, then a recording pass."""
        prev_record, self.record = self.record, False
        cur = dict(env)
        cur.update(pinned)
        for _ in range(2):
            body_env, body_facts = self.refine(cur, facts, cond, True)
            out = self._stmt(body, body_env, body_facts)
            if step is not None:
                out = self._stmt(step, out, body_facts)
            out.update(pinned)
            nxt = self._join_env(cur, out)
            nxt.update(pinned)
            if nxt == cur:
                break
            cur = nxt
        else:
            # Widen the bounds that are still moving.
            body_env, body_facts = self.refine(cur, facts, cond, True)
            out = self._stmt(body, body_env, body_facts)
            if step is not None:
                out = self._stmt(step, out, body_facts)
            widened: Env = {}
            for name in set(cur) | set(out):
                if name in pinned:
                    widened[name] = pinned[name]
                    continue
                a = cur.get(name, Interval.top())
                b = out.get(name, Interval.top())
                j = self._join(a, b)
                # Per-bound widening: keep exactly the candidates of `cur`
                # that survived the join (they still bound the next
                # iteration); drop the ones that moved.
                widened[name] = Interval(
                    tuple(lo for lo in a.los if lo in j.los),
                    tuple(hi for hi in a.his if hi in j.his))
            cur = widened
        self.record = prev_record
        body_env, body_facts = self.refine(cur, facts, cond, True)
        final = self._stmt(body, body_env, body_facts)
        if step is not None:
            final = self._stmt(step, final, body_facts)
        return self._join_env(cur, final)

    # -- environment lattice -------------------------------------------------
    @staticmethod
    def _join(a: Interval, b: Interval) -> Interval:
        return join(a, b)

    @staticmethod
    def _join_env(a: Env, b: Env) -> Env:
        out: Env = {}
        for name in set(a) | set(b):
            out[name] = join(a.get(name, Interval.top()),
                             b.get(name, Interval.top()))
        return out


def analyze_intervals(info: KernelInfo) -> IntervalAnalysis:
    """Run the interval analysis over a checked kernel."""
    analysis = IntervalAnalysis(info)
    analysis.run()
    return analysis
