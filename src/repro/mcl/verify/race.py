"""Cross-iteration race detection for ``foreach`` loops.

MCPL's ``foreach`` declares that its iterations may run in parallel; the
interpreter's sequential order is only the *reference* semantics.  A kernel
is therefore racy when two iterations of the same ``foreach`` may touch the
same array element with at least one write (MCL101), when an iteration
writes a scalar declared outside the loop (MCL102), or when a ``barrier``
is only reached under data-dependent control flow (MCL401).

Consecutive ``foreach`` statements are separate *phases* (the translation
to OpenCL/OpenMP synchronizes between them), so only accesses inside the
same ``foreach`` are compared.  Arrays and scalars declared inside the loop
body are iteration-private.

The dependence test works on the polynomial normal form of subscripts
(:mod:`.poly`), after inlining single-definition locals such as
``int i = b * 256 + t;``.  Writing a subscript as ``a*u + f + s`` — ``u``
the foreach variable, ``f`` over iteration-*independent* symbols, ``s``
over *uniform* symbols (same value in every iteration) — two iterations
``u1 != u2`` conflict only if ``a*(u1-u2) + f1 - f2 + (s1-s2) = 0`` has a
solution.  Four sufficient independence tests are applied per dimension:

* **same form** — ``f = 0`` and the uniform parts cancel: forces ``u1=u2``;
* **bounded residual** — ``|f1 - f2|`` is provably smaller than ``|a|``
  (e.g. ``32*bi + ti`` with ``ti in [0,31]``: block-private tiles);
* **GCD / modular** — all residual coefficients share a divisor ``g`` and
  ``a*(u1-u2) ≡ 0 (mod g)`` has no solution with ``0 < |u1-u2| < count``
  (e.g. interleaved staging ``x = t; x < 1024; x += 256``);
* **chunk disjointness** — the subscript is a ``for`` variable running from
  ``E0(u)`` to a bound ``E1(u)`` with ``E0(u+1) >= E1(u)``: Xeon-Phi-style
  chunked loops partition the index range.

Everything the tests cannot prove independent is reported as a *may* race;
intentional patterns (SIMD reductions, data-dependent scatter) carry
``// lint: ignore[...]`` justifications in the kernel source.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..mcpl import ast
from ..mcpl.semantics import KernelInfo
from .findings import Finding
from .poly import ATOM_PREFIX, Poly, expr_to_poly

__all__ = ["check_races"]


# ---------------------------------------------------------------------------
# Alpha renaming — shadowed names (`int i` in two sibling foreachs) must not
# be conflated by the name-keyed dependence machinery.
# ---------------------------------------------------------------------------

class _Renamer:
    """Produce a copy of the kernel body with unique variable names."""

    def __init__(self, params: Sequence[ast.Param]):
        self.used: Set[str] = {p.name for p in params}
        self.scopes: List[Dict[str, str]] = [{p.name: p.name
                                              for p in params}]

    def fresh(self, name: str) -> str:
        if name not in self.used:
            self.used.add(name)
            self.scopes[-1][name] = name
            return name
        k = 2
        while f"{name}.{k}" in self.used:
            k += 1
        new = f"{name}.{k}"
        self.used.add(new)
        self.scopes[-1][name] = new
        return new

    def resolve(self, name: str) -> str:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return name  # undeclared: semantics would have rejected it

    # -- expressions --------------------------------------------------------
    def expr(self, e: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if e is None:
            return None
        if isinstance(e, (ast.IntLit, ast.FloatLit)):
            return e
        if isinstance(e, ast.Var):
            return replace(e, name=self.resolve(e.name))
        if isinstance(e, ast.Index):
            return replace(e, array=self.resolve(e.array),
                           indices=[self.expr(i) for i in e.indices])
        if isinstance(e, ast.Binary):
            return replace(e, left=self.expr(e.left),
                           right=self.expr(e.right))
        if isinstance(e, ast.Unary):
            return replace(e, operand=self.expr(e.operand))
        if isinstance(e, ast.Call):
            return replace(e, args=[self.expr(a) for a in e.args])
        return e  # pragma: no cover

    # -- statements ---------------------------------------------------------
    def stmt(self, s: Optional[ast.Stmt]) -> Optional[ast.Stmt]:
        if s is None:
            return None
        if isinstance(s, ast.Block):
            self.scopes.append({})
            out = replace(s, stmts=[self.stmt(x) for x in s.stmts])
            self.scopes.pop()
            return out
        if isinstance(s, ast.VarDecl):
            assert s.type is not None
            typ = replace(s.type, dims=[self.expr(d) for d in s.type.dims])
            init = self.expr(s.init)
            return replace(s, type=typ, name=self.fresh(s.name), init=init)
        if isinstance(s, ast.Assign):
            return replace(s, target=self.expr(s.target),
                           value=self.expr(s.value))
        if isinstance(s, ast.Foreach):
            count = self.expr(s.count)
            self.scopes.append({})
            out = replace(s, var=self.fresh(s.var), count=count,
                          body=self.stmt(s.body))
            self.scopes.pop()
            return out
        if isinstance(s, ast.For):
            self.scopes.append({})
            out = replace(s, init=self.stmt(s.init), cond=self.expr(s.cond),
                          step=self.stmt(s.step), body=self.stmt(s.body))
            self.scopes.pop()
            return out
        if isinstance(s, ast.If):
            return replace(s, cond=self.expr(s.cond),
                           then=self.stmt(s.then),
                           orelse=self.stmt(s.orelse))
        if isinstance(s, ast.While):
            return replace(s, cond=self.expr(s.cond), body=self.stmt(s.body))
        if isinstance(s, ast.Return):
            return replace(s, value=self.expr(s.value))
        if isinstance(s, ast.ExprStmt):
            return replace(s, expr=self.expr(s.expr))
        return s  # Break / Continue


# ---------------------------------------------------------------------------
# Fact collection over the renamed tree
# ---------------------------------------------------------------------------

@dataclass
class _VarFacts:
    name: str
    kind: str                        #: 'param' | 'local' | 'foreach' | 'for'
    is_array: bool = False
    dims: List[ast.Expr] = field(default_factory=list)
    qualifier: Optional[str] = None
    #: id() of every Foreach whose body (transitively) contains the decl
    enclosing: Tuple[int, ...] = ()
    #: initializer, for VarDecl-with-init variables
    init: Optional[ast.Expr] = None
    #: number of value definitions (decl init + assignments + loop steps)
    n_defs: int = 0


@dataclass
class _ForeachScope:
    stmt: ast.Foreach
    var: str
    const_count: Optional[int]
    #: id() of enclosing Foreachs, outermost first (excluding itself)
    outer: Tuple[int, ...]


@dataclass
class _ForLoop:
    var: str
    stmt: ast.For
    init: Optional[ast.Expr]
    conds: List[ast.Expr]            #: conjuncts of the condition
    step_value: Optional[ast.Expr]   #: increment expression, if `v += e`
    enclosing: Tuple[int, ...]


@dataclass
class _Access:
    node: ast.Index
    array: str
    write: bool
    line: int
    foreachs: Tuple[int, ...]


@dataclass
class _ScalarWrite:
    var: str
    line: int
    foreachs: Tuple[int, ...]


@dataclass
class _BarrierSite:
    line: int
    conds: List[Tuple[ast.Expr, Tuple[int, ...]]]   #: (cond, foreachs at cond)
    foreachs: Tuple[int, ...]


def _split_conjuncts(e: Optional[ast.Expr]) -> List[ast.Expr]:
    if e is None:
        return []
    if isinstance(e, ast.Binary) and e.op == "&&":
        return _split_conjuncts(e.left) + _split_conjuncts(e.right)
    return [e]


def _var_names(e: Optional[ast.Expr], out: Set[str]) -> None:
    if e is None:
        return
    if isinstance(e, ast.Var):
        out.add(e.name)
    elif isinstance(e, ast.Binary):
        _var_names(e.left, out)
        _var_names(e.right, out)
    elif isinstance(e, ast.Unary):
        _var_names(e.operand, out)
    elif isinstance(e, ast.Call):
        for a in e.args:
            _var_names(a, out)
    elif isinstance(e, ast.Index):
        out.add(e.array)
        for i in e.indices:
            _var_names(i, out)


def _contains_load(e: Optional[ast.Expr]) -> bool:
    if e is None:
        return False
    if isinstance(e, ast.Index):
        return True
    if isinstance(e, ast.Binary):
        return _contains_load(e.left) or _contains_load(e.right)
    if isinstance(e, ast.Unary):
        return _contains_load(e.operand)
    if isinstance(e, ast.Call):
        return any(_contains_load(a) for a in e.args)
    return False


class _Collector:
    """One walk of the renamed body gathering every fact the tests need."""

    def __init__(self, params: Sequence[ast.Param]):
        self.vars: Dict[str, _VarFacts] = {}
        self.foreachs: Dict[int, _ForeachScope] = {}
        self.foreach_order: List[int] = []
        self.for_loops: Dict[str, _ForLoop] = {}
        self.accesses: List[_Access] = []
        self.scalar_writes: List[_ScalarWrite] = []
        self.barriers: List[_BarrierSite] = []
        #: atom name -> variable names mentioned (for uniformity)
        self.atom_deps: Dict[str, Set[str]] = {}
        #: (var, rhs var names, rhs has array load) for taint propagation
        self.taint_defs: List[Tuple[str, Set[str], bool]] = []
        self.fstack: List[int] = []
        self.cstack: List[Tuple[ast.Expr, Tuple[int, ...]]] = []
        for p in params:
            self.vars[p.name] = _VarFacts(
                name=p.name, kind="param", is_array=p.type.is_array,
                dims=list(p.type.dims), n_defs=1)

    # -- expression facts ---------------------------------------------------
    def _register_atoms(self, e: Optional[ast.Expr]) -> None:
        """Record, for every sub-expression, which variables its printed
        form mentions — the dependency set of the opaque atom it may
        normalize to."""
        if e is None or isinstance(e, (ast.IntLit, ast.FloatLit, ast.Var)):
            return
        deps: Set[str] = set()
        _var_names(e, deps)
        self.atom_deps[ATOM_PREFIX + str(e)] = deps
        children: List[Optional[ast.Expr]] = []
        if isinstance(e, ast.Binary):
            children = [e.left, e.right]
        elif isinstance(e, ast.Unary):
            children = [e.operand]
        elif isinstance(e, ast.Call):
            children = list(e.args)
        elif isinstance(e, ast.Index):
            children = list(e.indices)
        for c in children:
            self._register_atoms(c)

    def expr(self, e: Optional[ast.Expr], write: bool = False) -> None:
        if e is None:
            return
        self._register_atoms(e)
        self._expr(e, write)

    def _expr(self, e: ast.Expr, write: bool) -> None:
        if isinstance(e, ast.Index):
            self.accesses.append(_Access(
                node=e, array=e.array, write=write, line=e.line,
                foreachs=tuple(self.fstack)))
            for i in e.indices:
                self._expr(i, False)
            return
        if isinstance(e, ast.Binary):
            if e.left is not None:
                self._expr(e.left, False)
            if e.right is not None:
                self._expr(e.right, False)
        elif isinstance(e, ast.Unary):
            if e.operand is not None:
                self._expr(e.operand, False)
        elif isinstance(e, ast.Call):
            if e.name == "barrier":
                self.barriers.append(_BarrierSite(
                    line=e.line, conds=list(self.cstack),
                    foreachs=tuple(self.fstack)))
            for a in e.args:
                self._expr(a, False)

    # -- statements ---------------------------------------------------------
    def _declare(self, decl: ast.VarDecl) -> None:
        assert decl.type is not None
        self.vars[decl.name] = _VarFacts(
            name=decl.name, kind="local", is_array=decl.type.is_array,
            dims=list(decl.type.dims), qualifier=decl.qualifier,
            enclosing=tuple(self.fstack), init=decl.init,
            n_defs=1 if decl.init is not None else 0)
        for d in decl.type.dims:
            self.expr(d)
        if decl.init is not None:
            self.expr(decl.init)
            deps: Set[str] = set()
            _var_names(decl.init, deps)
            self.taint_defs.append((decl.name, deps,
                                    _contains_load(decl.init)))

    def stmt(self, s: Optional[ast.Stmt]) -> None:
        if s is None:
            return
        if isinstance(s, ast.Block):
            for x in s.stmts:
                self.stmt(x)
        elif isinstance(s, ast.VarDecl):
            self._declare(s)
        elif isinstance(s, ast.Assign):
            self.expr(s.value)
            target = s.target
            if isinstance(target, ast.Index):
                self.expr(target, write=True)
            elif isinstance(target, ast.Var):
                facts = self.vars.get(target.name)
                if facts is not None:
                    facts.n_defs += 1
                    if set(facts.enclosing) < set(self.fstack):
                        self.scalar_writes.append(_ScalarWrite(
                            var=target.name, line=s.line,
                            foreachs=tuple(self.fstack)))
                deps = set()
                _var_names(s.value, deps)
                if s.op != "=":
                    deps.add(target.name)
                self.taint_defs.append((target.name, deps,
                                        _contains_load(s.value)))
        elif isinstance(s, ast.ExprStmt):
            self.expr(s.expr)
        elif isinstance(s, ast.Return):
            self.expr(s.value)
        elif isinstance(s, (ast.Break, ast.Continue)):
            pass
        elif isinstance(s, ast.If):
            self.expr(s.cond)
            self.cstack.append((s.cond, tuple(self.fstack)))
            self.stmt(s.then)
            self.stmt(s.orelse)
            self.cstack.pop()
        elif isinstance(s, ast.While):
            self.expr(s.cond)
            self.cstack.append((s.cond, tuple(self.fstack)))
            self.stmt(s.body)
            self.cstack.pop()
        elif isinstance(s, ast.For):
            var = None
            if isinstance(s.init, ast.VarDecl):
                self._declare(s.init)
                var = s.init.name
            elif isinstance(s.init, ast.Assign):
                self.stmt(s.init)
                if isinstance(s.init.target, ast.Var):
                    var = s.init.target.name
            self.expr(s.cond)
            step_value = None
            if isinstance(s.step, ast.Assign) \
                    and isinstance(s.step.target, ast.Var) \
                    and s.step.target.name == var:
                if s.step.op == "+=":
                    step_value = s.step.value
                elif s.step.op == "=" and isinstance(s.step.value, ast.Binary) \
                        and s.step.value.op == "+" \
                        and isinstance(s.step.value.left, ast.Var) \
                        and s.step.value.left.name == var:
                    step_value = s.step.value.right
            if var is not None:
                init_expr = s.init.init if isinstance(s.init, ast.VarDecl) \
                    else (s.init.value if isinstance(s.init, ast.Assign)
                          else None)
                self.for_loops[var] = _ForLoop(
                    var=var, stmt=s, init=init_expr,
                    conds=_split_conjuncts(s.cond), step_value=step_value,
                    enclosing=tuple(self.fstack))
                if var in self.vars:
                    self.vars[var].kind = "for"
            if s.cond is not None:
                self.cstack.append((s.cond, tuple(self.fstack)))
            self.stmt(s.body)
            self.stmt(s.step)
            if s.cond is not None:
                self.cstack.pop()
        elif isinstance(s, ast.Foreach):
            self.expr(s.count)
            const_count = s.count.value \
                if isinstance(s.count, ast.IntLit) else None
            scope = _ForeachScope(stmt=s, var=s.var, const_count=const_count,
                                  outer=tuple(self.fstack))
            self.foreachs[id(s)] = scope
            self.foreach_order.append(id(s))
            self.fstack.append(id(s))
            self.vars[s.var] = _VarFacts(
                name=s.var, kind="foreach", enclosing=tuple(self.fstack),
                n_defs=1)
            self.stmt(s.body)
            self.fstack.pop()


# ---------------------------------------------------------------------------
# The analysis proper
# ---------------------------------------------------------------------------

class _RaceAnalysis:
    def __init__(self, info: KernelInfo):
        self.info = info
        renamer = _Renamer(info.kernel.params)
        body = renamer.stmt(info.kernel.body)
        self.col = _Collector(info.kernel.params)
        self.col.stmt(body)
        self.subs = self._build_substitutions()
        self.const_ranges = self._build_const_ranges()
        self._uniform_cache: Dict[Tuple[int, str], bool] = {}

    # -- single-definition inlining -----------------------------------------
    def _build_substitutions(self) -> Dict[str, Poly]:
        subs: Dict[str, Poly] = {}
        visiting: Set[str] = set()

        def resolve(name: str) -> Optional[Poly]:
            if name in subs:
                return subs[name]
            facts = self.col.vars.get(name)
            if facts is None or facts.kind != "local" or facts.is_array \
                    or facts.n_defs != 1 or facts.init is None \
                    or name in visiting:
                return None
            visiting.add(name)
            deps: Set[str] = set()
            _var_names(facts.init, deps)
            inner: Dict[str, Poly] = {}
            for dep in deps:
                p = resolve(dep)
                if p is not None:
                    inner[dep] = p
            visiting.discard(name)
            subs[name] = expr_to_poly(facts.init, inner)
            return subs[name]

        for name in list(self.col.vars):
            resolve(name)
        return subs

    def _poly(self, e: ast.Expr) -> Poly:
        return expr_to_poly(e, self.subs)

    # -- constant ranges -----------------------------------------------------
    def _build_const_ranges(self) -> Dict[str, Tuple[int, int]]:
        out: Dict[str, Tuple[int, int]] = {}
        for scope in self.col.foreachs.values():
            if scope.const_count is not None and scope.const_count > 0:
                out[scope.var] = (0, scope.const_count - 1)
        for fl in self.col.for_loops.values():
            if fl.init is None or fl.step_value is None:
                continue
            lo = expr_to_poly(fl.init, self.subs).constant_value()
            step = expr_to_poly(fl.step_value, self.subs).constant_value()
            if lo is None or step is None or step <= 0 \
                    or lo.denominator != 1 or step.denominator != 1:
                continue
            hi: Optional[int] = None
            for cond in fl.conds:
                bound = self._cond_bound(cond, fl.var)
                if bound is None:
                    continue
                limit, strict = bound
                c = self._poly(limit).constant_value()
                if c is None or c.denominator != 1:
                    continue
                top = int(c) - 1 if strict else int(c)
                # align to the stride
                if top >= int(lo):
                    top = int(lo) + (top - int(lo)) // int(step) * int(step)
                hi = top if hi is None else min(hi, top)
            if hi is not None and hi >= int(lo):
                out[fl.var] = (int(lo), hi)
        return out

    @staticmethod
    def _cond_bound(cond: ast.Expr, var: str
                    ) -> Optional[Tuple[ast.Expr, bool]]:
        """``var < E`` / ``var <= E`` (possibly flipped): (E, strict)."""
        if not isinstance(cond, ast.Binary):
            return None
        left, right, op = cond.left, cond.right, cond.op
        if isinstance(left, ast.Var) and left.name == var and right is not None:
            if op == "<":
                return right, True
            if op == "<=":
                return right, False
        if isinstance(right, ast.Var) and right.name == var and left is not None:
            if op == ">":
                return left, True
            if op == ">=":
                return left, False
        return None

    # -- uniformity ----------------------------------------------------------
    def _is_uniform(self, sym: str, fid: int) -> bool:
        """Same value in every iteration of the given foreach?"""
        key = (fid, sym)
        if key in self._uniform_cache:
            return self._uniform_cache[key]
        self._uniform_cache[key] = False   # cycle-safe default
        result = self._compute_uniform(sym, fid)
        self._uniform_cache[key] = result
        return result

    def _compute_uniform(self, sym: str, fid: int) -> bool:
        if sym.startswith(ATOM_PREFIX):
            deps = self.col.atom_deps.get(sym)
            if deps is None:
                return False
            return all(self._is_uniform(d, fid) for d in deps)
        facts = self.col.vars.get(sym)
        if facts is None:
            return False       # stride placeholders and unknowns
        if fid not in facts.enclosing:
            return True        # declared outside the foreach body
        if facts.kind == "local" and facts.n_defs == 1 \
                and facts.init is not None:
            deps: Set[str] = set()
            _var_names(facts.init, deps)
            return all(self._is_uniform(d, fid) for d in deps)
        return False

    # -- bounds over independent symbols -------------------------------------
    def _subst_bound(self, p: Poly, fid: int, u: str, lower: bool
                     ) -> Optional[Poly]:
        """Replace independent symbols by range endpoints.

        ``lower=True`` produces a valid lower bound, else an upper bound.
        Symbols are non-negative, so 0 is always a usable lower endpoint.
        """
        for sym in set(p.symbols()):
            if sym == u or self._is_uniform(sym, fid):
                continue
            try:
                coeff = p.coefficient_of(sym)
            except ValueError:
                return None
            rng = self.const_ranges.get(sym)
            if coeff.is_nonnegative():
                if lower:
                    p = p.substitute(sym, Poly.const(0))
                elif rng is not None:
                    p = p.substitute(sym, Poly.const(rng[1]))
                else:
                    return None
            elif coeff.is_nonpositive():
                if lower:
                    if rng is None:
                        return None
                    p = p.substitute(sym, Poly.const(rng[1]))
                else:
                    p = p.substitute(sym, Poly.const(0))
            else:
                return None
        return p

    # -- chunk disjointness ---------------------------------------------------
    def _chunk_disjoint(self, var: str, fid: int, u: str) -> bool:
        fl = self.col.for_loops.get(var)
        facts = self.col.vars.get(var)
        if fl is None or facts is None or fl.init is None:
            return False
        if facts.n_defs > 2:       # init + step only; other writes break it
            return False
        if fl.step_value is None:
            return False
        if not self._poly(fl.step_value).is_nonnegative():
            return False
        e0 = self._poly(fl.init)
        try:
            mono = e0.coefficient_of(u)
        except ValueError:
            return False
        if not mono.is_nonnegative():
            return False           # start must be non-decreasing in u
        e0_lb = self._subst_bound(e0, fid, u, lower=True)
        if e0_lb is None:
            return False
        shifted = e0_lb.substitute(u, Poly.var(u) + Poly.const(1))
        for cond in fl.conds:
            bound = self._cond_bound(cond, var)
            if bound is None:
                continue
            limit, strict = bound
            e1 = self._poly(limit)
            if not strict:
                e1 = e1 + Poly.const(1)
            e1_ub = self._subst_bound(e1, fid, u, lower=False)
            if e1_ub is None:
                continue
            if (shifted - e1_ub).is_nonnegative():
                return True
        return False

    # -- strided-variable expansion ------------------------------------------
    def _expand_strides(self, p: Poly) -> Poly:
        for _ in range(3):
            changed = False
            for sym in list(set(p.symbols())):
                fl = self.col.for_loops.get(sym)
                if fl is None or sym in self.const_ranges \
                        or fl.init is None or fl.step_value is None:
                    continue
                step = self._poly(fl.step_value).constant_value()
                if step is None or step < 1 or step.denominator != 1:
                    continue
                init = self._poly(fl.init)
                if init.mentions(sym):
                    continue
                repl = init + Poly.var(sym + "#stride").scale(step)
                p = p.substitute(sym, repl)
                changed = True
            if not changed:
                break
        return p

    # -- per-dimension independence -------------------------------------------
    def _const_range(self, p: Poly) -> Optional[Tuple[Fraction, Fraction]]:
        """Interval of a poly over independent symbols with known ranges."""
        lo = hi = Fraction(0)
        for mono, coeff in p.terms.items():
            if mono == ():
                lo += coeff
                hi += coeff
                continue
            if len(mono) != 1:
                return None
            rng = self.const_ranges.get(mono[0])
            if rng is None:
                return None
            vals = (coeff * rng[0], coeff * rng[1])
            lo += min(vals)
            hi += max(vals)
        return lo, hi

    def _dim_independent(self, p: Poly, q: Poly, fid: int) -> bool:
        scope = self.col.foreachs[fid]
        u = scope.var
        n = scope.const_count

        # Test (iv): chunked for-variable subscripts.
        if p == q and p == Poly.var(next(iter(p.symbols()), "")) \
                and not p.is_constant:
            var = next(iter(p.symbols()))
            if var in self.col.for_loops and not self._is_uniform(var, fid):
                if self._chunk_disjoint(var, fid, u):
                    return True

        p = self._expand_strides(p)
        q = self._expand_strides(q)

        try:
            a_p = p.coefficient_of(u).constant_value()
            a_q = q.coefficient_of(u).constant_value()
        except ValueError:
            return False
        if a_p is None or a_q is None or a_p != a_q:
            return False
        a = a_p
        rest_p = p - Poly.var(u).scale(a)
        rest_q = q - Poly.var(u).scale(a)

        def split(r: Poly) -> Tuple[Poly, Poly]:
            shared: Dict[Tuple[str, ...], Fraction] = {}
            indep: Dict[Tuple[str, ...], Fraction] = {}
            for mono, coeff in r.terms.items():
                if all(self._is_uniform(s, fid) for s in mono):
                    shared[mono] = coeff
                else:
                    indep[mono] = coeff
            return Poly(shared), Poly(indep)

        shared_p, f_p = split(rest_p)
        shared_q, f_q = split(rest_q)
        delta = shared_p - shared_q

        if a == 0:
            diff = delta.constant_value()
            if f_p.is_zero() and f_q.is_zero() and diff is not None \
                    and diff != 0:
                return True    # distinct fixed offsets
            return False

        # Test (i): identical affine form over uniform data.
        if f_p.is_zero() and f_q.is_zero() and delta.is_zero():
            return True

        dc = delta.constant_value()
        if dc is None:
            return False

        # Test (ii): residual difference provably smaller than |a|.
        rng_p = self._const_range(f_p)
        rng_q = self._const_range(f_q)
        if rng_p is not None and rng_q is not None:
            lo = dc + rng_p[0] - rng_q[1]
            hi = dc + rng_p[1] - rng_q[0]
            if max(abs(lo), abs(hi)) < abs(a):
                return True

        # Test (iii): GCD / modular.
        if a.denominator != 1 or dc.denominator != 1:
            return False
        coeffs: List[int] = []
        for f in (f_p, f_q):
            for mono, coeff in f.terms.items():
                if len(mono) != 1 or coeff.denominator != 1:
                    return False
                coeffs.append(abs(int(coeff)))
        ai, di = int(a), int(dc)
        if not coeffs:
            if di % ai != 0:
                return True
            d0 = -di // ai
            return d0 == 0 or (n is not None and abs(d0) > n - 1)
        g = 0
        for c in coeffs:
            g = gcd(g, c)
        if g == 0:
            return False
        h = gcd(abs(ai), g)
        if di % h != 0:
            return True
        m = g // h
        if m <= 1 or n is None:
            return False
        inv = pow((ai // h) % m, -1, m)
        d0 = (-(di // h) * inv) % m
        min_nonzero = m if d0 == 0 else min(d0, m - d0)
        return min_nonzero > n - 1

    # -- linearization ---------------------------------------------------------
    def _dim_polys(self, acc: _Access) -> List[Poly]:
        node = acc.node
        facts = self.col.vars.get(acc.array)
        if facts is not None and len(node.indices) == 2 \
                and len(facts.dims) == 2 \
                and isinstance(facts.dims[1], ast.IntLit):
            inner = facts.dims[1].value
            d0, d1 = node.indices
            if isinstance(d0, ast.Binary) and d0.op == "/" \
                    and isinstance(d1, ast.Binary) and d1.op == "%" \
                    and isinstance(d0.right, ast.IntLit) \
                    and isinstance(d1.right, ast.IntLit) \
                    and d0.right.value == inner \
                    and d1.right.value == inner \
                    and str(d0.left) == str(d1.left) \
                    and d0.left is not None:
                # arr[e/c, e%c] with c == declared inner dim: the pair is
                # injective in e — compare the linear index instead.
                return [self._poly(d0.left)]
        return [self._poly(i) for i in node.indices]

    # -- findings --------------------------------------------------------------
    def array_races(self) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[str, str, int, int]] = set()
        for fid in self.col.foreach_order:
            scope = self.col.foreachs[fid]
            inside = [a for a in self.col.accesses if fid in a.foreachs]
            by_array: Dict[str, List[_Access]] = {}
            for a in inside:
                facts = self.col.vars.get(a.array)
                if facts is not None and fid in facts.enclosing:
                    continue       # iteration-private array
                by_array.setdefault(a.array, []).append(a)
            for array, accs in by_array.items():
                for i, w in enumerate(accs):
                    if not w.write:
                        continue
                    for j, other in enumerate(accs):
                        # Each unordered write pair once, ordered by the
                        # accesses' (stable) collection order — not by
                        # id(), whose ordering varies across runs and
                        # would flip which write the message leads with.
                        if other.write and j < i:
                            continue
                        if self._pair_conflicts(w, other, fid):
                            lo, hi = sorted((w.line, other.line))
                            key = (array, scope.var, lo, hi)
                            if key in seen:
                                continue
                            seen.add(key)
                            what = "write" if other.write else "read"
                            where = f"write at line {w.line}" \
                                if w.line == other.line and other.write \
                                and w.node is other.node \
                                else (f"write at line {w.line} vs {what} "
                                      f"at line {other.line}")
                            findings.append(Finding(
                                code="MCL101", line=hi,
                                message=(
                                    f"iterations of foreach "
                                    f"({self._orig(scope.var)}) may touch "
                                    f"the same element of {array!r} "
                                    f"({where})"),
                                hint=("privatize the array, restructure the "
                                      "subscripts to partition the index "
                                      "range, or suppress with a "
                                      "justification if the overlap is "
                                      "intentional")))
        return findings

    def _pair_conflicts(self, a: _Access, b: _Access, fid: int) -> bool:
        pa = self._dim_polys(a)
        pb = self._dim_polys(b)
        if len(pa) != len(pb):
            pa = [self._poly(i) for i in a.node.indices]
            pb = [self._poly(i) for i in b.node.indices]
        return not any(self._dim_independent(p, q, fid)
                       for p, q in zip(pa, pb))

    @staticmethod
    def _orig(name: str) -> str:
        return name.split(".")[0]

    def scalar_races(self) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[str, int]] = set()
        for sw in self.col.scalar_writes:
            facts = self.col.vars.get(sw.var)
            if facts is None or facts.is_array:
                continue
            key = (sw.var, sw.line)
            if key in seen:
                continue
            seen.add(key)
            inner = self.col.foreachs[sw.foreachs[-1]]
            findings.append(Finding(
                code="MCL102", line=sw.line,
                message=(f"scalar {self._orig(sw.var)!r} is declared outside "
                         f"foreach ({self._orig(inner.var)}) but written "
                         f"inside it: iterations race on the same location"),
                hint=("declare the variable inside the foreach body, or "
                      "suppress with a justification for intentional "
                      "reductions")))
        return findings

    # -- barrier divergence ----------------------------------------------------
    def barrier_divergence(self) -> List[Finding]:
        if not self.col.barriers:
            return []
        taint: Dict[str, Set[str]] = {}
        for fid in self.col.foreachs:
            var = self.col.foreachs[fid].var
            taint[var] = {var}
        changed = True
        while changed:
            changed = False
            for var, deps, has_load in self.col.taint_defs:
                new = set(taint.get(var, set()))
                if has_load:
                    new.add("#data")
                for d in deps:
                    new |= taint.get(d, set())
                if new != taint.get(var, set()):
                    taint[var] = new
                    changed = True

        findings: List[Finding] = []
        for site in self.col.barriers:
            if not site.foreachs:
                continue
            innermost = site.foreachs[-1]
            divergent_sources = {"#data"}
            for fid, scope in self.col.foreachs.items():
                if innermost in scope.outer or fid == innermost:
                    divergent_sources.add(scope.var)
            for cond, _ in site.conds:
                if _contains_load(cond):
                    self._report_divergence(findings, site, cond)
                    break
                names: Set[str] = set()
                _var_names(cond, names)
                tainted = set()
                for nm in names:
                    tainted |= taint.get(nm, set())
                if tainted & divergent_sources:
                    self._report_divergence(findings, site, cond)
                    break
        return findings

    def _report_divergence(self, findings: List[Finding],
                           site: _BarrierSite, cond: ast.Expr) -> None:
        findings.append(Finding(
            code="MCL401", line=site.line,
            message=(f"barrier() at line {site.line} is guarded by the "
                     f"data-dependent condition ({cond}): not every "
                     f"iteration is guaranteed to reach it"),
            hint="hoist the barrier out of the divergent branch"))


def check_races(info: KernelInfo) -> List[Finding]:
    """MCL101/MCL102/MCL401 findings for one checked kernel."""
    analysis = _RaceAnalysis(info)
    findings = analysis.array_races()
    findings.extend(analysis.scalar_races())
    findings.extend(analysis.barrier_divergence())
    return findings
