"""Findings: the verifier's diagnostic model and renderers.

The generic machinery — :class:`Finding`, the shared rule registry,
suppression scanning and the text/JSON renderers — lives in
:mod:`repro.analyze.findings` and is shared with the whole-runtime
determinism sanitizer (``repro analyze``).  This module registers the
MCPL verifier's ``MCL…`` rule catalogue and re-exports the shared
surface with the verifier's historical defaults:

* suppressions are scanned from ``//``-style kernel comments
  (``// lint: ignore[MCL201] justification``) on the **raw** kernel
  source — the lexer strips comments, so suppression handling must
  happen on the text, not the token stream;
* the JSON renderer keeps its ``"kernel"`` key for each finding's
  origin tag.

Suppression grammar, per line::

    ... code ...   // lint: ignore[MCL201]            (same line)
    // lint: ignore[MCL101, MCL201] tile staging      (line before)
    // lint: ignore                                    (all codes)

A suppression comment on a line of its own applies to the next
non-comment line; trailing text after the bracket is a free-form
justification and is encouraged.
"""

from __future__ import annotations

from typing import List, Sequence

from ...analyze.findings import (
    RULES,
    Finding,
    Rule,
    Severity,
    Suppressions,
    filter_suppressed,
    register_rules,
)
from ...analyze.findings import render_json as _render_json
from ...analyze.findings import render_text as _render_text
from ...analyze.findings import scan_suppressions as _scan_suppressions

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "Finding",
    "Suppressions",
    "scan_suppressions",
    "render_text",
    "render_json",
    "filter_suppressed",
]


#: the MCL rule catalogue — codes are stable and documented in docs/lint.md
register_rules([
    Rule("MCL101", Severity.ERROR,
         "cross-iteration array race: two foreach iterations may touch "
         "the same element and at least one access is a write"),
    Rule("MCL102", Severity.ERROR,
         "cross-iteration scalar race: a variable declared outside a "
         "foreach is written inside it"),
    Rule("MCL201", Severity.ERROR,
         "possible out-of-bounds subscript: index not provably within "
         "the declared dimension"),
    Rule("MCL301", Severity.ERROR,
         "read of a possibly-uninitialized local variable"),
    Rule("MCL302", Severity.WARNING,
         "dead store: assigned value is never read"),
    Rule("MCL303", Severity.WARNING,
         "unused kernel parameter"),
    Rule("MCL401", Severity.ERROR,
         "barrier under divergent control flow: not all threads are "
         "guaranteed to reach it"),
    Rule("MCL501", Severity.ERROR,
         "declared local/private memory exceeds the hardware level's "
         "capacity"),
])


def scan_suppressions(source: str) -> Suppressions:
    """Scan raw kernel source for ``// lint: ignore[...]`` comments."""
    return _scan_suppressions(source, marker="//", tag="lint")


def render_text(findings: Sequence[Finding], *,
                source_name: str = "<kernel>") -> str:
    """GCC-style one-line-per-finding text rendering."""
    return _render_text(findings, source_name=source_name)


def render_json(findings: Sequence[Finding], *,
                source_name: str = "<kernel>") -> str:
    """Stable machine-readable rendering (sorted, one object per finding)."""
    return _render_json(findings, source_name=source_name,
                        origin_key="kernel")
