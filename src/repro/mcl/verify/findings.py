"""Findings: the verifier's diagnostic model and renderers.

Every rule the verifier can fire has a *stable code* (``MCL101`` etc.), a
default severity, and a one-line description.  Analyses produce
:class:`Finding` records; the orchestrator filters them against inline
``// lint: ignore[CODE]`` suppressions scanned from the **raw** kernel
source (the lexer strips comments, so suppression handling must happen on
the text, not the token stream) and renders them as human-readable text or
machine-readable JSON.

Suppression grammar, per line::

    ... code ...   // lint: ignore[MCL201]            (same line)
    // lint: ignore[MCL101, MCL201] tile staging      (line before)
    // lint: ignore                                    (all codes)

A suppression comment on a line of its own applies to the next
non-comment line; trailing text after the bracket is a free-form
justification and is encouraged.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "Finding",
    "Suppressions",
    "scan_suppressions",
    "render_text",
    "render_json",
]


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """A verifier rule: stable code, severity, one-line summary."""

    code: str
    severity: Severity
    summary: str


#: the rule catalogue — codes are stable and documented in docs/lint.md
RULES: Dict[str, Rule] = {
    r.code: r
    for r in [
        Rule("MCL101", Severity.ERROR,
             "cross-iteration array race: two foreach iterations may touch "
             "the same element and at least one access is a write"),
        Rule("MCL102", Severity.ERROR,
             "cross-iteration scalar race: a variable declared outside a "
             "foreach is written inside it"),
        Rule("MCL201", Severity.ERROR,
             "possible out-of-bounds subscript: index not provably within "
             "the declared dimension"),
        Rule("MCL301", Severity.ERROR,
             "read of a possibly-uninitialized local variable"),
        Rule("MCL302", Severity.WARNING,
             "dead store: assigned value is never read"),
        Rule("MCL303", Severity.WARNING,
             "unused kernel parameter"),
        Rule("MCL401", Severity.ERROR,
             "barrier under divergent control flow: not all threads are "
             "guaranteed to reach it"),
        Rule("MCL501", Severity.ERROR,
             "declared local/private memory exceeds the hardware level's "
             "capacity"),
    ]
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule code, location, message, optional fix hint."""

    code: str
    line: int
    message: str
    hint: Optional[str] = None
    kernel: Optional[str] = None

    @property
    def severity(self) -> Severity:
        return RULES[self.code].severity

    def sort_key(self) -> tuple:
        return (self.kernel or "", self.line, self.code, self.message)


# ---------------------------------------------------------------------------
# Inline suppression scanning
# ---------------------------------------------------------------------------

_IGNORE_RE = re.compile(r"//\s*lint:\s*ignore(?:\[([A-Z0-9,\s]*)\])?")
_COMMENT_ONLY_RE = re.compile(r"^\s*//")


@dataclass
class Suppressions:
    """Suppressed rule codes per 1-based source line.

    ``by_line[n]`` is the set of codes suppressed on line ``n``; the empty
    string element means "all codes".
    """

    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def matches(self, line: int, code: str) -> bool:
        codes = self.by_line.get(line)
        if not codes:
            return False
        return "" in codes or code in codes


def scan_suppressions(source: str) -> Suppressions:
    """Scan raw kernel source for ``// lint: ignore[...]`` comments.

    A suppression on a comment-only line applies to the next non-comment,
    non-blank line; otherwise it applies to its own line.
    """
    sup = Suppressions()
    lines = source.splitlines()
    pending: Set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        m = _IGNORE_RE.search(text)
        codes: Optional[Set[str]] = None
        if m:
            if m.group(1) is None:
                codes = {""}
            else:
                codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
                if not codes:
                    codes = {""}
        if _COMMENT_ONLY_RE.match(text):
            if codes:
                pending |= codes
            continue
        if not text.strip():
            continue
        applied = set(codes or ())
        applied |= pending
        pending = set()
        if applied:
            sup.by_line.setdefault(lineno, set()).update(applied)
    return sup


def filter_suppressed(findings: Iterable[Finding],
                      suppressions: Suppressions) -> List[Finding]:
    return [f for f in findings
            if not suppressions.matches(f.line, f.code)]


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------

def render_text(findings: Sequence[Finding], *,
                source_name: str = "<kernel>") -> str:
    """GCC-style one-line-per-finding text rendering."""
    if not findings:
        return f"{source_name}: clean (0 findings)"
    out = []
    for f in sorted(findings, key=Finding.sort_key):
        where = f.kernel or source_name
        out.append(f"{where}:{f.line}: {f.severity} {f.code}: {f.message}")
        if f.hint:
            out.append(f"    hint: {f.hint}")
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    out.append(f"{source_name}: {errors} error(s), {warnings} warning(s)")
    return "\n".join(out)


def render_json(findings: Sequence[Finding], *,
                source_name: str = "<kernel>") -> str:
    """Stable machine-readable rendering (sorted, one object per finding)."""
    payload = {
        "source": source_name,
        "findings": [
            {
                "code": f.code,
                "severity": str(f.severity),
                "kernel": f.kernel,
                "line": f.line,
                "message": f.message,
                "hint": f.hint,
                "summary": RULES[f.code].summary,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
