"""Safety lints: bounds, initialization, dead code, and memory budgets.

These analyses consume the dataflow core — interval analysis for the
out-of-bounds check (MCL201), the CFG's reaching definitions and def-use
chains for uninitialized reads (MCL301) and dead stores (MCL302) — plus two
purely syntactic walks for unused parameters (MCL303) and the local/private
memory budget of the kernel's hardware level (MCL501).

MCL201 has *may* semantics: a subscript is reported when the analysis cannot
prove ``0 <= index <= dim - 1``.  Proofs use the interval bounds first and
fall back to matching guard *facts*: a condition like ``if (base + x / 4 <
nk)`` produces the fact ``poly(base + x/4) < nk``, which proves any
subscript differing from the guarded expression by a known constant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..mcpl import ast
from ..mcpl.semantics import KernelInfo
from .cfg import CFG, build_cfg, def_use_chains, reaching_definitions
from .findings import Finding
from .intervals import Interval, IntervalAnalysis, analyze_intervals
from .poly import Poly, expr_to_poly

__all__ = ["check_bounds", "check_dataflow", "check_params", "check_memory"]


# ---------------------------------------------------------------------------
# MCL201 — out-of-bounds subscripts
# ---------------------------------------------------------------------------

def _prove_upper(iv: Interval, poly: Poly, limit: Poly,
                 facts: Sequence[Tuple[Poly, Poly]]) -> bool:
    """Prove ``subscript <= limit`` from interval bounds or guard facts."""
    if iv.bounded_above_by(limit):
        return True
    for lhs, bound in facts:
        # fact: lhs < bound.  subscript = lhs + delta  =>  subscript <=
        # bound - 1 + delta, which suffices when bound + delta <= limit + 1.
        delta = (poly - lhs).constant_value()
        if delta is None:
            continue
        if (limit + Poly.const(1) - bound - Poly.const(delta)
                ).is_nonnegative():
            return True
    return False


def check_bounds(info: KernelInfo,
                 analysis: Optional[IntervalAnalysis] = None
                 ) -> List[Finding]:
    """MCL201: subscripts not provably within the declared dimensions."""
    if analysis is None:
        analysis = analyze_intervals(info)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, int, str]] = set()
    for rec in analysis.accesses:
        typ = info.symbols.get(rec.array)
        if typ is None or not typ.is_array:
            continue
        for dim_no, ((idx, iv, poly), dim_expr) in enumerate(
                zip(rec.dims, typ.dims)):
            dim_poly = expr_to_poly(dim_expr)
            limit = dim_poly - Poly.const(1)
            low_ok = iv.nonneg()
            high_ok = _prove_upper(iv, poly, limit, rec.facts)
            if low_ok and high_ok:
                continue
            key = (rec.array, rec.line, dim_no, str(idx))
            if key in seen:
                continue
            seen.add(key)
            which = []
            if not low_ok:
                which.append(">= 0")
            if not high_ok:
                which.append(f"< {dim_expr}")
            findings.append(Finding(
                code="MCL201", line=rec.line,
                message=(f"subscript ({idx}) of {rec.array!r} "
                         f"(dimension {dim_no}) is not provably "
                         f"{' and '.join(which)}"),
                hint=("guard the access, tighten the loop bounds, or "
                      "suppress with a justification if the range is "
                      "guaranteed by the caller")))
    return findings


# ---------------------------------------------------------------------------
# MCL301 / MCL302 — uninitialized reads and dead stores
# ---------------------------------------------------------------------------

def check_dataflow(info: KernelInfo,
                   cfg: Optional[CFG] = None) -> List[Finding]:
    """MCL301 (read of maybe-uninitialized local) and MCL302 (dead store)."""
    if cfg is None:
        cfg = build_cfg(info)
    in_sets = reaching_definitions(cfg)
    chains = def_use_chains(cfg, in_sets)
    by_id = {d.def_id: d for d in cfg.definitions}
    findings: List[Finding] = []

    # MCL301: an uninitialized declaration reaches a read of the variable.
    seen: Set[Tuple[str, int]] = set()
    for node in cfg.nodes:
        if not node.uses:
            continue
        for def_id in sorted(in_sets[node.index]):
            d = by_id[def_id]
            if d.initialized or d.var not in node.uses:
                continue
            key = (d.var, node.line)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                code="MCL301", line=node.line,
                message=(f"{d.var!r} may be read before it is assigned "
                         f"(declared without initializer at line {d.line})"),
                hint="initialize the variable at its declaration"))

    # MCL302: a stored value that no execution path ever reads.
    for d in cfg.definitions:
        if d.kind not in ("decl", "assign"):
            continue
        if d.kind == "decl":
            if not isinstance(d.stmt, ast.VarDecl):
                continue
            assert d.stmt.type is not None
            if d.stmt.type.is_array or d.stmt.init is None:
                continue          # nothing is stored
        if chains[d.def_id]:
            continue
        what = "initializer of" if d.kind == "decl" else "value assigned to"
        findings.append(Finding(
            code="MCL302", line=d.line,
            message=f"dead store: the {what} {d.var!r} is never read",
            hint="remove the assignment or use the value"))
    return findings


# ---------------------------------------------------------------------------
# MCL303 — unused parameters
# ---------------------------------------------------------------------------

def _names_in(e: Optional[ast.Expr], out: Set[str]) -> None:
    if e is None:
        return
    if isinstance(e, ast.Var):
        out.add(e.name)
    elif isinstance(e, ast.Index):
        out.add(e.array)
        for i in e.indices:
            _names_in(i, out)
    elif isinstance(e, ast.Binary):
        _names_in(e.left, out)
        _names_in(e.right, out)
    elif isinstance(e, ast.Unary):
        _names_in(e.operand, out)
    elif isinstance(e, ast.Call):
        for a in e.args:
            _names_in(a, out)


def _names_in_stmt(s: Optional[ast.Stmt], out: Set[str]) -> None:
    if s is None:
        return
    if isinstance(s, ast.Block):
        for x in s.stmts:
            _names_in_stmt(x, out)
    elif isinstance(s, ast.VarDecl):
        assert s.type is not None
        for d in s.type.dims:
            _names_in(d, out)
        _names_in(s.init, out)
    elif isinstance(s, ast.Assign):
        _names_in(s.target, out)
        _names_in(s.value, out)
    elif isinstance(s, ast.ExprStmt):
        _names_in(s.expr, out)
    elif isinstance(s, ast.Return):
        _names_in(s.value, out)
    elif isinstance(s, ast.If):
        _names_in(s.cond, out)
        _names_in_stmt(s.then, out)
        _names_in_stmt(s.orelse, out)
    elif isinstance(s, ast.While):
        _names_in(s.cond, out)
        _names_in_stmt(s.body, out)
    elif isinstance(s, ast.For):
        _names_in_stmt(s.init, out)
        _names_in(s.cond, out)
        _names_in_stmt(s.step, out)
        _names_in_stmt(s.body, out)
    elif isinstance(s, ast.Foreach):
        _names_in(s.count, out)
        _names_in_stmt(s.body, out)


def check_params(info: KernelInfo) -> List[Finding]:
    """MCL303: parameters mentioned neither in the body nor in any shape."""
    used: Set[str] = set()
    _names_in_stmt(info.kernel.body, used)
    for p in info.kernel.params:
        for d in p.type.dims:
            _names_in(d, used)
    findings: List[Finding] = []
    for p in info.kernel.params:
        if p.name not in used:
            findings.append(Finding(
                code="MCL303", line=info.kernel.body.line,
                message=(f"parameter {p.name!r} of kernel "
                         f"{info.kernel.name!r} is never used"),
                hint="drop the parameter or use it"))
    return findings


# ---------------------------------------------------------------------------
# MCL501 — local/private memory budget of the hardware level
# ---------------------------------------------------------------------------

def _collect_decls(s: Optional[ast.Stmt], out: List[ast.VarDecl]) -> None:
    if s is None:
        return
    if isinstance(s, ast.Block):
        for x in s.stmts:
            _collect_decls(x, out)
    elif isinstance(s, ast.VarDecl):
        out.append(s)
    elif isinstance(s, ast.If):
        _collect_decls(s.then, out)
        _collect_decls(s.orelse, out)
    elif isinstance(s, (ast.While, ast.Foreach)):
        _collect_decls(s.body, out)
    elif isinstance(s, ast.For):
        _collect_decls(s.init, out)
        _collect_decls(s.body, out)


def check_memory(info: KernelInfo) -> List[Finding]:
    """MCL501: cumulative declared bytes per memory space vs its capacity."""
    decls: List[ast.VarDecl] = []
    _collect_decls(info.kernel.body, decls)
    totals: Dict[str, int] = {}
    findings: List[Finding] = []
    reported: Set[str] = set()
    for decl in decls:
        if decl.qualifier is None or decl.qualifier == "const":
            continue
        space = info.description.memory_space(decl.qualifier)
        if space is None or space.capacity_bytes is None:
            continue
        assert decl.type is not None
        size = decl.type.element_bytes
        for dim in decl.type.dims:
            if not isinstance(dim, ast.IntLit):
                size = 0          # symbolic shape: not countable
                break
            size *= dim.value
        if size == 0:
            continue
        total = totals.get(decl.qualifier, 0) + size
        totals[decl.qualifier] = total
        if total > space.capacity_bytes and decl.qualifier not in reported:
            reported.add(decl.qualifier)
            findings.append(Finding(
                code="MCL501", line=decl.line,
                message=(f"declaring {decl.name!r} brings {decl.qualifier} "
                         f"memory use to {total} bytes, exceeding the "
                         f"{int(space.capacity_bytes)}-byte capacity at "
                         f"level {info.description.name!r}"),
                hint=("shrink the tile, lower the unroll factor, or "
                      "suppress with a justification if the target "
                      "hardware is known to have more")))
    return findings
