"""Many-Core Levels (MCL): kernels for varying many-core hardware.

MCL (Hijma et al., "Stepwise-refinement for performance") provides:

* a hierarchy of hardware descriptions (:mod:`repro.mcl.hdl`),
* the MCPL kernel language (:mod:`repro.mcl.mcpl`),
* a compiler with level translation, performance feedback, static cost
  analysis and OpenCL/glue code generation (:mod:`repro.mcl.compiler`),
* kernel-version management with most-specific selection per device
  (:mod:`repro.mcl.kernels`).
"""

from .compiler import (
    EfficiencyEstimate,
    FeedbackItem,
    KernelAnalysis,
    LaunchConfig,
    analyze_cost,
    derive_launch_config,
    estimate_efficiency,
    generate_opencl,
    get_feedback,
    is_optimized_for,
    translate,
)
from .hdl import builtin_library, get_description, leaf_names, parse_hdl
from .kernels import CompiledKernel, KernelLibrary, KernelVersion
from .mcpl import analyze, execute, parse_kernel, parse_kernels

__all__ = [
    "KernelLibrary",
    "KernelVersion",
    "CompiledKernel",
    "parse_kernel",
    "parse_kernels",
    "analyze",
    "execute",
    "translate",
    "get_feedback",
    "is_optimized_for",
    "analyze_cost",
    "KernelAnalysis",
    "generate_opencl",
    "derive_launch_config",
    "LaunchConfig",
    "estimate_efficiency",
    "EfficiencyEstimate",
    "FeedbackItem",
    "builtin_library",
    "get_description",
    "leaf_names",
    "parse_hdl",
]
