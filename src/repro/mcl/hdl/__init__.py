"""HDL: MCL's hardware description language and built-in library."""

from .ast import HardwareDescription, MemorySpace, ParUnit
from .library import (
    BUILTIN_HDL_SOURCE,
    builtin_library,
    get_description,
    leaf_names,
    root_description,
)
from .parser import HdlSyntaxError, parse_hdl

__all__ = [
    "HardwareDescription",
    "MemorySpace",
    "ParUnit",
    "parse_hdl",
    "HdlSyntaxError",
    "builtin_library",
    "get_description",
    "root_description",
    "leaf_names",
    "BUILTIN_HDL_SOURCE",
]
