"""The built-in library of hardware descriptions (the paper's Fig. 2).

The hierarchy used for Cashmere::

    perfect
    └── accelerator
        ├── gpu
        │   ├── nvidia
        │   │   ├── fermi   ── gtx480, c2050
        │   │   └── kepler  ── k20, gtx680, titan
        │   └── amd         ── hd7970
        └── mic             ── xeon_phi

Seven leaves: the seven device types of the DAS-4 evaluation.  Each child
level adds hardware detail (finite memories, warp sizes, vector widths),
which is what gives the compiler progressively sharper feedback during
stepwise refinement.

The library is written in HDL source and parsed by :mod:`.parser`, so the
HDL front-end is exercised on every import.
"""

from __future__ import annotations

from typing import Dict, List

from .ast import HardwareDescription
from .parser import parse_hdl

__all__ = ["BUILTIN_HDL_SOURCE", "builtin_library", "get_description",
           "root_description", "leaf_names"]

BUILTIN_HDL_SOURCE = """
// Level "perfect": idealized hardware with unlimited compute units and
// 1-cycle memory (Sec. II-B).  Kernels written here are the "unoptimized"
// versions of the evaluation.
hardware_description perfect {
    memory main { capacity unlimited; latency 1; }
    par_unit threads { count unlimited; }
}

// Any PCIe-attached device: finite off-chip memory, host on the other side
// of a slow bus.
hardware_description accelerator extends perfect {
    memory main { capacity 1gb; latency 400; }
    param pcie_latency_us 10;
}

// Generic GPU: work-groups of threads with fast on-chip local memory.
hardware_description gpu extends accelerator {
    memory local   { capacity 32kb; latency 4; shared; }
    memory private { capacity 256kb; latency 1; }
    par_unit blocks  { count unlimited; }
    par_unit threads { count 1024; in blocks; }
    param max_block_threads 1024;
}

hardware_description nvidia extends gpu {
    memory local { capacity 48kb; latency 4; shared; }
    par_unit warps { count 32; in blocks; simd; }
    param warp_size 32;
}

hardware_description fermi extends nvidia {
    param sm_count 15;
    param l2_bytes 768k;
}

hardware_description kepler extends nvidia {
    param sm_count 13;
    param l2_bytes 1536k;
}

hardware_description gtx480 extends fermi {
    memory main { capacity 1.5gb; latency 400; }
    param sm_count 15;
    param clock_mhz 1401;
}

hardware_description c2050 extends fermi {
    memory main { capacity 3gb; latency 400; }
    param sm_count 14;
    param clock_mhz 1150;
}

hardware_description k20 extends kepler {
    memory main { capacity 5gb; latency 400; }
    param sm_count 13;
    param clock_mhz 706;
}

hardware_description gtx680 extends kepler {
    memory main { capacity 2gb; latency 400; }
    param sm_count 8;
    param clock_mhz 1006;
}

hardware_description titan extends kepler {
    memory main { capacity 6gb; latency 400; }
    param sm_count 14;
    param clock_mhz 837;
}

hardware_description amd extends gpu {
    memory local { capacity 64kb; latency 4; shared; }
    par_unit wavefronts { count 64; in blocks; simd; }
    param wavefront_size 64;
}

hardware_description hd7970 extends amd {
    memory main { capacity 3gb; latency 400; }
    param cu_count 32;
    param clock_mhz 925;
}

// Xeon Phi: many in-order cores with wide vector units; needs much more
// coarse-grained parallelism than a GPU (Sec. III-A).
hardware_description mic extends accelerator {
    memory local   { capacity 512kb; latency 10; }
    memory private { capacity 128kb; latency 1; }
    par_unit cores   { count 61; }
    par_unit threads { count 4; in cores; }
    par_unit vectors { count 16; in threads; simd; }
    param vector_width 16;
}

hardware_description xeon_phi extends mic {
    memory main { capacity 8gb; latency 300; }
    param core_count 60;
    param clock_mhz 1053;
}
"""

_LIBRARY: Dict[str, HardwareDescription] = {}


def builtin_library() -> Dict[str, HardwareDescription]:
    """Return (parsing once) the built-in hardware description registry."""
    global _LIBRARY
    if not _LIBRARY:
        _LIBRARY = parse_hdl(BUILTIN_HDL_SOURCE)
    return _LIBRARY


def get_description(name: str) -> HardwareDescription:
    lib = builtin_library()
    try:
        return lib[name]
    except KeyError:
        known = ", ".join(sorted(lib))
        raise KeyError(
            f"no hardware description {name!r}; Cashmere suggests adding one "
            f"(known: {known})"
        ) from None


def root_description() -> HardwareDescription:
    return get_description("perfect")


def leaf_names() -> List[str]:
    """Names of the seven leaf devices."""
    return sorted(hd.name for hd in root_description().leaves())
