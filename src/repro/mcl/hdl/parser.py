"""Parser for HDL, MCL's hardware description language.

The concrete syntax is small and declarative::

    hardware_description gpu extends accelerator {
        memory main  { capacity 1gb; latency 400; }
        memory local { capacity 48kb; latency 4; shared; }
        par_unit blocks  { count unlimited; }
        par_unit threads { count 1024; in blocks; }
        param warp_size 32;
    }

Sizes accept ``kb``/``mb``/``gb`` suffixes and the word ``unlimited``.
:func:`parse_hdl` parses a file with any number of descriptions and resolves
``extends`` references, returning a name -> :class:`HardwareDescription` map.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .ast import HardwareDescription, MemorySpace, ParUnit

__all__ = ["parse_hdl", "HdlSyntaxError"]


class HdlSyntaxError(ValueError):
    """Raised on malformed HDL input."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>\d+(?:\.\d+)?(?:[kmg]b|[kmg])?)
  | (?P<punct>[{};])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.DOTALL | re.IGNORECASE,
)

_SIZE_SUFFIX = {"kb": 1024.0, "mb": 1024.0 ** 2, "gb": 1024.0 ** 3,
                "k": 1e3, "m": 1e6, "g": 1e9}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise HdlSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = m.end()
        if m.lastgroup in ("ws", "comment"):
            continue
        tokens.append(m.group())
    return tokens


def _parse_size(token: str) -> Optional[float]:
    if token == "unlimited":
        return None
    m = re.fullmatch(r"(\d+(?:\.\d+)?)([kmg]b|[kmg])?", token, re.IGNORECASE)
    if not m:
        raise HdlSyntaxError(f"bad size {token!r}")
    value = float(m.group(1))
    if m.group(2):
        value *= _SIZE_SUFFIX[m.group(2).lower()]
    return value


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise HdlSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        tok = self.next()
        if tok != token:
            raise HdlSyntaxError(f"expected {token!r}, got {tok!r}")

    # hardware_description NAME [extends NAME] { body }
    def parse_description(self) -> Tuple[str, Optional[str], dict]:
        self.expect("hardware_description")
        name = self.next()
        parent = None
        if self.peek() == "extends":
            self.next()
            parent = self.next()
        self.expect("{")
        body = {"memory": {}, "par_units": {}, "params": {}}
        while self.peek() != "}":
            kind = self.next()
            if kind == "memory":
                mname, space = self._parse_memory()
                body["memory"][mname] = space
            elif kind == "par_unit":
                pname, unit = self._parse_par_unit()
                body["par_units"][pname] = unit
            elif kind == "param":
                pname = self.next()
                value = _parse_size(self.next())
                self.expect(";")
                body["params"][pname] = value
            else:
                raise HdlSyntaxError(f"unknown section {kind!r}")
        self.expect("}")
        return name, parent, body

    def _parse_memory(self) -> Tuple[str, MemorySpace]:
        name = self.next()
        self.expect("{")
        capacity: Optional[float] = None
        latency = 1
        shared = False
        while self.peek() != "}":
            prop = self.next()
            if prop == "capacity":
                capacity = _parse_size(self.next())
            elif prop == "latency":
                latency = int(float(self.next()))
            elif prop == "shared":
                shared = True
            else:
                raise HdlSyntaxError(f"unknown memory property {prop!r}")
            self.expect(";")
        self.expect("}")
        return name, MemorySpace(name=name, capacity_bytes=capacity,
                                 latency_cycles=latency, shared=shared)

    def _parse_par_unit(self) -> Tuple[str, ParUnit]:
        name = self.next()
        self.expect("{")
        max_count: Optional[int] = None
        group_of: Optional[str] = None
        simd = False
        while self.peek() != "}":
            prop = self.next()
            if prop == "count":
                size = _parse_size(self.next())
                max_count = None if size is None else int(size)
            elif prop == "in":
                group_of = self.next()
            elif prop == "simd":
                simd = True
            else:
                raise HdlSyntaxError(f"unknown par_unit property {prop!r}")
            self.expect(";")
        self.expect("}")
        return name, ParUnit(name=name, max_count=max_count, group_of=group_of, simd=simd)


def parse_hdl(text: str,
              existing: Optional[Dict[str, HardwareDescription]] = None
              ) -> Dict[str, HardwareDescription]:
    """Parse HDL source; returns name -> description for all definitions.

    ``existing`` lets a file extend descriptions defined elsewhere (as the
    built-in library does when users add a description for a new device,
    cf. Sec. III-B "Cashmere suggests to add a hardware description").  The
    existing registry is deep-copied so extending it never mutates shared
    hierarchies like the built-in library.
    """
    import copy

    parser = _Parser(_tokenize(text))
    registry: Dict[str, HardwareDescription] = copy.deepcopy(existing) if existing else {}
    defined: Dict[str, HardwareDescription] = {}
    while parser.peek() is not None:
        name, parent_name, body = parser.parse_description()
        if name in registry:
            raise HdlSyntaxError(f"duplicate hardware description {name!r}")
        parent = None
        if parent_name is not None:
            parent = registry.get(parent_name)
            if parent is None:
                raise HdlSyntaxError(
                    f"{name!r} extends unknown description {parent_name!r}")
        hd = HardwareDescription(
            name=name, parent=parent,
            memory_spaces=body["memory"],
            par_units=body["par_units"],
            params=body["params"],
        )
        registry[name] = hd
        defined[name] = hd
    return registry
