"""AST / object model for MCL hardware descriptions.

A *hardware description* (Sec. II-B) defines a level of abstraction: the
memory spaces a kernel may address, the *parallelism abstractions* it may use
in ``foreach`` statements (e.g. ``threads`` on level ``perfect``; ``blocks``
and ``threads`` on level ``gpu``; ``cores`` and ``vectors`` on
``xeon_phi``), and device parameters.  Descriptions form a tree: each child
adds detail about the hardware, which is what makes the compiler's feedback
progressively more precise during stepwise refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["MemorySpace", "ParUnit", "HardwareDescription"]


@dataclass(frozen=True)
class MemorySpace:
    """One addressable memory space of a hardware description."""

    name: str                       #: e.g. "main", "local", "regs"
    capacity_bytes: Optional[float]  #: None = unlimited (level ``perfect``)
    latency_cycles: int             #: relative access latency
    shared: bool = False            #: shared among the work-items of one group


@dataclass(frozen=True)
class ParUnit:
    """One parallelism abstraction usable in ``foreach ... in n <unit>``."""

    name: str                  #: identifier referenced by MCPL kernels
    max_count: Optional[int]   #: None = unlimited
    group_of: Optional[str] = None   #: unit this one is nested inside (e.g. threads in blocks)
    simd: bool = False         #: lock-step execution (warps, vector lanes)


@dataclass
class HardwareDescription:
    """A node in the hardware-description hierarchy."""

    name: str
    parent: Optional["HardwareDescription"] = None
    memory_spaces: Dict[str, MemorySpace] = field(default_factory=dict)
    par_units: Dict[str, ParUnit] = field(default_factory=dict)
    params: Dict[str, float] = field(default_factory=dict)
    children: List["HardwareDescription"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.parent is not None:
            self.parent.children.append(self)

    # -- hierarchy queries ---------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return not self.children

    def ancestry(self) -> List["HardwareDescription"]:
        """Path from the root (``perfect``) down to this description."""
        path: List[HardwareDescription] = []
        node: Optional[HardwareDescription] = self
        while node is not None:
            path.append(node)
            node = node.parent
        return list(reversed(path))

    def level_names(self) -> List[str]:
        return [hd.name for hd in self.ancestry()]

    def is_descendant_of(self, name: str) -> bool:
        return name in self.level_names()

    def leaves(self) -> List["HardwareDescription"]:
        if self.is_leaf:
            return [self]
        out: List[HardwareDescription] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def find(self, name: str) -> Optional["HardwareDescription"]:
        """Search this subtree for a description by name."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    # -- lookups with inheritance --------------------------------------------
    def par_unit(self, name: str) -> Optional[ParUnit]:
        """Resolve a parallelism unit, falling back to ancestor levels."""
        for hd in reversed(self.ancestry()):
            if name in hd.par_units:
                return hd.par_units[name]
        return None

    def memory_space(self, name: str) -> Optional[MemorySpace]:
        for hd in reversed(self.ancestry()):
            if name in hd.memory_spaces:
                return hd.memory_spaces[name]
        return None

    def param(self, name: str, default: Optional[float] = None) -> Optional[float]:
        for hd in reversed(self.ancestry()):
            if name in hd.params:
                return hd.params[name]
        return default

    def __repr__(self) -> str:
        return f"<HardwareDescription {'/'.join(self.level_names())}>"
