"""Exporters for the observability layer.

* :func:`chrome_trace` / :func:`write_chrome_trace` — turn the event stream
  into the Chrome ``chrome://tracing`` (aka Perfetto legacy) JSON format:
  interval events become complete (``"ph": "X"``) slices, point events
  become instants (``"ph": "i"``), nodes become processes and lanes become
  threads.
* :func:`metrics_summary` — render a :class:`repro.obs.metrics
  .MetricsRegistry` as the text tables the benchmark harness prints.
* :func:`overlap_fraction` — the transfer/compute overlap statistic of the
  paper's Fig. 16 discussion, computed from the event stream.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..util.tables import format_table
from .bus import EventBus, ObsEvent
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["chrome_trace", "write_chrome_trace", "metrics_summary",
           "overlap_fraction", "busy_time", "CATEGORIES"]

#: event kind -> Chrome trace category (the acceptance criteria talk about
#: "steal, transfer, and kernel events"; these are their categories)
CATEGORIES: Dict[str, str] = {
    "kernel": "kernel",
    "h2d": "transfer",
    "d2h": "transfer",
    "send": "transfer",
    "recv": "transfer",
    "cpu": "cpu",
    "steal": "steal",
    "steal_attempt": "steal",
    "steal_success": "steal",
    "spawn": "runtime",
    "result_recv": "runtime",
    "crash": "fault",
    "orphan_requeue": "fault",
    "sched_decision": "scheduler",
}

_US = 1e6  # chrome traces use microseconds


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of event fields for JSON serialization."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def chrome_trace(source: Any) -> Dict[str, Any]:
    """Build a Chrome-trace dictionary from a bus or an event iterable.

    Every event lands on a ``(pid, tid)`` track: ``pid`` is the node rank
    (or 0 for cluster-global events) and ``tid`` is a stable per-lane index.
    Events are sorted by ``(pid, tid, ts)``, so ``ts`` is non-decreasing
    within each track — a property the test-suite locks down.
    """
    events: Sequence[ObsEvent] = (
        source.events if isinstance(source, EventBus) else list(source))

    # Stable lane -> tid assignment, in first-appearance order per node.
    lane_tids: Dict[Tuple[int, str], int] = {}
    next_tid: Dict[int, int] = {}

    def tid_for(pid: int, lane: str) -> int:
        key = (pid, lane)
        if key not in lane_tids:
            next_tid[pid] = next_tid.get(pid, 0) + 1
            lane_tids[key] = next_tid[pid]
        return lane_tids[key]

    trace_events: List[Dict[str, Any]] = []
    for ev in events:
        pid = ev.node if ev.node is not None else 0
        lane = ev.lane if ev.lane is not None else f"node{pid}/{ev.kind}"
        tid = tid_for(pid, lane)
        cat = CATEGORIES.get(ev.kind, "misc")
        args = {"seq": ev.seq}
        args.update({k: _json_safe(v) for k, v in ev.fields.items()})
        if ev.is_interval:
            trace_events.append({
                "name": str(ev.fields.get("label", ev.kind)),
                "cat": cat,
                "ph": "X",
                "ts": ev.start * _US,
                "dur": max(ev.end - ev.start, 0.0) * _US,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        else:
            trace_events.append({
                "name": ev.kind,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": ev.ts * _US,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    trace_events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], e["name"]))

    # Metadata: name the processes/threads so the viewer shows lanes.
    metadata: List[Dict[str, Any]] = []
    named_pids = set()
    for (pid, lane), tid in sorted(lane_tids.items(),
                                   key=lambda item: (item[0][0], item[1])):
        if pid not in named_pids:
            named_pids.add(pid)
            metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                             "tid": 0, "args": {"name": f"node{pid}"}})
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": lane}})
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "time_unit": "us"},
    }


def write_chrome_trace(path: Any, source: Any) -> str:
    """Write the Chrome-trace JSON for a bus/event stream; returns the path."""
    doc = chrome_trace(source)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
    return str(path)


# ---------------------------------------------------------------------------
# interval arithmetic over the event stream
# ---------------------------------------------------------------------------

def _merged(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    out: List[Tuple[float, float]] = []
    for s, e in sorted(intervals):
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out


def busy_time(events: Iterable[ObsEvent], kinds: Iterable[str],
              lane_prefix: Optional[str] = None) -> float:
    """Union duration of interval events of the given kinds (per lane set)."""
    wanted = frozenset(kinds)
    intervals = [(ev.start, ev.end) for ev in events
                 if ev.kind in wanted and ev.is_interval
                 and (lane_prefix is None
                      or (ev.lane or "").startswith(lane_prefix))]
    return sum(e - s for s, e in _merged(intervals))


def overlap_fraction(events: Sequence[ObsEvent],
                     lane_prefix: str) -> Optional[float]:
    """Fraction of PCIe transfer time overlapped with kernel execution.

    ``lane_prefix`` selects one device (e.g. ``"node3/gtx480[0]"``).
    Returns ``None`` when the device transferred nothing; otherwise a value
    in ``[0, 1]``: time during which both a transfer *and* a kernel were
    active, divided by total transfer time.
    """
    kernel = _merged((ev.start, ev.end) for ev in events
                     if ev.kind == "kernel" and ev.is_interval
                     and (ev.lane or "").startswith(lane_prefix))
    transfer = _merged((ev.start, ev.end) for ev in events
                       if ev.kind in ("h2d", "d2h") and ev.is_interval
                       and (ev.lane or "").startswith(lane_prefix))
    total_transfer = sum(e - s for s, e in transfer)
    if total_transfer <= 0:
        return None
    overlapped = 0.0
    ki = 0
    for ts, te in transfer:
        while ki < len(kernel) and kernel[ki][1] <= ts:
            ki += 1
        kj = ki
        while kj < len(kernel) and kernel[kj][0] < te:
            overlapped += min(te, kernel[kj][1]) - max(ts, kernel[kj][0])
            kj += 1
    return min(overlapped / total_transfer, 1.0)


# ---------------------------------------------------------------------------
# text summary
# ---------------------------------------------------------------------------

def _fmt_labels(key: Tuple[Tuple[str, Any], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in key) or "-"


def metrics_summary(registry: MetricsRegistry,
                    title: str = "metrics") -> str:
    """Render every metric of a registry as one aligned text table."""
    rows: List[List[Any]] = []
    for name in registry.names():
        metric = registry.get(name)
        if isinstance(metric, Counter) or isinstance(metric, Gauge):
            for key, value in metric.items():
                rows.append([name, metric.kind, _fmt_labels(key), value])
            if not metric.items():
                rows.append([name, metric.kind, "-", 0.0])
        elif isinstance(metric, Histogram):
            for key, samples in metric.items():
                summary = (f"n={len(samples)} min={min(samples):.4g} "
                           f"p50={sorted(samples)[len(samples) // 2]:.4g} "
                           f"max={max(samples):.4g}") if samples else "n=0"
                rows.append([name, metric.kind, _fmt_labels(key), summary])
    return format_table(["metric", "type", "labels", "value"], rows,
                        title=title)
