"""``repro.obs`` — the unified observability layer.

One subsystem, three pieces:

* **event bus** (:mod:`repro.obs.bus`) — structured, virtual-time-stamped
  events (spawn / steal / transfer / kernel / crash / requeue / scheduler
  decisions) emitted by every layer of the stack and hung off
  ``Environment.obs``; zero overhead when disabled, byte-deterministic for
  a fixed seed,
* **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges and
  histograms replacing the runtimes' ad-hoc statistic dicts,
* **exporters** (:mod:`repro.obs.export`) — Chrome ``chrome://tracing``
  JSON, text summary tables, and derived statistics (utilization,
  transfer/compute overlap).

``python -m repro trace <app>`` (see :mod:`repro.obs.cli`) runs a small
heterogeneous workload with the bus enabled and writes a Chrome trace.
"""

from .bus import INTERVAL_KINDS, POINT_KINDS, EventBus, ObsEvent
from .export import (
    busy_time,
    chrome_trace,
    metrics_summary,
    overlap_fraction,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "EventBus",
    "ObsEvent",
    "INTERVAL_KINDS",
    "POINT_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_summary",
    "overlap_fraction",
    "busy_time",
]
