"""The ``python -m repro trace <app>`` subcommand.

Runs one of the four evaluation applications on a small heterogeneous
cluster with the event bus enabled, then exports the run as

* a Chrome-trace JSON file (open in ``chrome://tracing`` or Perfetto),
* optionally the raw event stream (JSON lines, one event per line), and
* a text summary of the metrics registry.

This module is imported lazily by :mod:`repro.__main__` — importing it from
``repro.obs.__init__`` would create a cycle (cli -> apps -> satin -> obs).
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, Optional, Tuple

from ..cluster.das4 import ClusterConfig
from .export import chrome_trace, metrics_summary, write_chrome_trace

__all__ = ["TRACE_APPS", "demo_cluster", "run_traced_app", "trace_main"]


def demo_cluster() -> ClusterConfig:
    """A small heterogeneous slice of DAS-4 for interactive tracing.

    Four nodes, three device types (two GTX480, a K20 + Xeon Phi pair on
    one node, a C2050) — enough to exercise inter-node stealing, PCIe
    transfers, and the intra-node min-makespan scheduler while staying
    fast enough for a command-line round trip.
    """
    return ClusterConfig(
        name="obs-demo-het-4",
        nodes=[("gtx480",), ("k20", "xeon_phi"), ("gtx480",), ("c2050",)],
    )


def _kmeans_small():
    from ..apps.kmeans import KMeansApp
    return KMeansApp(n_points=1 << 22, iterations=2, leaf_points=1 << 18)


def _matmul_small():
    from ..apps.matmul import MatmulApp
    return MatmulApp(n=8192, leaf_block=1024)


def _raytracer_small():
    from ..apps.raytracer import RaytracerApp
    return RaytracerApp(width=1024, height=1024, samples=4, leaf_rows=64)


def _nbody_small():
    from ..apps.nbody import NBodyApp
    return NBodyApp(n_bodies=1 << 16, iterations=2, leaf_bodies=1 << 12)


#: app name -> builder of a CLI-sized instance
TRACE_APPS: Dict[str, Any] = {
    "kmeans": _kmeans_small,
    "matmul": _matmul_small,
    "raytracer": _raytracer_small,
    "nbody": _nbody_small,
}


def run_traced_app(app_name: str, seed: int = 42,
                   cluster_config: Optional[ClusterConfig] = None
                   ) -> Tuple[Any, Any, Any]:
    """Run one demo app with the event bus on; returns (result, runtime,
    cluster)."""
    from ..apps.base import run_cashmere
    try:
        builder = TRACE_APPS[app_name]
    except KeyError:
        raise KeyError(f"unknown app {app_name!r}; known: "
                       f"{sorted(TRACE_APPS)}") from None
    app = builder()
    config = cluster_config or demo_cluster()
    return run_cashmere(app, config, app.root_task(), optimized=True,
                        seed=seed, obs=True, return_runtime=True)


def trace_main(app_name: str, out: pathlib.Path, seed: int = 42,
               events_out: Optional[pathlib.Path] = None,
               summary: bool = True) -> int:
    """Entry point behind ``python -m repro trace``."""
    result, runtime, cluster = run_traced_app(app_name, seed=seed)
    bus = cluster.obs

    out.parent.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(out, bus)
    trace = chrome_trace(bus)
    n_tracks = len({(e["pid"], e["tid"]) for e in trace["traceEvents"]
                    if e.get("ph") != "M"})
    print(f"wrote {out} ({len(trace['traceEvents'])} trace events, "
          f"{n_tracks} tracks, {len(bus.events)} bus events)")

    if events_out is not None:
        events_out.parent.mkdir(parents=True, exist_ok=True)
        events_out.write_text(bus.serialize() + "\n")
        print(f"wrote {events_out} (raw event stream, JSON lines)")

    if summary:
        print()
        print(metrics_summary(result.stats.registry,
                              title=f"trace {app_name} (seed {seed})"))
        print(f"\nmakespan: {result.stats.makespan_s:.3f} s simulated, "
              f"{result.stats.total_jobs} jobs, "
              f"{sum(1 for e in bus.events if e.kind == 'kernel')} kernel "
              f"launches")
    return 0
