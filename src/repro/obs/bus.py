"""The observability event bus.

A :class:`EventBus` hangs off every :class:`repro.sim.engine.Environment`
(as ``env.obs``) and is the *single source of truth* for everything the
runtimes, the network, the nodes and the devices observe about themselves:
spawns, steals, transfers, kernel launches, crashes, orphan re-queues and
scheduling decisions all flow through it as structured, virtual-time-stamped
:class:`ObsEvent` records.

Design constraints (see docs/observability.md):

* **zero overhead when disabled** — ``emit()`` returns immediately when the
  bus is off, and hot call sites additionally guard on ``bus.enabled`` so
  no field dictionaries are even built;
* **deterministic** — events carry a monotone sequence number and the
  virtual timestamp of the simulation clock; for a fixed seed the full
  serialized stream is byte-identical across runs (locked down by
  ``tests/test_obs_determinism.py``);
* **no engine dependencies** — this module imports only the standard
  library, so the simulation engine can own a bus without import cycles.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["ObsEvent", "EventBus", "INTERVAL_KINDS", "POINT_KINDS"]


#: kinds that describe a time *interval* (they carry ``start``/``end`` and a
#: ``lane``, and map 1:1 onto Gantt-chart bars / Chrome-trace slices)
INTERVAL_KINDS = frozenset({
    "cpu",       # host CPU busy (leaf computation or protocol handling)
    "kernel",    # device kernel execution
    "h2d",       # host-to-device PCIe transfer
    "d2h",       # device-to-host PCIe transfer
    "send",      # node-to-node network transfer (NIC serialization + fabric)
    "recv",      # reserved (receive-side processing)
    "steal",     # steal-request service on the victim
})

#: kinds that describe a *point* in virtual time
POINT_KINDS = frozenset({
    "spawn",           # a job was created and pushed into a work deque
    "steal_attempt",   # a thief sent a steal request
    "steal_success",   # a thief received a job
    "result_recv",     # a stolen job's result arrived back at its origin
    "crash",           # fault injection took a node down
    "orphan_requeue",  # a dead thief's job was re-queued at its origin
    "sched_decision",  # the intra-node device scheduler placed a job
    # sweep-engine cell lifecycle (wall-clock-stamped: the sweep runs
    # *outside* any simulation, its bus uses a host clock)
    "sweep_cell_run",     # a cell was executed by a worker
    "sweep_cell_cache",   # a cell was served from the result cache
    "sweep_cell_failed",  # a cell failed after all retries
    # happens-before race sanitizer (repro.analyze.races; only emitted
    # when the runtime carries a detector, i.e. detect_races=True)
    "hb_spawn",        # vector-clock fork: parent spawned a child job
    "hb_sync",         # vector-clock join: parent synced its children
    "hb_guard",        # a guard ordered a waiter after a write
    "shared_access",   # a shared-object read/write was recorded
    "race",            # two concurrent conflicting accesses were found
    # DAG executor lifecycle (repro.graph.executor)
    "graph_node_ready",     # all data dependencies of a node resolved
    "graph_node_dispatch",  # a node was placed on a device lane
    "graph_node_complete",  # a node's kernel (and output copy) finished
})


@dataclass
class ObsEvent:
    """One structured observability event.

    ``ts`` is the virtual time of emission.  Interval events additionally
    carry ``start``/``end`` (with ``end == ts``) and a ``lane`` — the
    Gantt queue they belong to, e.g. ``"node3/gtx480[0]/kernel"``.
    ``fields`` holds kind-specific payload (labels, byte counts, victim
    ranks, scheduler snapshots, ...).
    """

    seq: int
    ts: float
    kind: str
    node: Optional[int] = None
    lane: Optional[str] = None
    start: Optional[float] = None
    end: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_interval(self) -> bool:
        return self.start is not None and self.end is not None

    @property
    def duration(self) -> float:
        if not self.is_interval:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dictionary form (``None`` members omitted)."""
        out: Dict[str, Any] = {"seq": self.seq, "ts": self.ts, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.lane is not None:
            out["lane"] = self.lane
        if self.start is not None:
            out["start"] = self.start
        if self.end is not None:
            out["end"] = self.end
        if self.fields:
            out["fields"] = self.fields
        return out

    def serialize(self) -> str:
        """One canonical JSON line (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"), default=str)


class EventBus:
    """Ordered stream of :class:`ObsEvent` records plus live subscribers.

    The bus is *disabled* by default: ``emit()`` is then a constant-time
    no-op, so instrumented code paths cost nothing in ordinary runs.
    Subscribers (e.g. :class:`repro.sim.trace.TraceRecorder`) are invoked
    synchronously on every emitted event.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = False):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.enabled = enabled
        self.events: List[ObsEvent] = []
        self._seq = itertools.count()
        self._subscribers: List[Callable[[ObsEvent], None]] = []

    # -- configuration -----------------------------------------------------
    def enable(self) -> "EventBus":
        self.enabled = True
        return self

    def disable(self) -> "EventBus":
        self.enabled = False
        return self

    def subscribe(self, callback: Callable[[ObsEvent], None]) -> None:
        """Register a live consumer; called synchronously per event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[ObsEvent], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # -- emission ----------------------------------------------------------
    def emit(self, kind: str, node: Optional[int] = None,
             lane: Optional[str] = None, start: Optional[float] = None,
             end: Optional[float] = None, **fields: Any) -> Optional[ObsEvent]:
        """Record one event (no-op while the bus is disabled)."""
        if not self.enabled:
            return None
        ev = ObsEvent(seq=next(self._seq), ts=self._clock(), kind=kind,
                      node=node, lane=lane, start=start, end=end,
                      fields=fields)
        self.events.append(ev)
        for callback in self._subscribers:
            callback(ev)
        return ev

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def by_kind(self, *kinds: str) -> List[ObsEvent]:
        wanted = frozenset(kinds)
        return [ev for ev in self.events if ev.kind in wanted]

    def by_node(self, node: int) -> List[ObsEvent]:
        return [ev for ev in self.events if ev.node == node]

    def kinds(self) -> Dict[str, int]:
        """Histogram of event kinds (taxonomy summary)."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    # -- serialization -----------------------------------------------------
    def serialize(self) -> str:
        """The full stream as deterministic JSON lines.

        Byte-identical across runs with the same seed — the contract the
        determinism regression tests enforce.
        """
        return "\n".join(ev.serialize() for ev in self.events)

    @staticmethod
    def serialize_events(events: Iterable[ObsEvent]) -> str:
        return "\n".join(ev.serialize() for ev in events)
