"""Metrics registry: counters, gauges and histograms.

This subsumes the ad-hoc statistic dictionaries the runtimes used to keep
(`RunStats.jobs_executed` et al.): every counter the Satin/Cashmere runtimes
maintain now lives in one :class:`MetricsRegistry`, and the legacy
``RunStats`` fields are read-only *views* over it — one bookkeeping path,
one source of truth.

Metric semantics follow the Prometheus conventions loosely:

* :class:`Counter` — monotonically non-decreasing; ``inc()`` rejects
  negative amounts (property-tested in ``tests/test_obs_properties.py``),
* :class:`Gauge`   — a value that can go anywhere (utilizations, ratios),
* :class:`Histogram` — stores observations; exposes count/sum/min/max and
  sample quantiles that are always bounded by min/max.

All three support labels (keyword arguments on the mutation calls), which
the runtimes use for per-node and per-device breakdowns.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, Any], ...]


def _key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Metric:
    """Shared naming/help scaffolding."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Counter(Metric):
    """A monotone, labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotone; cannot inc by {amount}")
        key = _key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def child(self, **labels: Any):
        """Bound incrementer for hot paths.

        Resolves the label key once and returns a plain callable
        ``inc(amount=1.0)`` that updates a single dict slot — the runtimes
        call these per spawn/steal/job, so the per-call cost matters.  The
        monotonicity contract is preserved.
        """
        key = _key(labels)
        values = self._values
        values.setdefault(key, 0.0)
        name = self.name

        def inc(amount: float = 1.0) -> None:
            if amount < 0:
                raise ValueError(
                    f"counter {name!r} is monotone; cannot inc by {amount}")
            values[key] += amount

        return inc

    def value(self, **labels: Any) -> float:
        """Value of one labelled child (0.0 if never incremented)."""
        return self._values.get(_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum over all labelled children."""
        return sum(self._values.values())

    def by_label(self, label: str) -> Dict[Any, float]:
        """Aggregate children by one label dimension."""
        out: Dict[Any, float] = {}
        for key, value in self._values.items():
            for k, v in key:
                if k == label:
                    out[v] = out.get(v, 0.0) + value
        return out

    def items(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class Gauge(Metric):
    """A labelled gauge (set/add, any value)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_key(labels), 0.0)

    def by_label(self, label: str) -> Dict[Any, float]:
        out: Dict[Any, float] = {}
        for key, value in self._values.items():
            for k, v in key:
                if k == label:
                    out[v] = value
        return out

    def items(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class Histogram(Metric):
    """A labelled histogram over raw observations.

    Simulated runs are small enough that keeping the raw samples is cheap
    and exact; quantiles interpolate between order statistics and are
    therefore always within ``[min, max]``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._samples: Dict[LabelKey, List[float]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        self._samples.setdefault(_key(labels), []).append(float(value))

    def child(self, **labels: Any):
        """Bound observer for hot paths (label key resolved once)."""
        samples = self._samples.setdefault(_key(labels), [])

        def observe(value: float) -> None:
            samples.append(float(value))

        return observe

    def _all(self, labels: Dict[str, Any]) -> List[float]:
        if labels:
            return self._samples.get(_key(labels), [])
        merged: List[float] = []
        for samples in self._samples.values():
            merged.extend(samples)
        return merged

    def count(self, **labels: Any) -> int:
        return len(self._all(labels))

    def sum(self, **labels: Any) -> float:
        return sum(self._all(labels))

    def min(self, **labels: Any) -> Optional[float]:
        samples = self._all(labels)
        return min(samples) if samples else None

    def max(self, **labels: Any) -> Optional[float]:
        samples = self._all(labels)
        return max(samples) if samples else None

    def mean(self, **labels: Any) -> Optional[float]:
        samples = self._all(labels)
        return sum(samples) / len(samples) if samples else None

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """Sample quantile with linear interpolation; None if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        return _sample_quantile(sorted(self._all(labels)), q)

    def items(self) -> List[Tuple[LabelKey, List[float]]]:
        return sorted(self._samples.items())


def _sample_quantile(samples: List[float], q: float) -> Optional[float]:
    """Linear-interpolation quantile of pre-sorted samples; None if empty."""
    if not samples:
        return None
    if len(samples) == 1:
        return samples[0]
    pos = q * (len(samples) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(samples) - 1)
    frac = pos - lo
    value = samples[lo] * (1.0 - frac) + samples[hi] * frac
    # clamp fp interpolation error: the [min, max] bound is a contract
    if value < samples[0]:
        return samples[0]
    if value > samples[-1]:
        return samples[-1]
    return value


def _histogram_entry(samples: List[float]) -> Dict[str, Any]:
    """One histogram label-set in snapshot form, with summary quantiles."""
    ordered = sorted(samples)
    return {
        "count": len(samples),
        "sum": sum(samples),
        "min": ordered[0] if ordered else None,
        "max": ordered[-1] if ordered else None,
        "mean": sum(samples) / len(samples) if samples else None,
        "p50": _sample_quantile(ordered, 0.5),
        "p99": _sample_quantile(ordered, 0.99),
    }


class MetricsRegistry:
    """Named home of every metric in one run.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: asking for
    an existing name returns the same object, asking with a conflicting
    type raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)  # type: ignore

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data dump of every metric (used by the text exporter)."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: Dict[str, Any] = {"kind": metric.kind, "help": metric.help}
            if isinstance(metric, (Counter, Gauge)):
                entry["values"] = {
                    ",".join(f"{k}={v}" for k, v in key) or "-": value
                    for key, value in metric.items()}
            elif isinstance(metric, Histogram):
                entry["values"] = {
                    ",".join(f"{k}={v}" for k, v in key) or "-":
                        _histogram_entry(samples)
                    for key, samples in metric.items()}
            out[name] = entry
        return out
