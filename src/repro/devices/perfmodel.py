"""Roofline kernel-time model.

The paper measures real kernels; we predict kernel execution times with a
roofline model: a kernel is limited either by compute throughput or by
device-memory traffic,

    t = launch_overhead + max( flops / (peak * e_c),  bytes / (bw * e_m) ) * d

where ``e_c``/``e_m`` are achievable-fraction efficiencies and ``d`` >= 1 is a
divergence penalty for irregular control flow (the raytracer's limiting
factor, Sec. V-A).  The efficiencies come from the MCL kernel version: the
unoptimized ``perfect``-level kernel has naive memory traffic and low
efficiency; each resolved compiler-feedback item (tiling, coalescing,
vectorization, ...) raises them, which is how the stepwise-refinement
methodology shows up in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .specs import DeviceSpec

__all__ = ["KernelProfile", "kernel_time", "kernel_gflops", "transfer_time"]


@dataclass(frozen=True)
class KernelProfile:
    """Dynamic characteristics of one kernel launch on one device.

    Produced by the MCL compiler's static analysis plus the kernel version's
    efficiency model; consumed by :func:`kernel_time`.
    """

    name: str
    flops: float                  #: useful floating-point operations
    device_bytes: float           #: device-memory traffic (after reuse)
    compute_efficiency: float     #: achievable fraction of peak flops (0..1]
    memory_efficiency: float      #: achievable fraction of peak bandwidth (0..1]
    divergence_factor: float = 1.0  #: >= 1; control-flow divergence penalty
    h2d_bytes: float = 0.0        #: host-to-device transfer for this launch
    d2h_bytes: float = 0.0        #: device-to-host transfer for this launch

    def __post_init__(self) -> None:
        if self.flops < 0 or self.device_bytes < 0:
            raise ValueError("flops/bytes must be non-negative")
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError(f"compute_efficiency {self.compute_efficiency} outside (0, 1]")
        if not (0.0 < self.memory_efficiency <= 1.0):
            raise ValueError(f"memory_efficiency {self.memory_efficiency} outside (0, 1]")
        if self.divergence_factor < 1.0:
            raise ValueError("divergence_factor must be >= 1")

    def scaled(self, fraction: float) -> "KernelProfile":
        """Profile for a sub-launch covering ``fraction`` of the work."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction {fraction} outside (0, 1]")
        return replace(
            self,
            flops=self.flops * fraction,
            device_bytes=self.device_bytes * fraction,
            h2d_bytes=self.h2d_bytes * fraction,
            d2h_bytes=self.d2h_bytes * fraction,
        )


def kernel_time(profile: KernelProfile, spec: DeviceSpec) -> float:
    """Predicted kernel execution time (seconds) on a device, excluding copies."""
    compute_t = profile.flops / (spec.peak_flops * profile.compute_efficiency)
    memory_t = profile.device_bytes / (spec.mem_bandwidth * profile.memory_efficiency)
    return spec.launch_overhead_s + max(compute_t, memory_t) * profile.divergence_factor


def kernel_gflops(profile: KernelProfile, spec: DeviceSpec) -> float:
    """Achieved GFLOPS of one kernel execution (Fig. 6's metric)."""
    t = kernel_time(profile, spec)
    return profile.flops / t / 1e9 if t > 0 else 0.0


def transfer_time(nbytes: float, spec: DeviceSpec) -> float:
    """PCIe transfer time for ``nbytes`` (one direction)."""
    if nbytes <= 0:
        return 0.0
    return spec.pcie_latency_s + nbytes / spec.pcie_bandwidth
