"""Simulated many-core device.

Each device exposes three independent engines — one host-to-device DMA
engine, one device-to-host DMA engine, and one compute engine — so data
transfers can overlap kernel executions exactly as the paper exploits
(Sec. II-C3, III-B).  Device memory is a finite resource; Cashmere
"automatically manages the available memory on a device", which we model as
blocking allocation: a launch waits until its working set fits.

The device also keeps *measured* kernel times per kernel name.  These feed
the intra-node load balancer (Sec. III-B): the first jobs are placed with the
static relative-speed table, afterwards placement uses measured times.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..sim.engine import Environment
from ..sim.resources import Container, Resource
from ..sim.trace import TraceRecorder
from .perfmodel import KernelProfile, kernel_time, transfer_time
from .specs import DeviceSpec

__all__ = ["SimDevice"]


class SimDevice:
    """One accelerator in a simulated compute node."""

    def __init__(self, env: Environment, spec: DeviceSpec, node_name: str,
                 index: int = 0, trace: Optional[TraceRecorder] = None,
                 overlap: bool = True, node_rank: Optional[int] = None):
        self.env = env
        self.spec = spec
        self.node_name = node_name
        self.index = index
        #: rank of the owning node (for observability events); parsed from
        #: the conventional "node<rank>" name when not given explicitly
        if node_rank is None and node_name.startswith("node"):
            suffix = node_name[4:]
            node_rank = int(suffix) if suffix.isdigit() else None
        self.node_rank = node_rank
        #: lane prefix in Gantt traces, e.g. "node3/gtx480[0]"
        self.lane = f"{node_name}/{spec.name}[{index}]"
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

        #: with overlap disabled (ablation), copies and kernels serialize on
        #: one engine — no PCIe/compute overlap (Sec. II-C3 turned off)
        self.overlap = overlap
        self.compute_engine = Resource(env, capacity=1)
        if overlap:
            self.h2d_engine = Resource(env, capacity=1)
            self.d2h_engine = Resource(env, capacity=1)
        else:
            self.h2d_engine = self.compute_engine
            self.d2h_engine = self.compute_engine
        self.memory = Container(env, capacity=spec.mem_bytes, init=spec.mem_bytes)

        #: measured execution time of the most recent launch, per kernel name
        self.measured_times: Dict[str, float] = {}
        #: number of completed launches per kernel name
        self.launch_counts: Dict[str, int] = {}
        #: queued-but-unfinished predicted work, seconds (scheduler state)
        self.pending_work_s: float = 0.0
        #: lifetime totals
        self.busy_kernel_s: float = 0.0
        self.busy_transfer_s: float = 0.0
        self.bytes_h2d: float = 0.0
        self.bytes_d2h: float = 0.0
        self.flops_done: float = 0.0

    # -- memory ------------------------------------------------------------
    def alloc(self, nbytes: float):
        """Event: blocks until ``nbytes`` of device memory are available."""
        if nbytes > self.spec.mem_bytes:
            raise MemoryError(
                f"allocation of {nbytes:.0f} B exceeds {self.spec.name} memory "
                f"({self.spec.mem_bytes:.0f} B); split the leaf job"
            )
        return self.memory.get(nbytes)

    def free(self, nbytes: float):
        """Event: return ``nbytes`` to the device memory pool."""
        return self.memory.put(nbytes)

    @property
    def free_memory(self) -> float:
        return self.memory.level

    # -- engines -----------------------------------------------------------
    def copy_to_device(self, nbytes: float, label: str = "h2d") -> Generator:
        """Process: host-to-device transfer over PCIe."""
        if nbytes <= 0:
            return
        with (yield self.h2d_engine.request()):
            start = self.env.now
            yield self.env.timeout(transfer_time(nbytes, self.spec))
            self.bytes_h2d += nbytes
            self.busy_transfer_s += self.env.now - start
            obs = self.env.obs
            if obs.enabled:
                obs.emit("h2d", node=self.node_rank, lane=f"{self.lane}/h2d",
                         start=start, end=self.env.now, label=label,
                         nbytes=nbytes)

    def copy_from_device(self, nbytes: float, label: str = "d2h") -> Generator:
        """Process: device-to-host transfer over PCIe."""
        if nbytes <= 0:
            return
        with (yield self.d2h_engine.request()):
            start = self.env.now
            yield self.env.timeout(transfer_time(nbytes, self.spec))
            self.bytes_d2h += nbytes
            self.busy_transfer_s += self.env.now - start
            obs = self.env.obs
            if obs.enabled:
                obs.emit("d2h", node=self.node_rank, lane=f"{self.lane}/d2h",
                         start=start, end=self.env.now, label=label,
                         nbytes=nbytes)

    def run_kernel(self, profile: KernelProfile, label: Optional[str] = None) -> Generator:
        """Process: execute one kernel launch; returns the measured time."""
        with (yield self.compute_engine.request()):
            start = self.env.now
            duration = kernel_time(profile, self.spec)
            yield self.env.timeout(duration)
            self.busy_kernel_s += duration
            self.flops_done += profile.flops
            self.measured_times[profile.name] = duration
            self.launch_counts[profile.name] = self.launch_counts.get(profile.name, 0) + 1
            obs = self.env.obs
            if obs.enabled:
                obs.emit("kernel", node=self.node_rank,
                         lane=f"{self.lane}/kernel",
                         start=start, end=self.env.now,
                         label=label or profile.name, kernel=profile.name,
                         device=self.spec.name, flops=profile.flops)
        return duration

    # -- scheduler support ---------------------------------------------------
    def predict_time(self, kernel_name: str, fallback_reference: float,
                     reference_speed: float) -> float:
        """Predicted execution time for a kernel on this device.

        Uses the measured time when one exists; otherwise scales a reference
        time by the static speed table (a device with twice the speed rating
        is assumed to take half as long), per Sec. III-B.
        """
        measured = self.measured_times.get(kernel_name)
        if measured is not None:
            return measured
        return fallback_reference * reference_speed / self.spec.static_speed

    def __repr__(self) -> str:
        return f"<SimDevice {self.lane}>"
