"""Static specifications of the many-core devices used in the paper.

The paper evaluates on the DAS-4 accelerators: NVIDIA GTX480, K20, C2050,
GTX680, Titan, AMD HD7970 and Intel Xeon Phi 5110P.  The numbers below are
the devices' published single-precision peaks, memory bandwidths, memory
sizes and PCI-Express generations; they drive the roofline kernel-time model
(:mod:`repro.devices.perfmodel`).

``static_speed`` is the entry of the paper's *static table of relative
many-core device speeds* (Sec. III-B gives K20 = 40 and GTX480 = 20) used to
bootstrap the intra-node load balancer before measured timings exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["DeviceSpec", "DEVICE_SPECS", "HOST_CPU", "CpuSpec", "device_spec"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of one many-core device."""

    name: str                 #: identifier, matches the MCL leaf hardware description
    vendor: str               #: "nvidia" | "amd" | "intel"
    kind: str                 #: "gpu" | "accelerator" (Xeon Phi)
    peak_gflops_sp: float     #: single-precision peak, GFLOPS
    mem_bandwidth_gbs: float  #: device memory bandwidth, GB/s
    mem_bytes: float          #: device memory size, bytes
    pcie_bandwidth_gbs: float #: effective host<->device bandwidth, GB/s
    pcie_latency_s: float     #: per-transfer setup latency
    launch_overhead_s: float  #: fixed overhead per kernel launch
    static_speed: float       #: paper's static relative-speed table entry
    sm_count: int             #: compute units (for granularity modeling)
    l2_bytes: float = 768 * 1024.0  #: last-level cache (cache-aware traffic model)

    @property
    def peak_flops(self) -> float:
        return self.peak_gflops_sp * 1e9

    @property
    def mem_bandwidth(self) -> float:
        return self.mem_bandwidth_gbs * 1e9

    @property
    def pcie_bandwidth(self) -> float:
        return self.pcie_bandwidth_gbs * 1e9


_GB = 1024.0 ** 3

#: The seven devices of the paper's evaluation (Sec. IV).
DEVICE_SPECS: Dict[str, DeviceSpec] = {
    "gtx480": DeviceSpec(
        name="gtx480", vendor="nvidia", kind="gpu",
        peak_gflops_sp=1345.0, mem_bandwidth_gbs=177.4, mem_bytes=1.5 * _GB,
        pcie_bandwidth_gbs=5.7, pcie_latency_s=10e-6, launch_overhead_s=8e-6,
        static_speed=20.0, sm_count=15, l2_bytes=768 * 1024.0,
    ),
    "k20": DeviceSpec(
        name="k20", vendor="nvidia", kind="gpu",
        peak_gflops_sp=3520.0, mem_bandwidth_gbs=208.0, mem_bytes=5.0 * _GB,
        pcie_bandwidth_gbs=5.9, pcie_latency_s=10e-6, launch_overhead_s=7e-6,
        static_speed=40.0, sm_count=13, l2_bytes=1536 * 1024.0,
    ),
    "c2050": DeviceSpec(
        name="c2050", vendor="nvidia", kind="gpu",
        peak_gflops_sp=1030.0, mem_bandwidth_gbs=144.0, mem_bytes=3.0 * _GB,
        pcie_bandwidth_gbs=5.6, pcie_latency_s=10e-6, launch_overhead_s=8e-6,
        static_speed=15.0, sm_count=14, l2_bytes=768 * 1024.0,
    ),
    "gtx680": DeviceSpec(
        name="gtx680", vendor="nvidia", kind="gpu",
        peak_gflops_sp=3090.0, mem_bandwidth_gbs=192.2, mem_bytes=2.0 * _GB,
        pcie_bandwidth_gbs=6.0, pcie_latency_s=10e-6, launch_overhead_s=7e-6,
        static_speed=35.0, sm_count=8, l2_bytes=512 * 1024.0,
    ),
    "titan": DeviceSpec(
        name="titan", vendor="nvidia", kind="gpu",
        peak_gflops_sp=4500.0, mem_bandwidth_gbs=288.4, mem_bytes=6.0 * _GB,
        pcie_bandwidth_gbs=6.0, pcie_latency_s=10e-6, launch_overhead_s=7e-6,
        static_speed=50.0, sm_count=14, l2_bytes=1536 * 1024.0,
    ),
    "hd7970": DeviceSpec(
        name="hd7970", vendor="amd", kind="gpu",
        peak_gflops_sp=3789.0, mem_bandwidth_gbs=264.0, mem_bytes=3.0 * _GB,
        pcie_bandwidth_gbs=5.8, pcie_latency_s=12e-6, launch_overhead_s=10e-6,
        static_speed=42.0, sm_count=32, l2_bytes=768 * 1024.0,
    ),
    "xeon_phi": DeviceSpec(
        name="xeon_phi", vendor="intel", kind="accelerator",
        peak_gflops_sp=2022.0, mem_bandwidth_gbs=320.0, mem_bytes=8.0 * _GB,
        pcie_bandwidth_gbs=5.0, pcie_latency_s=20e-6, launch_overhead_s=40e-6,
        static_speed=10.0, sm_count=60, l2_bytes=30 * 1024 * 1024.0,
    ),
}


@dataclass(frozen=True)
class CpuSpec:
    """The host CPU of a DAS-4 node: dual quad-core Xeon E5620."""

    name: str = "dual-xeon-e5620"
    cores: int = 8
    peak_gflops_sp_per_core: float = 9.6  #: 2.4 GHz x 4-wide SSE SP FMA-less
    cpu_efficiency: float = 0.55          #: achievable fraction for Satin leaves

    @property
    def core_flops(self) -> float:
        """Sustained single-core flop/s for a Satin leaf computation."""
        return self.peak_gflops_sp_per_core * 1e9 * self.cpu_efficiency


HOST_CPU = CpuSpec()


def device_spec(name: str) -> DeviceSpec:
    """Look up a device spec, with a helpful error for unknown devices."""
    try:
        return DEVICE_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_SPECS))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None
