"""Many-core device simulator.

Provides the seven accelerators of the paper's DAS-4 evaluation
(:mod:`repro.devices.specs`), a roofline kernel-time model
(:mod:`repro.devices.perfmodel`) and the simulated device itself with
independent copy and compute engines (:mod:`repro.devices.device`).
"""

from .device import SimDevice
from .perfmodel import KernelProfile, kernel_gflops, kernel_time, transfer_time
from .specs import DEVICE_SPECS, HOST_CPU, CpuSpec, DeviceSpec, device_spec

__all__ = [
    "SimDevice",
    "KernelProfile",
    "kernel_time",
    "kernel_gflops",
    "transfer_time",
    "DeviceSpec",
    "CpuSpec",
    "DEVICE_SPECS",
    "HOST_CPU",
    "device_spec",
]
