"""Jobs and the application interface of the Satin runtime.

Satin programs are divide-and-conquer computations (Fig. 1 of the paper):
``spawnable`` functions divide a task into children, ``sync`` awaits their
results, and small-enough tasks run a leaf computation.  In this
reproduction an application implements :class:`DivideConquerApp`; the
runtime provides spawn/sync/stealing around it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Hashable, Iterable, List, Optional, \
    Sequence

from ..sim.engine import Environment, Event

__all__ = ["Job", "DivideConquerApp", "LeafContext", "DependencyTracker"]

_job_ids = itertools.count()


@dataclass(slots=True)
class Job:
    """One spawned invocation of the application's spawnable function."""

    task: Any
    origin_rank: int               #: node whose queue the job was spawned into
    depth: int = 0
    manycore: bool = False         #: True once Cashmere.enableManyCore() ran
    id: int = field(default_factory=lambda: next(_job_ids))
    done: Optional[Event] = None   #: triggered with the result
    #: rank of the thief currently executing the job, or None (fault tolerance)
    thief_rank: Optional[int] = None

    def __repr__(self) -> str:
        return f"<Job {self.id} depth={self.depth} origin={self.origin_rank}>"


class DependencyTracker:
    """Ready-set / dependency-counting core shared by the runtimes.

    Both execution models in this reproduction reduce to the same
    bookkeeping: a *waiter* blocks on an ordered set of *dependencies* and
    becomes ready exactly when that set drains.  For a static
    :class:`~repro.graph.model.TaskGraph` the waiters are kernel nodes and
    the dependencies their in-edges; for the Satin spawn/sync tree each
    ``sync`` is a waiter whose dependencies are the child job ids — D&C is
    a dynamically unfolding DAG, and :meth:`SatinRuntime._sync
    <repro.satin.runtime.SatinRuntime._sync>` is lowered onto this class.

    Determinism contract: all iteration orders are insertion orders
    (ordered dicts throughout, no sets), so a seeded simulation driving
    its dispatch from this tracker replays byte-identically.
    """

    __slots__ = ("_remaining", "_waiters", "_ready", "_readied")

    def __init__(self) -> None:
        #: waiter -> ordered {dep: None} still outstanding
        self._remaining: Dict[Hashable, Dict[Hashable, None]] = {}
        #: dep -> waiters blocked on it (in add order)
        self._waiters: Dict[Hashable, List[Hashable]] = {}
        #: readied waiters not yet handed out by :meth:`take_ready` (FIFO)
        self._ready: List[Hashable] = []
        #: permanent record of every waiter that became ready
        self._readied: Dict[Hashable, None] = {}

    def add(self, waiter: Hashable, deps: Iterable[Hashable] = ()) -> bool:
        """Register ``waiter`` blocked on ``deps`` (duplicates collapse).

        Returns True when the waiter is immediately ready (no deps).
        """
        if waiter in self._remaining or waiter in self._readied:
            raise ValueError(f"waiter {waiter!r} already tracked")
        remaining = dict.fromkeys(deps)
        if not remaining:
            self._ready.append(waiter)
            self._readied[waiter] = None
            return True
        self._remaining[waiter] = remaining
        for dep in remaining:
            self._waiters.setdefault(dep, []).append(waiter)
        return False

    def complete(self, dep: Hashable) -> List[Hashable]:
        """Resolve ``dep``; return waiters that became ready, in add order."""
        newly: List[Hashable] = []
        for waiter in self._waiters.pop(dep, ()):
            remaining = self._remaining[waiter]
            remaining.pop(dep, None)
            if not remaining:
                del self._remaining[waiter]
                self._ready.append(waiter)
                self._readied[waiter] = None
                newly.append(waiter)
        return newly

    def remaining(self, waiter: Hashable) -> List[Hashable]:
        """Outstanding dependencies of ``waiter``, in insertion order."""
        return list(self._remaining.get(waiter, ()))

    def is_ready(self, waiter: Hashable) -> bool:
        return waiter in self._readied

    def take_ready(self) -> List[Hashable]:
        """Drain and return the FIFO of newly-readied waiters."""
        ready, self._ready = self._ready, []
        return ready

    @property
    def blocked_count(self) -> int:
        return len(self._remaining)


class LeafContext:
    """What a leaf computation may use: the node it runs on, and — under
    Cashmere — the node's devices and kernel registry.

    ``runtime`` is the owning runtime; Cashmere leaves call
    :meth:`repro.core.runtime.CashmereRuntime.get_kernel` through it
    (the ``Cashmere.getKernel()`` of Fig. 4).

    ``task_id`` identifies the executing job for the happens-before race
    sanitizer (``-1`` is the master program); leaves touching shared
    objects pass it as the ``task=`` argument of
    :meth:`~repro.satin.shared_objects.SharedObject.value` / ``invoke`` /
    ``guard`` so accesses are attributed to the right vector clock.
    """

    def __init__(self, runtime: Any, node: Any, task_id: int = -1):
        self.runtime = runtime
        self.node = node
        self.task_id = task_id

    @property
    def env(self) -> Environment:
        return self.node.env

    @property
    def rank(self) -> int:
        return self.node.rank


class DivideConquerApp:
    """Base class for Satin/Cashmere applications.

    Subclasses define the task shape and implement the hooks.  Tasks must be
    cheap to copy conceptually — what crosses the simulated network is
    charged via :meth:`task_bytes` / :meth:`result_bytes`, not Python object
    size.
    """

    #: application name (used in traces and result tables)
    name: str = "app"

    #: factor by which a single CPU core runs *slower* than its sustained
    #: vectorized rate on this application's leaves (>= 1).  Irregular,
    #: branchy code (the raytracer) defeats SSE and branch prediction on
    #: the host CPU just as it defeats SIMD lanes on the device.
    cpu_irregularity_penalty: float = 1.0

    #: True when :meth:`leaf_batch` computes many leaf values in one
    #: vectorized numpy call.  The runtime then defers each leaf's value to
    #: a batch flushed at the consuming combine — leaf *timing* (and hence
    #: the simulated event stream) is unchanged; only the host-side cost of
    #: producing the values drops.  Leave False for apps whose per-leaf
    #: computation does not vectorize across leaves (the raytracer's
    #: divergent rays — the same property that defeats SIMD on the device,
    #: Sec. V-A).
    supports_leaf_batch: bool = False

    # -- program --------------------------------------------------------------
    def program(self, runtime: Any, master: Any, root_task: Any) -> Generator:
        """Process: the master's main program.

        The default is a single spawn+sync of the root task.  Iterative
        applications (k-means, n-body) override this with a loop that runs
        one task tree per iteration and broadcasts updated state between
        iterations (the paper's "iterative" application class, Table II).
        """
        result = yield from runtime.run_subtask(master, root_task)
        return result

    # -- structure ----------------------------------------------------------
    def is_leaf(self, task: Any) -> bool:
        """Stop condition: run the leaf computation (Fig. 1, line 2)."""
        raise NotImplementedError

    def is_manycore(self, task: Any) -> bool:
        """Cashmere stop condition for cluster-level spawning (Fig. 5 line 5).

        When this returns True the runtime calls the equivalent of
        ``Cashmere.enableManyCore()``: further spawns become node-local
        threads feeding the many-core devices.  The Satin baseline runtime
        ignores this hook.
        """
        return False

    def divide(self, task: Any) -> Sequence[Any]:
        """Split a non-leaf task into child tasks (Fig. 1 lines 6-7)."""
        raise NotImplementedError

    def combine(self, task: Any, results: List[Any]) -> Any:
        """Combine child results after sync (Fig. 1 line 10)."""
        raise NotImplementedError

    # -- costs (what the simulator charges) ------------------------------------
    def task_bytes(self, task: Any) -> float:
        """Input bytes transferred when this task is stolen."""
        raise NotImplementedError

    def result_bytes(self, task: Any) -> float:
        """Output bytes transferred back to the origin node."""
        raise NotImplementedError

    def leaf_flops(self, task: Any) -> float:
        """Useful floating-point work of a leaf task."""
        raise NotImplementedError

    # -- leaf execution ---------------------------------------------------------
    def leaf(self, task: Any, ctx: LeafContext) -> Generator:
        """Process: execute a leaf.

        The Satin baseline implementation runs the computation
        single-threaded on one CPU core of the node; Cashmere applications
        usually leave this as-is (it is the CPU fallback of Fig. 4) and
        implement :meth:`leaf_kernel_name` & friends instead.
        """
        yield from ctx.node.cpu_compute(
            self.leaf_flops(task) * self.cpu_irregularity_penalty,
            label=f"{self.name}-leaf")
        return self.leaf_result(task)

    def leaf_result(self, task: Any) -> Any:
        """Result value of a leaf when running in modeled (no-data) mode."""
        return None

    def leaf_batch(self, tasks: Sequence[Any]) -> List[Any]:
        """Compute :meth:`leaf_result` for many tasks in one call.

        Called by the runtime only when :attr:`supports_leaf_batch` is True;
        must return one value per task, in order, each equal to what
        ``leaf_result(task)`` would have produced (including any side
        effects such as output-array writes).  The default is the scalar
        loop; vectorizing apps override it.
        """
        return [self.leaf_result(t) for t in tasks]

    # -- Cashmere kernel hooks (ignored by plain Satin) -------------------------
    def leaf_kernel_name(self, task: Any) -> str:
        """Name of the MCL kernel the leaf launches."""
        raise NotImplementedError

    def leaf_kernel_params(self, task: Any) -> dict:
        """Scalar kernel parameters for this leaf launch."""
        raise NotImplementedError

    def leaf_h2d_bytes(self, task: Any) -> float:
        """Host-to-device transfer for a leaf launch."""
        return self.task_bytes(task)

    def leaf_d2h_bytes(self, task: Any) -> float:
        """Device-to-host transfer after a leaf launch."""
        return self.result_bytes(task)
