"""Per-node double-ended work queue.

Satin's work queues are double-ended: the owning node pushes and pops at the
*new* end (LIFO — depth-first execution keeps the working set small), while
thieves take from the *old* end (FIFO — the oldest job is the biggest piece
of work, worth the steal latency).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Environment, Event
from .job import Job

__all__ = ["WorkDeque"]


class WorkDeque:
    """Double-ended job queue with blocking waits."""

    def __init__(self, env: Environment, observer=None):
        self.env = env
        self.items: List[Job] = []
        self._waiters: List[Event] = []
        #: lifetime counters
        self.pushed = 0
        self.stolen = 0
        #: optional callable(depth) invoked after every push — the metrics
        #: registry uses it to sample the queue-depth histogram
        self.observer = observer

    def __len__(self) -> int:
        return len(self.items)

    def push(self, job: Job) -> None:
        """Add a freshly spawned job (new end).

        When a worker is blocked in :meth:`wait`, the job is handed to the
        earliest waiter directly and never touches the queue.  The depth
        observer fires on *both* paths (its contract is "after every
        push"): a handoff samples the queue as it stands — the job
        bypassed it — so idle-node pushes still appear in the depth
        histogram instead of silently vanishing from the metrics.
        """
        self.pushed += 1
        if self._waiters:
            self._waiters.pop(0).succeed(job)  # direct handoff fast path
        else:
            self.items.append(job)
        if self.observer is not None:
            self.observer(len(self.items))

    def pop(self) -> Optional[Job]:
        """Non-blocking pop from the new end (owner's depth-first order)."""
        return self.items.pop() if self.items else None

    def steal(self) -> Optional[Job]:
        """Non-blocking take from the old end (thief's order)."""
        if self.items:
            self.stolen += 1
            return self.items.pop(0)
        return None

    def wait(self) -> Event:
        """Event that fires with a job: immediately if available, else on
        the next push.  Cancel with :meth:`cancel_wait` if no longer needed."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.pop())
        else:
            self._waiters.append(ev)
        return ev

    def cancel_wait(self, ev: Event) -> None:
        """Withdraw a pending wait; if it already got a job, push it back."""
        if ev in self._waiters:
            self._waiters.remove(ev)
        elif ev.triggered and ev.value is not None:
            # The event won a job after the caller stopped caring.
            self.pushed -= 1  # don't double-count
            self.push(ev.value)
