"""Satin: divide-and-conquer runtime with random work stealing.

The cluster-level half of Cashmere (van Nieuwpoort et al., TOPLAS 2010):
spawn/sync semantics, double-ended work queues, random work stealing,
latency hiding, fault tolerance and shared objects.
"""

from .job import DivideConquerApp, Job, LeafContext
from .queues import WorkDeque
from .runtime import RunResult, RunStats, RuntimeConfig, SatinRuntime
from .shared_objects import SharedObject

__all__ = [
    "DivideConquerApp",
    "Job",
    "LeafContext",
    "WorkDeque",
    "SatinRuntime",
    "RuntimeConfig",
    "RunStats",
    "RunResult",
    "SharedObject",
]
