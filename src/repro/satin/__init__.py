"""Satin: divide-and-conquer runtime with random work stealing.

The cluster-level half of Cashmere (van Nieuwpoort et al., TOPLAS 2010):
spawn/sync semantics, double-ended work queues, random work stealing,
latency hiding, fault tolerance and shared objects.

The runtime is layered (see ``docs/architecture.md``):

* :mod:`repro.satin.comm` — typed message protocol over the simulated
  network (request/reply pairing, timeouts, dispatch),
* :mod:`repro.satin.steal` — pluggable victim-selection + backoff policies,
* :mod:`repro.satin.ft` — crash detection and orphan re-execution,
* :mod:`repro.satin.runtime` — the orchestration layer tying them together.
"""

from .comm import (
    CommChannel,
    CommLayer,
    ResultReturn,
    RuntimeInfo,
    SatinMessage,
    SharedObjectUpdate,
    StealReply,
    StealRequest,
    UserMessage,
)
from .ft import FaultTolerance
from .job import DivideConquerApp, Job, LeafContext
from .queues import WorkDeque
from .runtime import RunResult, RunStats, RuntimeConfig, SatinRuntime
from .shared_objects import SharedObject
from .steal import (
    AdaptiveStealPolicy,
    ClusterAwareStealPolicy,
    RandomStealPolicy,
    StealPolicy,
    create_steal_policy,
    steal_policy_names,
)

__all__ = [
    "DivideConquerApp",
    "Job",
    "LeafContext",
    "WorkDeque",
    "SatinRuntime",
    "RuntimeConfig",
    "RunStats",
    "RunResult",
    "SharedObject",
    # comm layer
    "SatinMessage",
    "StealRequest",
    "StealReply",
    "ResultReturn",
    "SharedObjectUpdate",
    "UserMessage",
    "RuntimeInfo",
    "CommLayer",
    "CommChannel",
    # steal policies
    "StealPolicy",
    "RandomStealPolicy",
    "ClusterAwareStealPolicy",
    "AdaptiveStealPolicy",
    "create_steal_policy",
    "steal_policy_names",
    # fault tolerance
    "FaultTolerance",
]
