"""Satin shared objects (Sec. II-A).

Shared objects relax the pure divide-and-conquer model: a replicated object
lives on every node, write methods are broadcast asynchronously (no global
ordering — the user chooses the consistency they need), and *guards* let a
job wait until its local replica satisfies a predicate before executing.

The iterative applications use this to distribute updated centroids
(k-means) and body positions (n-body) between iterations.

Because writes are unordered by design, concurrent jobs touching one
shared object can race.  When the runtime carries a
:class:`~repro.analyze.races.RaceDetector`
(``CashmereConfig(detect_races=True)``), every read (:meth:`value`),
write (:meth:`invoke`) and guard wait is recorded against the accessing
task's vector clock; conflicting accesses unordered by happens-before are
reported as ``REP201`` findings.  All instrumentation sites guard on the
detector being attached, so the default configuration pays nothing.

The ``task`` parameter of the access methods identifies the accessing
task for the sanitizer — pass ``ctx.task_id`` from a leaf, or leave it
``None`` for the master program.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .comm import SharedObjectUpdate

__all__ = ["SharedObject"]


class SharedObject:
    """A replicated object with broadcast writes and guard waits."""

    def __init__(self, runtime: Any, name: str, initial: Any):
        self.runtime = runtime
        self.name = name
        self.env = runtime.env
        #: per-rank replica state (initial value is shared intentionally:
        #: models every node starting from the same broadcast input)
        self.replicas: Dict[int, Any] = {
            node.rank: initial for node in runtime.cluster.nodes}
        #: per-rank version counter (how many writes were applied)
        self.versions: Dict[int, int] = {
            node.rank: 0 for node in runtime.cluster.nodes}
        #: waiting guards per rank: (predicate, event, waiting task)
        self._guards: Dict[int, List[Tuple]] = {
            node.rank: [] for node in runtime.cluster.nodes}
        runtime.register_shared_object(self)

    @property
    def _detector(self) -> Any:
        return getattr(self.runtime, "race_detector", None)

    # -- reads ----------------------------------------------------------
    def value(self, rank: int, task: Optional[int] = None) -> Any:
        """Read the local replica (no communication, like Satin)."""
        detector = self._detector
        if detector is not None:
            detector.on_access(task, self.name, "read", rank=rank,
                               site="value")
        return self.replicas[rank]

    def version(self, rank: int) -> int:
        return self.versions[rank]

    # -- writes -----------------------------------------------------------
    def invoke(self, src_rank: int, method: Callable[[Any, Any], Any],
               payload: Any, nbytes: float,
               task: Optional[int] = None) -> Generator:
        """Process: apply a write method locally and broadcast it.

        ``method(replica, payload) -> new_replica`` must be deterministic;
        it runs once per node.  ``nbytes`` is the broadcast payload size
        charged per destination.  Consistency is whatever the application
        tolerates — replicas apply this write when their copy arrives.

        The sanitizer records one *global* write (it reaches every
        replica), attributed to ``task``.
        """
        detector = self._detector
        if detector is not None:
            detector.on_access(task, self.name, "write", rank=None,
                               site="invoke")
        self._apply(src_rank, method, payload, task=task)
        channel = self.runtime.comm.channel(src_rank)
        for dst in self.runtime.cluster.alive_nodes():
            if dst.rank == src_rank:
                continue
            yield from channel.send(
                dst.rank,
                SharedObjectUpdate(name=self.name, method=method,
                                   payload=payload, task=task),
                nbytes=nbytes)

    def _apply(self, rank: int, method: Callable[[Any, Any], Any],
               payload: Any, task: Optional[int] = None) -> None:
        self.replicas[rank] = method(self.replicas[rank], payload)
        self.versions[rank] += 1
        waiting, self._guards[rank] = self._guards[rank], []
        detector = self._detector
        for predicate, event, waiter in waiting:
            if predicate(self.replicas[rank]):
                if detector is not None:
                    # The guard ordered the waiter after this write: join
                    # clocks, then record the guarded read as ordered.
                    detector.on_guard(
                        waiter if waiter is not None else detector.ROOT,
                        task if task is not None else detector.ROOT)
                    detector.on_access(waiter, self.name, "read",
                                       rank=rank, site="guard")
                event.succeed(self.replicas[rank])
            else:
                self._guards[rank].append((predicate, event, waiter))

    def apply_update(self, rank: int, update: SharedObjectUpdate) -> None:
        """Called by the runtime's protocol dispatch on update arrival."""
        self._apply(rank, update.method, update.payload, task=update.task)

    # -- guards -------------------------------------------------------------
    def guard(self, rank: int, predicate: Callable[[Any], bool],
              task: Optional[int] = None):
        """Event: fires when the local replica satisfies ``predicate``.

        This is Satin's guard mechanism: a job whose inputs depend on shared
        state waits until its node's replica is consistent enough.
        """
        event = self.env.event()
        if predicate(self.replicas[rank]):
            detector = self._detector
            if detector is not None:
                # Already satisfied: a plain (unordered) read of the
                # current replica state.
                detector.on_access(task, self.name, "read", rank=rank,
                                   site="guard")
            event.succeed(self.replicas[rank])
        else:
            self._guards[rank].append((predicate, event, task))
        return event
