"""Satin shared objects (Sec. II-A).

Shared objects relax the pure divide-and-conquer model: a replicated object
lives on every node, write methods are broadcast asynchronously (no global
ordering — the user chooses the consistency they need), and *guards* let a
job wait until its local replica satisfies a predicate before executing.

The iterative applications use this to distribute updated centroids
(k-means) and body positions (n-body) between iterations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List

from .comm import SharedObjectUpdate

__all__ = ["SharedObject"]


class SharedObject:
    """A replicated object with broadcast writes and guard waits."""

    def __init__(self, runtime: Any, name: str, initial: Any):
        self.runtime = runtime
        self.name = name
        self.env = runtime.env
        #: per-rank replica state (initial value is shared intentionally:
        #: models every node starting from the same broadcast input)
        self.replicas: Dict[int, Any] = {
            node.rank: initial for node in runtime.cluster.nodes}
        #: per-rank version counter (how many writes were applied)
        self.versions: Dict[int, int] = {
            node.rank: 0 for node in runtime.cluster.nodes}
        self._guards: Dict[int, List] = {
            node.rank: [] for node in runtime.cluster.nodes}
        runtime.register_shared_object(self)

    # -- reads ----------------------------------------------------------
    def value(self, rank: int) -> Any:
        """Read the local replica (no communication, like Satin)."""
        return self.replicas[rank]

    def version(self, rank: int) -> int:
        return self.versions[rank]

    # -- writes -----------------------------------------------------------
    def invoke(self, src_rank: int, method: Callable[[Any, Any], Any],
               payload: Any, nbytes: float) -> Generator:
        """Process: apply a write method locally and broadcast it.

        ``method(replica, payload) -> new_replica`` must be deterministic;
        it runs once per node.  ``nbytes`` is the broadcast payload size
        charged per destination.  Consistency is whatever the application
        tolerates — replicas apply this write when their copy arrives.
        """
        self._apply(src_rank, method, payload)
        channel = self.runtime.comm.channel(src_rank)
        for dst in self.runtime.cluster.alive_nodes():
            if dst.rank == src_rank:
                continue
            yield from channel.send(
                dst.rank,
                SharedObjectUpdate(name=self.name, method=method,
                                   payload=payload),
                nbytes=nbytes)

    def _apply(self, rank: int, method: Callable[[Any, Any], Any],
               payload: Any) -> None:
        self.replicas[rank] = method(self.replicas[rank], payload)
        self.versions[rank] += 1
        waiting, self._guards[rank] = self._guards[rank], []
        for predicate, event in waiting:
            if predicate(self.replicas[rank]):
                event.succeed(self.replicas[rank])
            else:
                self._guards[rank].append((predicate, event))

    def apply_update(self, rank: int, update: SharedObjectUpdate) -> None:
        """Called by the runtime's protocol dispatch on update arrival."""
        self._apply(rank, update.method, update.payload)

    # -- guards -------------------------------------------------------------
    def guard(self, rank: int, predicate: Callable[[Any], bool]):
        """Event: fires when the local replica satisfies ``predicate``.

        This is Satin's guard mechanism: a job whose inputs depend on shared
        state waits until its node's replica is consistent enough.
        """
        event = self.env.event()
        if predicate(self.replicas[rank]):
            event.succeed(self.replicas[rank])
        else:
            self._guards[rank].append((predicate, event))
        return event
