"""Fault tolerance of the Satin runtime (Sec. II-A: orphan re-execution).

Satin recovers from node crashes with *orphan re-execution*: when the Ibis
membership service reports that a node died, every job that node had stolen
(an *orphan* — its result will never come back) is re-queued at its origin
node and simply executed again.  This module owns that mechanism end to
end, extracted from the runtime monolith:

* the **orphan table** — jobs currently stolen out of their origin node,
  recorded when a steal is served and dropped when the result returns,
* **crash injection + detection** — :meth:`FaultTolerance.crash_node`
  marks the node dead, interrupts its simulation processes, and (modelling
  the membership service broadcast) fails every in-flight request aimed at
  it through :meth:`repro.satin.comm.CommLayer.fail_pending_to`,
* **orphan re-queueing** — after the membership-notification latency,
  orphans of the dead node are pushed back into their origins' deques.

The ``notify_comm=False`` escape hatch models a *silent* failure the
membership service never reports (a network partition): in-flight requests
to the dead node are then only recovered by the comm layer's reply-timeout
+ bounded-retry path, which is exactly the scenario that feature exists
for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional, Set

from .job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only (cycle with runtime)
    from .runtime import SatinRuntime

__all__ = ["FaultTolerance"]


class FaultTolerance:
    """Crash detection and orphan re-execution for one runtime."""

    def __init__(self, runtime: "SatinRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        #: jobs stolen *from* each origin, by job id (the orphan table)
        self.stolen_out: Dict[int, Job] = {}
        #: ranks whose crash this layer already handled (interrupt + orphan
        #: re-queue scheduled exactly once per rank)
        self._crashed: Set[int] = set()
        #: ranks whose crash was reported to the comm layer.  Tracked
        #: separately from ``_crashed``: a *silent* failure
        #: (``notify_comm=False``) may be followed by a later membership
        #: notification for the same rank, which must still fail the
        #: pending requests even though the crash itself was handled.
        self._notified: Set[int] = set()

    # -- orphan table --------------------------------------------------------
    def record_stolen(self, job: Job) -> None:
        """A steal was served: remember the job until its result returns."""
        self.stolen_out[job.id] = job

    def take_stolen(self, job_id: int) -> Optional[Job]:
        """A result arrived: claim the orphan-table entry (or ``None`` when
        the job was already re-queued as an orphan)."""
        return self.stolen_out.pop(job_id, None)

    # -- crash injection -----------------------------------------------------
    def crash_node(self, rank: int, notify_comm: bool = True) -> None:
        """Crash a node (fault injection).  The master cannot crash.

        ``notify_comm=False`` models a silent failure: the membership
        service never reports the crash, so in-flight requests to the dead
        node are left to the comm layer's reply-timeout path.

        Idempotent per *effect*, not merely per call: repeated crashes of
        the same rank neither re-interrupt, double-requeue orphans nor
        double-increment the orphan counter — but a membership notification
        (``notify_comm=True``) arriving *after* an earlier silent crash of
        the same rank still fails the pending requests, because the two
        effects are tracked independently.  The serve layer relies on this:
        cluster-level churn and in-job fault injection may both report the
        same dead node.
        """
        if rank == 0:
            raise ValueError("crashing the master is not supported")
        rt = self.runtime
        node = rt.cluster.node(rank)
        first = rank not in self._crashed and not node.crashed
        if first:
            self._crashed.add(rank)
            node.crashed = True
            rt.cluster.membership_changed()
            if rt.obs.enabled:
                rt.obs.emit("crash", node=rank)
            for proc in rt._processes.get(rank, []):
                proc.interrupt("node crashed")
            # Fast dispatch runs as a callback pump, not a process; this
            # is its interrupt (a no-op when the node uses the slow loop).
            channel = rt.comm.channels.get(rank)
            if channel is not None:
                channel.stop_pump()
        if notify_comm and rank not in self._notified:
            # The membership service reports the crash: steal requests in
            # flight to the dead node fail immediately (and the comm layer
            # remembers the rank, so later requests fail fast too).
            self._notified.add(rank)
            rt.comm.fail_pending_to(rank)
        if first:
            # Orphans: jobs the dead node had stolen get re-queued at their
            # origins after the membership service notices the crash.
            self.env.process(self.requeue_orphans(rank))

    def crash_after(self, rank: int, delay: float) -> None:
        """Schedule a crash at ``delay`` seconds of virtual time from now."""

        def crasher() -> Generator:
            yield self.env.timeout(delay)
            self.crash_node(rank)

        self.env.process(crasher())

    # -- recovery ------------------------------------------------------------
    def requeue_orphans(self, dead_rank: int) -> Generator:
        """Process: re-queue the dead node's orphans at their origins."""
        rt = self.runtime
        yield self.env.timeout(rt.config.membership_notify_s)
        for job_id, job in list(self.stolen_out.items()):
            if job.thief_rank == dead_rank and not job.done.triggered:
                del self.stolen_out[job_id]
                job.thief_rank = None
                origin = rt.cluster.node(job.origin_rank)
                if origin.crashed:
                    continue
                rt.stats.count_orphan_requeued(job.origin_rank)
                if rt.obs.enabled:
                    rt.obs.emit("orphan_requeue", node=job.origin_rank,
                                job_id=job_id, dead_node=dead_rank)
                rt.deques[job.origin_rank].push(job)
