"""Pluggable cluster-level steal policies (victim selection + backoff).

Satin's load balancing is *random work-stealing* (Sec. II-A): an idle
worker polls uniformly random victims until one hands over a job, and a
fully failed round backs off exponentially.  This module turns that rule
into a pluggable :class:`StealPolicy` — registered in the unified policy
registry of :mod:`repro.core.policy` under kind ``"steal"``, selectable via
``RuntimeConfig(steal_policy=...)`` and ``python -m repro run
--steal-policy ...`` — so alternative victim-selection strategies can be
benchmarked against the paper's baseline without touching the runtime.

Three policies ship:

* :class:`RandomStealPolicy` (``random``, the default) — the paper's
  uniform-random victim sweep, byte-for-byte compatible with the historical
  runtime behavior (it consumes the runtime RNG identically and emits no
  extra events, so seeded observability streams are unchanged),
* :class:`ClusterAwareStealPolicy` (``cluster-aware``) — locality stealing:
  victims in the thief's rank-neighborhood (same switch/rack in the DAS-4
  picture) are polled before remote ones, cutting round-trip latency on the
  common hit path,
* :class:`AdaptiveStealPolicy` (``adaptive``) — history-weighted victim
  selection: an EWMA success score per victim biases the polling order
  toward recently productive victims.

The two non-default policies emit unified ``sched_decision`` events (one
per steal round, ``scope="steal"``) through the shared
:class:`~repro.core.policy.SchedulingPolicy` interface, making steal-victim
choices replayable from the event log exactly like device placements.
"""

from __future__ import annotations

import random
from typing import Dict, List, Protocol, Sequence

from ..core.policy import SchedulingPolicy, create_policy, policy_names, register_policy

__all__ = [
    "StealPolicy",
    "RandomStealPolicy",
    "ClusterAwareStealPolicy",
    "AdaptiveStealPolicy",
    "create_steal_policy",
    "steal_policy_names",
]


class _BackoffConfig(Protocol):
    """The slice of ``RuntimeConfig`` the backoff schedule reads."""

    steal_backoff_s: float
    steal_backoff_max_s: float


class StealPolicy(SchedulingPolicy):
    """Victim selection plus backoff schedule for one runtime.

    ``victim_order`` returns the ranks a steal round should poll, in
    order; the runtime sends one request at a time and stops at the first
    hit (Satin's sweep).  ``observe`` feeds the outcome of each poll back
    to the policy.  The backoff hooks define the idle-wait schedule after
    fully failed rounds; the default is Satin's capped exponential.
    """

    kind = "steal"

    def victim_order(self, thief: int, candidates: Sequence[int],
                     rng: random.Random) -> List[int]:
        """Order the candidate victim ranks for one steal round."""
        raise NotImplementedError

    def observe(self, thief: int, victim: int, hit: bool) -> None:
        """Outcome feedback: one poll of ``victim`` found work or not."""

    # -- backoff schedule ----------------------------------------------------
    def initial_backoff(self, config: _BackoffConfig) -> float:
        return config.steal_backoff_s

    def next_backoff(self, current: float, config: _BackoffConfig) -> float:
        return min(current * 2.0, config.steal_backoff_max_s)


@register_policy
class RandomStealPolicy(StealPolicy):
    """Uniform-random victim sweep — the paper's baseline (Sec. II-A).

    Consumes the runtime RNG exactly like the historical inline
    implementation (one ``shuffle`` of the candidate list per round) and
    emits no ``sched_decision`` events, keeping seeded event streams
    byte-identical to the pre-policy-layer runtime.
    """

    name = "random"
    emits_decisions = False

    def victim_order(self, thief: int, candidates: Sequence[int],
                     rng: random.Random) -> List[int]:
        order = list(candidates)
        rng.shuffle(order)
        return order


@register_policy
class ClusterAwareStealPolicy(StealPolicy):
    """Locality-aware stealing: poll the thief's neighborhood first.

    Ranks are grouped into fixed-size neighborhoods (``group_size``
    consecutive ranks — the switch/rack granularity of a DAS-4-like
    machine).  A round polls the thief's own group first, then the rest;
    both tiers are shuffled so victims within a tier are still chosen
    uniformly (no single nearby victim gets hammered).
    """

    name = "cluster-aware"
    emits_decisions = True

    def __init__(self, group_size: int = 4) -> None:
        super().__init__()
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = group_size

    def victim_order(self, thief: int, candidates: Sequence[int],
                     rng: random.Random) -> List[int]:
        if not candidates:
            return []
        group = thief // self.group_size
        near = [r for r in candidates if r // self.group_size == group]
        far = [r for r in candidates if r // self.group_size != group]
        rng.shuffle(near)
        rng.shuffle(far)
        order = near + far
        self.emit_decision(node=thief, chosen=order[0], order=order,
                           near=len(near), far=len(far))
        return order


@register_policy
class AdaptiveStealPolicy(StealPolicy):
    """History-weighted victim selection.

    Keeps an EWMA success score per victim (1.0 = every recent poll found
    work).  A round orders victims by weighted sampling without
    replacement, so productive victims are polled earlier while cold ones
    are still revisited (the floor weight keeps exploration alive —
    a victim that *becomes* loaded is rediscovered within a few rounds).
    """

    name = "adaptive"
    emits_decisions = True

    #: EWMA smoothing: score <- (1-alpha)*score + alpha*hit
    alpha = 0.25
    #: optimistic initial score for never-polled victims
    initial_score = 0.5
    #: exploration floor added to every weight
    floor = 0.05

    def __init__(self) -> None:
        super().__init__()
        self.scores: Dict[int, float] = {}

    def observe(self, thief: int, victim: int, hit: bool) -> None:
        old = self.scores.get(victim, self.initial_score)
        self.scores[victim] = (1.0 - self.alpha) * old \
            + self.alpha * (1.0 if hit else 0.0)

    def _weight(self, rank: int) -> float:
        return self.floor + self.scores.get(rank, self.initial_score)

    def victim_order(self, thief: int, candidates: Sequence[int],
                     rng: random.Random) -> List[int]:
        pool = list(candidates)
        order: List[int] = []
        while pool:
            weights = [self._weight(r) for r in pool]
            pick = rng.random() * sum(weights)
            acc = 0.0
            chosen_idx = len(pool) - 1
            for i, w in enumerate(weights):
                acc += w
                if pick < acc:
                    chosen_idx = i
                    break
            order.append(pool.pop(chosen_idx))
        if order:
            self.emit_decision(
                node=thief, chosen=order[0], order=order,
                weights={r: round(self._weight(r), 6) for r in order})
        return order


def create_steal_policy(name: str) -> StealPolicy:
    """Instantiate a registered steal policy by name."""
    policy = create_policy("steal", name)
    assert isinstance(policy, StealPolicy)
    return policy


def steal_policy_names() -> List[str]:
    """Registered steal-policy names, in registration order."""
    return policy_names("steal")
