"""The Satin runtime: spawn/sync divide-and-conquer with random work stealing.

This is the cluster-level engine of the reproduction (Sec. II-A):

* **spawn** — dividing a task creates child jobs in the node's work deque;
  other nodes can steal them,
* **sync** — the spawning computation blocks until its children are done,
  executing local work (and absorbing stolen children's results) meanwhile,
* **random work-stealing** — idle workers send steal requests to uniformly
  random victims; a stolen job's input crosses the network, it executes on
  the thief (possibly spawning further work there), and the result crosses
  back,
* **latency hiding** — result transfers are fire-and-forget processes that
  overlap with computation,
* **fault tolerance** — when a node crashes, jobs it had stolen are
  re-queued at their origin nodes (orphan re-execution), mimicking Satin's
  recovery via the Ibis membership service.

Protocol handling consumes CPU cores.  Under plain Satin all 8 cores run
leaf computations, so steal/result handling queues behind them — exactly the
second cause of Satin's reduced scalability discussed in Sec. V-B.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cluster.das4 import SimCluster
from ..cluster.node import ComputeNode
from ..sim.engine import Environment, Event, Interrupt, Process
from .job import DivideConquerApp, Job, LeafContext
from .queues import WorkDeque

__all__ = ["RuntimeConfig", "RunStats", "RunResult", "SatinRuntime"]


@dataclass
class RuntimeConfig:
    """Tunable constants of the runtime (defaults model the Java/Ibis stack)."""

    workers_per_node: int = 8          #: Satin needs 8 jobs to fill a node (Sec. V-B)
    spawn_overhead_s: float = 20e-6    #: CPU cost of creating one job
    steal_handle_overhead_s: float = 15e-6   #: CPU cost of serving a steal request
    result_handle_overhead_s: float = 10e-6  #: CPU cost of absorbing a result
    steal_backoff_s: float = 100e-6    #: initial idle wait after a failed steal
    steal_backoff_max_s: float = 0.1   #: exponential backoff cap (keeps idle
                                       #: workers event-cheap on long runs
                                       #: without stalling iteration starts)
    control_message_bytes: float = 64.0
    membership_notify_s: float = 1e-3  #: crash-detection latency
    seed: int = 42
    #: a steal round polls every victim in random order (Satin's behavior);
    #: False limits each round to a single random victim (ablation)
    steal_sweep: bool = True
    #: workers keep stealing after the root result is in (they are stopped
    #: by the runtime); bound their total count of backoff loops per run
    max_failed_steals: Optional[int] = None


@dataclass
class RunStats:
    """Counters collected during one run."""

    makespan_s: float = 0.0
    jobs_executed: Dict[int, int] = field(default_factory=dict)
    leaves_executed: Dict[int, int] = field(default_factory=dict)
    steal_attempts: int = 0
    steal_successes: int = 0
    results_returned: int = 0
    orphans_requeued: int = 0
    cpu_fallbacks: int = 0
    out_of_core_launches: int = 0
    total_leaf_flops: float = 0.0

    @property
    def total_jobs(self) -> int:
        return sum(self.jobs_executed.values())

    @property
    def total_leaves(self) -> int:
        return sum(self.leaves_executed.values())

    def gflops(self) -> float:
        """Application-level achieved GFLOPS (the figures' y-axis)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_leaf_flops / self.makespan_s / 1e9


@dataclass
class RunResult:
    result: Any
    stats: RunStats


class SatinRuntime:
    """One Satin execution on a simulated cluster.

    A runtime instance drives exactly one :meth:`run`; build a fresh cluster
    and runtime per experiment (cheap — everything is plain Python).
    """

    def __init__(self, cluster: SimCluster, app: DivideConquerApp,
                 config: Optional[RuntimeConfig] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.app = app
        self.config = config or RuntimeConfig()
        self.rng = random.Random(self.config.seed)
        self.stats = RunStats()
        self.deques: Dict[int, WorkDeque] = {
            node.rank: WorkDeque(self.env) for node in cluster.nodes}
        #: jobs stolen *from* each origin, by job id (fault tolerance)
        self._stolen_out: Dict[int, Job] = {}
        #: pending steal requests: req_id -> (wakeup event, victim rank)
        self._steal_waits: Dict[int, Tuple[Event, int]] = {}
        self._req_ids = itertools.count()
        self._processes: Dict[int, List[Process]] = {}
        self._shared_objects: Dict[str, Any] = {}
        #: nodes with a sync-steal helper in flight (at most one per node)
        self._sync_stealing: Dict[int, bool] = {}
        self._shutdown = False
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, root_task: Any, until: Optional[float] = None) -> RunResult:
        """Execute the divide-and-conquer computation to completion."""
        if self._started:
            raise RuntimeError("a SatinRuntime instance runs exactly once")
        self._started = True
        self._start_nodes()
        master = self.cluster.node(0)
        start = self.env.now
        root_proc = self.env.process(self._root(master, root_task))
        result = self.env.run(until=root_proc)
        self._shutdown = True
        self._finished = True
        self.stats.makespan_s = self.env.now - start
        return RunResult(result=result, stats=self.stats)

    def register_shared_object(self, obj: Any) -> None:
        """Attach a :class:`repro.satin.shared_objects.SharedObject`."""
        if obj.name in self._shared_objects:
            raise ValueError(f"shared object {obj.name!r} already registered")
        self._shared_objects[obj.name] = obj

    def shared_object(self, name: str) -> Any:
        return self._shared_objects[name]

    def crash_node(self, rank: int) -> None:
        """Crash a node (fault injection).  The master cannot crash."""
        if rank == 0:
            raise ValueError("crashing the master is not supported")
        node = self.cluster.node(rank)
        if node.crashed:
            return
        node.crashed = True
        for proc in self._processes.get(rank, []):
            proc.interrupt("node crashed")
        # Steal requests in flight to the dead node fail.
        for req_id, (ev, victim) in list(self._steal_waits.items()):
            if victim == rank and not ev.triggered:
                ev.succeed(None)
        # Orphans: jobs the dead node had stolen get re-queued at their
        # origins after the membership service notices the crash.
        self.env.process(self._requeue_orphans(rank))

    def crash_after(self, rank: int, delay: float) -> None:
        """Schedule a crash at ``delay`` seconds of virtual time from now."""

        def crasher():
            yield self.env.timeout(delay)
            self.crash_node(rank)

        self.env.process(crasher())

    # ------------------------------------------------------------------
    # node processes
    # ------------------------------------------------------------------
    def _start_nodes(self) -> None:
        for node in self.cluster.nodes:
            procs = [self.env.process(self._message_handler(node))]
            for w in range(self.config.workers_per_node):
                procs.append(self.env.process(self._worker(node, w)))
            self._processes[node.rank] = procs

    def _root(self, master: ComputeNode, root_task: Any) -> Generator:
        result = yield from self.app.program(self, master, root_task)
        return result

    def run_subtask(self, node: ComputeNode, task: Any) -> Generator:
        """Process: execute one task tree to completion (for iterative
        programs: one spawn+sync round of the master's main loop)."""
        result = yield from self._run_task(node, task, depth=0, manycore=False)
        return result

    def broadcast_from(self, node: ComputeNode, nbytes: float,
                       tag: str = "app-bcast", payload: Any = None) -> Generator:
        """Process: broadcast application data (e.g. updated centroids) from
        one node to all others, charging the network."""
        yield from self.cluster.network.broadcast(
            node.endpoint, tag, payload=payload, nbytes=nbytes,
            ranks=[n.rank for n in self.cluster.alive_nodes()])

    def allgather(self, total_bytes: float, tag: str = "app-allgather"
                  ) -> Generator:
        """Process: all-to-all exchange of ``total_bytes`` of shared state.

        Every alive node owns an equal share and sends it to every other
        node; all NICs inject concurrently, so the exchange takes roughly
        ``(P-1)/P * total_bytes / bandwidth`` — the n-body position update
        pattern ("all-to-all for each compute node", Sec. IV).
        """
        nodes = self.cluster.alive_nodes()
        if len(nodes) <= 1:
            return
        share = total_bytes / len(nodes)

        def node_sends(src: ComputeNode) -> Generator:
            for dst in nodes:
                if dst.rank != src.rank:
                    yield from src.endpoint.send(dst.rank, tag, nbytes=share)

        procs = [self.env.process(node_sends(n)) for n in nodes]
        for proc in procs:
            yield proc

    def _worker(self, node: ComputeNode, index: int) -> Generator:
        """One worker: pop local work, else steal from a random victim.

        Failed steals back off exponentially (capped) and the idle wait is
        interrupted as soon as local work appears, so idle workers stay
        cheap in simulation events even across hours of virtual time.
        """
        failed = 0
        backoff = self.config.steal_backoff_s
        deque = self.deques[node.rank]
        try:
            while not self._shutdown:
                job = deque.pop()
                if job is None and len(self.cluster.alive_nodes()) > 1:
                    job = yield from self._try_steal(node)
                if job is not None:
                    failed = 0
                    backoff = self.config.steal_backoff_s
                    yield from self._execute_job(node, job)
                    continue
                failed += 1
                limit = self.config.max_failed_steals
                if limit is not None and failed >= limit:
                    return
                # Sleep until the backoff expires or local work arrives.
                wait_ev = deque.wait()
                if wait_ev.triggered:
                    yield from self._execute_job(node, wait_ev.value)
                    continue
                timer = self.env.timeout(backoff)
                yield self.env.any_of([wait_ev, timer])
                if wait_ev.triggered:
                    backoff = self.config.steal_backoff_s
                    yield from self._execute_job(node, wait_ev.value)
                else:
                    deque.cancel_wait(wait_ev)
                    backoff = min(backoff * 2.0, self.config.steal_backoff_max_s)
        except Interrupt:
            return  # node crashed

    def _message_handler(self, node: ComputeNode) -> Generator:
        try:
            while not self._shutdown:
                msg = yield node.endpoint.recv()
                if msg.tag == "steal_request":
                    # Serve in a sub-process so a busy CPU delays the reply
                    # without blocking later messages' bookkeeping order.
                    self.env.process(self._serve_steal(node, msg.payload))
                elif msg.tag == "steal_reply":
                    entry = self._steal_waits.get(msg.payload["req_id"])
                    if entry is not None and not entry[0].triggered:
                        entry[0].succeed(msg.payload["job"])
                elif msg.tag == "result":
                    self.env.process(self._absorb_result(node, msg.payload))
                elif msg.tag == "shared_update":
                    obj = self._shared_objects.get(msg.payload["name"])
                    if obj is not None:
                        obj.apply_update(node.rank, msg.payload)
                elif msg.tag == "user":
                    handler = getattr(self.app, "on_message", None)
                    if handler is not None:
                        handler(node, msg.payload)
        except Interrupt:
            return

    def _serve_steal(self, node: ComputeNode, payload: Dict[str, Any]) -> Generator:
        yield from node.cpu_delay(self.config.steal_handle_overhead_s,
                                  label="steal-serve")
        job = self.deques[node.rank].steal()
        nbytes = self.config.control_message_bytes
        if job is not None:
            job.thief_rank = payload["thief"]
            self._stolen_out[job.id] = job
            nbytes += self.app.task_bytes(job.task)
        self.cluster.trace.record(f"node{node.rank}/steal", "steal",
                                  "serve", self.env.now, self.env.now)
        yield from node.endpoint.send(
            payload["thief"], "steal_reply",
            payload={"req_id": payload["req_id"], "job": job},
            nbytes=nbytes)

    def _absorb_result(self, node: ComputeNode, payload: Dict[str, Any]) -> Generator:
        yield from node.cpu_delay(self.config.result_handle_overhead_s,
                                  label="result-recv")
        job = self._stolen_out.pop(payload["job_id"], None)
        if job is not None and not job.done.triggered:
            self.stats.results_returned += 1
            job.done.succeed(payload["result"])

    # ------------------------------------------------------------------
    # stealing
    # ------------------------------------------------------------------
    def _try_steal(self, node: ComputeNode) -> Generator:
        """One steal *round*: poll victims in random order until a job is
        found or every victim declined (Satin's random work-stealing retries
        immediately on failure — only a fully failed round backs off)."""
        victims = [n for n in self.cluster.alive_nodes() if n.rank != node.rank]
        if not victims:
            return None
        self.rng.shuffle(victims)
        if not self.config.steal_sweep:
            victims = victims[:1]
        for victim in victims:
            if self._shutdown:
                return None
            req_id = next(self._req_ids)
            wake = self.env.event()
            self._steal_waits[req_id] = (wake, victim.rank)
            self.stats.steal_attempts += 1
            yield from node.endpoint.send(
                victim.rank, "steal_request",
                payload={"req_id": req_id, "thief": node.rank},
                nbytes=self.config.control_message_bytes)
            job = yield wake
            self._steal_waits.pop(req_id, None)
            if job is not None:
                self.stats.steal_successes += 1
                return job
            # Check for local work that arrived while the request was out.
            local = self.deques[node.rank].pop()
            if local is not None:
                return local
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute_job(self, node: ComputeNode, job: Job) -> Generator:
        self.stats.jobs_executed[node.rank] = \
            self.stats.jobs_executed.get(node.rank, 0) + 1
        result = yield from self._run_task(node, job.task, job.depth,
                                           job.manycore)
        if job.origin_rank == node.rank:
            if not job.done.triggered:
                job.done.succeed(result)
        else:
            # Fire-and-forget transfer back: overlaps with the next job
            # (Satin's latency hiding).
            self.env.process(node.endpoint.send(
                job.origin_rank, "result",
                payload={"job_id": job.id, "result": result},
                nbytes=self.config.control_message_bytes
                + self.app.result_bytes(job.task)))

    def _run_task(self, node: ComputeNode, task: Any, depth: int,
                  manycore: bool) -> Generator:
        app = self.app
        if app.is_leaf(task):
            result = yield from self._execute_leaf(node, task)
            self.stats.leaves_executed[node.rank] = \
                self.stats.leaves_executed.get(node.rank, 0) + 1
            self.stats.total_leaf_flops += app.leaf_flops(task)
            return result
        if not manycore and self._manycore_enabled(node) and app.is_manycore(task):
            manycore = True  # Cashmere.enableManyCore()
        children = list(app.divide(task))
        if not children:
            raise ValueError(f"{app.name}: divide() returned no children")
        if manycore:
            results = yield from self._run_manycore_children(node, children, depth)
        else:
            jobs: List[Job] = []
            for child in children:
                yield from node.cpu_delay(self.config.spawn_overhead_s,
                                          label="spawn")
                job = Job(task=child, origin_rank=node.rank, depth=depth + 1,
                          manycore=False, done=self.env.event())
                jobs.append(job)
                self.deques[node.rank].push(job)
            results = yield from self._sync(node, jobs)
        return app.combine(task, results)

    def _manycore_enabled(self, node: ComputeNode) -> bool:
        """Whether this runtime honors enableManyCore (Cashmere overrides)."""
        return False

    def _run_manycore_children(self, node: ComputeNode, children: List[Any],
                               depth: int) -> Generator:
        """Thread-per-spawn execution under enableManyCore (Sec. III-B).

        Spawns no longer produce stealable jobs; each spawnable call gets a
        node-local thread, and sync joins them.
        """
        procs = [self.env.process(
            self._run_task(node, child, depth + 1, True))
            for child in children]
        results = []
        for proc in procs:
            results.append((yield proc))
        return results

    def _sync(self, node: ComputeNode, jobs: List[Job]) -> Generator:
        """Block until all child jobs are done, working meanwhile.

        A waiting computation first drains its local deque; when that is
        empty it keeps a steal helper running (Satin steals *during* sync —
        a node whose children were all stolen must not sit idle while other
        nodes hold queued work) and sleeps until a child completes or new
        local work appears.
        """
        pending: Dict[int, Job] = {j.id: j for j in jobs}
        deque = self.deques[node.rank]
        while True:
            for jid in [k for k, j in pending.items() if j.done.triggered]:
                pending.pop(jid)
            if not pending:
                break
            local = deque.pop()
            if local is not None:
                # Run the job as its own simulation process: inline
                # delegation would nest Python generator frames linearly in
                # the number of chained jobs and overflow the stack on
                # fine-grained runs.
                yield self.env.process(self._execute_job(node, local))
                continue
            # Nothing local: wait for a stolen child's result or new work,
            # keeping one background steal round in flight for this node.
            self._spawn_sync_steal_helper(node)
            wait_ev = deque.wait()
            if wait_ev.triggered:
                yield self.env.process(self._execute_job(node, wait_ev.value))
                continue
            child_events = [j.done for j in pending.values()]
            yield self.env.any_of(child_events + [wait_ev])
            if wait_ev.triggered:
                yield self.env.process(self._execute_job(node, wait_ev.value))
            else:
                deque.cancel_wait(wait_ev)
        return [j.done.value for j in jobs]

    def _spawn_sync_steal_helper(self, node: ComputeNode) -> None:
        """Ensure one background steal helper runs for this node."""
        if self._sync_stealing.get(node.rank) or self._shutdown:
            return
        if len(self.cluster.alive_nodes()) <= 1:
            return
        self._sync_stealing[node.rank] = True
        self.env.process(self._sync_steal_helper(node))

    def _sync_steal_helper(self, node: ComputeNode) -> Generator:
        """Steal rounds on behalf of sync-blocked computations.

        A stolen job is pushed into the node's deque, where the waiting
        sync (or an idle worker) picks it up.  Failed rounds back off so
        idle periods stay cheap in simulation events.
        """
        backoff = self.config.steal_backoff_s
        try:
            while not self._shutdown and not node.crashed:
                job = yield from self._try_steal(node)
                if job is not None:
                    self.deques[node.rank].push(job)
                    return
                if len(self.deques[node.rank]) > 0:
                    return  # local work appeared; no need to keep stealing
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2.0, self.config.steal_backoff_max_s)
        except Interrupt:
            return
        finally:
            self._sync_stealing[node.rank] = False

    def _execute_leaf(self, node: ComputeNode, task: Any) -> Generator:
        """Leaf execution; plain Satin runs it on one CPU core."""
        ctx = LeafContext(self, node)
        result = yield from self.app.leaf(task, ctx)
        return result

    # ------------------------------------------------------------------
    # fault tolerance
    # ------------------------------------------------------------------
    def _requeue_orphans(self, dead_rank: int) -> Generator:
        yield self.env.timeout(self.config.membership_notify_s)
        for job_id, job in list(self._stolen_out.items()):
            if job.thief_rank == dead_rank and not job.done.triggered:
                del self._stolen_out[job_id]
                job.thief_rank = None
                origin = self.cluster.node(job.origin_rank)
                if origin.crashed:
                    continue
                self.stats.orphans_requeued += 1
                self.deques[job.origin_rank].push(job)
