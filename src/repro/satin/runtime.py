"""The Satin runtime: spawn/sync divide-and-conquer with random work stealing.

This is the cluster-level engine of the reproduction (Sec. II-A):

* **spawn** — dividing a task creates child jobs in the node's work deque;
  other nodes can steal them,
* **sync** — the spawning computation blocks until its children are done,
  executing local work (and absorbing stolen children's results) meanwhile,
* **random work-stealing** — idle workers send steal requests to uniformly
  random victims; a stolen job's input crosses the network, it executes on
  the thief (possibly spawning further work there), and the result crosses
  back,
* **latency hiding** — result transfers are fire-and-forget processes that
  overlap with computation,
* **fault tolerance** — when a node crashes, jobs it had stolen are
  re-queued at their origin nodes (orphan re-execution), mimicking Satin's
  recovery via the Ibis membership service.

Protocol handling consumes CPU cores.  Under plain Satin all 8 cores run
leaf computations, so steal/result handling queues behind them — exactly the
second cause of Satin's reduced scalability discussed in Sec. V-B.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cluster.das4 import SimCluster
from ..cluster.node import ComputeNode
from ..obs.export import overlap_fraction
from ..obs.metrics import MetricsRegistry
from ..sim.engine import Environment, Event, Interrupt, Process
from .job import DivideConquerApp, Job, LeafContext
from .queues import WorkDeque

__all__ = ["RuntimeConfig", "RunStats", "RunResult", "SatinRuntime"]


@dataclass
class RuntimeConfig:
    """Tunable constants of the runtime (defaults model the Java/Ibis stack)."""

    workers_per_node: int = 8          #: Satin needs 8 jobs to fill a node (Sec. V-B)
    spawn_overhead_s: float = 20e-6    #: CPU cost of creating one job
    steal_handle_overhead_s: float = 15e-6   #: CPU cost of serving a steal request
    result_handle_overhead_s: float = 10e-6  #: CPU cost of absorbing a result
    steal_backoff_s: float = 100e-6    #: initial idle wait after a failed steal
    steal_backoff_max_s: float = 0.1   #: exponential backoff cap (keeps idle
                                       #: workers event-cheap on long runs
                                       #: without stalling iteration starts)
    control_message_bytes: float = 64.0
    membership_notify_s: float = 1e-3  #: crash-detection latency
    seed: int = 42
    #: a steal round polls every victim in random order (Satin's behavior);
    #: False limits each round to a single random victim (ablation)
    steal_sweep: bool = True
    #: workers keep stealing after the root result is in (they are stopped
    #: by the runtime); bound their total count of backoff loops per run
    max_failed_steals: Optional[int] = None
    #: run the MCPL static verifier (:mod:`repro.mcl.verify`) over every
    #: registered kernel version before the run starts and refuse to run
    #: when an unsuppressed error-severity finding remains.  Ignored by the
    #: plain Satin runtime (no kernels); enforced by CashmereRuntime.
    verify_kernels: bool = False


class RunStats:
    """Counters collected during one run.

    Since the unified observability layer (:mod:`repro.obs`) this is a
    *view* over a :class:`~repro.obs.metrics.MetricsRegistry` — the
    registry is the only bookkeeping path, and the historical field names
    (``steal_attempts``, ``jobs_executed``, ...) are read-only projections
    of its counters.  Access the registry directly for per-node/per-device
    breakdowns, histograms and derived gauges.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.makespan_s: float = 0.0
        r = self.registry
        self._jobs = r.counter(
            "satin_jobs_executed_total", "jobs executed, by node")
        self._leaves = r.counter(
            "satin_leaves_executed_total", "leaf tasks executed, by node")
        self._leaf_flops = r.counter(
            "satin_leaf_flops_total", "application flops performed by leaves")
        self._steal_attempts = r.counter(
            "satin_steal_attempts_total", "steal requests sent, by thief node")
        self._steal_successes = r.counter(
            "satin_steal_successes_total", "successful steals, by thief node")
        self._results = r.counter(
            "satin_results_returned_total", "stolen-job results returned")
        self._orphans = r.counter(
            "satin_orphans_requeued_total", "orphan jobs re-queued, by origin")
        self._fallbacks = r.counter(
            "cashmere_cpu_fallbacks_total", "leaves that fell back to the CPU")
        self._ooc = r.counter(
            "cashmere_out_of_core_launches_total", "out-of-core leaf launches")
        self._spawns = r.counter(
            "satin_jobs_spawned_total", "jobs spawned into work deques, by node")
        self._queue_depth = r.histogram(
            "satin_queue_depth", "work-deque depth observed at each push")
        # hot-path bound children: label keys resolved once per (metric,
        # rank), per-call cost is one dict get + one dict-slot update
        # (keeps the disabled-observability overhead within the <5%
        # budget of docs/observability.md)
        self._jobs_c: Dict[int, Any] = {}
        self._leaves_c: Dict[int, Any] = {}
        self._spawns_c: Dict[int, Any] = {}
        self._attempts_c: Dict[int, Any] = {}
        self._successes_c: Dict[int, Any] = {}
        self._orphans_c: Dict[int, Any] = {}
        self._depth_c: Dict[int, Any] = {}
        self._leaf_flops_inc = self._leaf_flops.child()
        self._results_inc = self._results.child()
        self._fallbacks_inc = self._fallbacks.child()
        self._ooc_inc = self._ooc.child()

    # -- mutation (used by the runtimes; one bookkeeping path) -------------
    def count_job(self, rank: int) -> None:
        fn = self._jobs_c.get(rank)
        if fn is None:
            fn = self._jobs_c[rank] = self._jobs.child(node=rank)
        fn()

    def count_leaf(self, rank: int, flops: float) -> None:
        fn = self._leaves_c.get(rank)
        if fn is None:
            fn = self._leaves_c[rank] = self._leaves.child(node=rank)
        fn()
        self._leaf_flops_inc(flops)

    def count_spawn(self, rank: int) -> None:
        fn = self._spawns_c.get(rank)
        if fn is None:
            fn = self._spawns_c[rank] = self._spawns.child(node=rank)
        fn()

    def count_steal_attempt(self, rank: int) -> None:
        fn = self._attempts_c.get(rank)
        if fn is None:
            fn = self._attempts_c[rank] = self._steal_attempts.child(node=rank)
        fn()

    def count_steal_success(self, rank: int) -> None:
        fn = self._successes_c.get(rank)
        if fn is None:
            fn = self._successes_c[rank] = self._steal_successes.child(node=rank)
        fn()

    def count_result_returned(self) -> None:
        self._results_inc()

    def count_orphan_requeued(self, origin_rank: int) -> None:
        fn = self._orphans_c.get(origin_rank)
        if fn is None:
            fn = self._orphans_c[origin_rank] = self._orphans.child(
                node=origin_rank)
        fn()

    def count_cpu_fallback(self) -> None:
        self._fallbacks_inc()

    def count_out_of_core(self) -> None:
        self._ooc_inc()

    def observe_queue_depth(self, rank: int, depth: int) -> None:
        fn = self._depth_c.get(rank)
        if fn is None:
            fn = self._depth_c[rank] = self._queue_depth.child(node=rank)
        fn(depth)

    # -- legacy field views -------------------------------------------------
    @staticmethod
    def _by_node(counter) -> Dict[int, int]:
        return {rank: int(v) for rank, v in sorted(counter.by_label("node").items())}

    @property
    def jobs_executed(self) -> Dict[int, int]:
        return self._by_node(self._jobs)

    @property
    def leaves_executed(self) -> Dict[int, int]:
        return self._by_node(self._leaves)

    @property
    def steal_attempts(self) -> int:
        return int(self._steal_attempts.total)

    @property
    def steal_successes(self) -> int:
        return int(self._steal_successes.total)

    @property
    def results_returned(self) -> int:
        return int(self._results.total)

    @property
    def orphans_requeued(self) -> int:
        return int(self._orphans.total)

    @property
    def cpu_fallbacks(self) -> int:
        return int(self._fallbacks.total)

    @property
    def out_of_core_launches(self) -> int:
        return int(self._ooc.total)

    @property
    def total_leaf_flops(self) -> float:
        return self._leaf_flops.total

    @property
    def total_jobs(self) -> int:
        return int(self._jobs.total)

    @property
    def total_leaves(self) -> int:
        return int(self._leaves.total)

    def gflops(self) -> float:
        """Application-level achieved GFLOPS (the figures' y-axis)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_leaf_flops / self.makespan_s / 1e9


@dataclass
class RunResult:
    result: Any
    stats: RunStats


class SatinRuntime:
    """One Satin execution on a simulated cluster.

    A runtime instance drives exactly one :meth:`run`; build a fresh cluster
    and runtime per experiment (cheap — everything is plain Python).
    """

    def __init__(self, cluster: SimCluster, app: DivideConquerApp,
                 config: Optional[RuntimeConfig] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.app = app
        self.config = config or RuntimeConfig()
        self.rng = random.Random(self.config.seed)
        self.stats = RunStats()
        #: observability event bus (alias of ``env.obs``)
        self.obs = self.env.obs
        # Each deque samples its depth into the queue-depth histogram on
        # every push; the bound child makes that a plain list append.
        self.deques: Dict[int, WorkDeque] = {
            node.rank: WorkDeque(
                self.env,
                observer=self.stats._queue_depth.child(node=node.rank))
            for node in cluster.nodes}
        #: jobs stolen *from* each origin, by job id (fault tolerance)
        self._stolen_out: Dict[int, Job] = {}
        #: pending steal requests: req_id -> (wakeup event, victim rank)
        self._steal_waits: Dict[int, Tuple[Event, int]] = {}
        self._req_ids = itertools.count()
        #: per-runtime job ids keep the observability event stream
        #: deterministic across runs within one process
        self._job_ids = itertools.count()
        self._processes: Dict[int, List[Process]] = {}
        self._shared_objects: Dict[str, Any] = {}
        #: nodes with a sync-steal helper in flight (at most one per node)
        self._sync_stealing: Dict[int, bool] = {}
        self._shutdown = False
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, root_task: Any, until: Optional[float] = None) -> RunResult:
        """Execute the divide-and-conquer computation to completion."""
        if self._started:
            raise RuntimeError("a SatinRuntime instance runs exactly once")
        self._started = True
        self._start_nodes()
        master = self.cluster.node(0)
        start = self.env.now
        root_proc = self.env.process(self._root(master, root_task))
        result = self.env.run(until=root_proc)
        self._finish_run(start)
        return RunResult(result=result, stats=self.stats)

    def _finish_run(self, start: float) -> None:
        """Shared end-of-run bookkeeping: makespan + derived gauges."""
        self._shutdown = True
        self._finished = True
        self.stats.makespan_s = self.env.now - start
        self._finalize_metrics()

    def _finalize_metrics(self) -> None:
        """Derive the per-node / per-device gauges the paper's figures use.

        Everything here is computed from counters and (when the bus is on)
        the event stream — no second bookkeeping path.
        """
        r = self.stats.registry
        makespan = self.stats.makespan_s
        steal_ratio = r.gauge(
            "satin_steal_success_ratio", "steal successes / attempts, by node")
        attempts = self.stats._steal_attempts.by_label("node")
        successes = self.stats._steal_successes.by_label("node")
        for rank, att in sorted(attempts.items()):
            steal_ratio.set(successes.get(rank, 0.0) / att if att else 0.0,
                            node=rank)
        cpu_util = r.gauge(
            "node_cpu_utilization", "host-CPU busy fraction, by node")
        dev_util = r.gauge(
            "device_utilization", "kernel-engine busy fraction, by device lane")
        overlap = r.gauge(
            "device_overlap_fraction",
            "fraction of PCIe transfer time overlapped with kernels")
        net_bytes = r.gauge("network_bytes_total",
                            "bytes carried by the interconnect")
        net_msgs = r.gauge("network_messages_total",
                           "messages carried by the interconnect")
        net_bytes.set(self.cluster.network.total_bytes)
        net_msgs.set(self.cluster.network.total_messages)
        events = self.obs.events if self.obs.enabled else None
        for node in self.cluster.nodes:
            if makespan > 0:
                cpu_util.set(
                    min(node.busy_cpu_s / (node.cpu.cores * makespan), 1.0),
                    node=node.rank)
            for dev in node.devices:
                if makespan > 0:
                    dev_util.set(min(dev.busy_kernel_s / makespan, 1.0),
                                 lane=dev.lane)
                if events is not None:
                    frac = overlap_fraction(events, dev.lane)
                    if frac is not None:
                        overlap.set(frac, lane=dev.lane)

    def register_shared_object(self, obj: Any) -> None:
        """Attach a :class:`repro.satin.shared_objects.SharedObject`."""
        if obj.name in self._shared_objects:
            raise ValueError(f"shared object {obj.name!r} already registered")
        self._shared_objects[obj.name] = obj

    def shared_object(self, name: str) -> Any:
        return self._shared_objects[name]

    def crash_node(self, rank: int) -> None:
        """Crash a node (fault injection).  The master cannot crash."""
        if rank == 0:
            raise ValueError("crashing the master is not supported")
        node = self.cluster.node(rank)
        if node.crashed:
            return
        node.crashed = True
        if self.obs.enabled:
            self.obs.emit("crash", node=rank)
        for proc in self._processes.get(rank, []):
            proc.interrupt("node crashed")
        # Steal requests in flight to the dead node fail.
        for req_id, (ev, victim) in list(self._steal_waits.items()):
            if victim == rank and not ev.triggered:
                ev.succeed(None)
        # Orphans: jobs the dead node had stolen get re-queued at their
        # origins after the membership service notices the crash.
        self.env.process(self._requeue_orphans(rank))

    def crash_after(self, rank: int, delay: float) -> None:
        """Schedule a crash at ``delay`` seconds of virtual time from now."""

        def crasher():
            yield self.env.timeout(delay)
            self.crash_node(rank)

        self.env.process(crasher())

    # ------------------------------------------------------------------
    # node processes
    # ------------------------------------------------------------------
    def _start_nodes(self) -> None:
        for node in self.cluster.nodes:
            procs = [self.env.process(self._message_handler(node))]
            for w in range(self.config.workers_per_node):
                procs.append(self.env.process(self._worker(node, w)))
            self._processes[node.rank] = procs

    def _root(self, master: ComputeNode, root_task: Any) -> Generator:
        result = yield from self.app.program(self, master, root_task)
        return result

    def run_subtask(self, node: ComputeNode, task: Any) -> Generator:
        """Process: execute one task tree to completion (for iterative
        programs: one spawn+sync round of the master's main loop)."""
        result = yield from self._run_task(node, task, depth=0, manycore=False)
        return result

    def broadcast_from(self, node: ComputeNode, nbytes: float,
                       tag: str = "app-bcast", payload: Any = None) -> Generator:
        """Process: broadcast application data (e.g. updated centroids) from
        one node to all others, charging the network."""
        yield from self.cluster.network.broadcast(
            node.endpoint, tag, payload=payload, nbytes=nbytes,
            ranks=[n.rank for n in self.cluster.alive_nodes()])

    def allgather(self, total_bytes: float, tag: str = "app-allgather"
                  ) -> Generator:
        """Process: all-to-all exchange of ``total_bytes`` of shared state.

        Every alive node owns an equal share and sends it to every other
        node; all NICs inject concurrently, so the exchange takes roughly
        ``(P-1)/P * total_bytes / bandwidth`` — the n-body position update
        pattern ("all-to-all for each compute node", Sec. IV).
        """
        nodes = self.cluster.alive_nodes()
        if len(nodes) <= 1:
            return
        share = total_bytes / len(nodes)

        def node_sends(src: ComputeNode) -> Generator:
            for dst in nodes:
                if dst.rank != src.rank:
                    yield from src.endpoint.send(dst.rank, tag, nbytes=share)

        procs = [self.env.process(node_sends(n)) for n in nodes]
        for proc in procs:
            yield proc

    def _worker(self, node: ComputeNode, index: int) -> Generator:
        """One worker: pop local work, else steal from a random victim.

        Failed steals back off exponentially (capped) and the idle wait is
        interrupted as soon as local work appears, so idle workers stay
        cheap in simulation events even across hours of virtual time.
        """
        failed = 0
        backoff = self.config.steal_backoff_s
        deque = self.deques[node.rank]
        try:
            while not self._shutdown:
                job = deque.pop()
                if job is None and len(self.cluster.alive_nodes()) > 1:
                    job = yield from self._try_steal(node)
                if job is not None:
                    failed = 0
                    backoff = self.config.steal_backoff_s
                    yield from self._execute_job(node, job)
                    continue
                failed += 1
                limit = self.config.max_failed_steals
                if limit is not None and failed >= limit:
                    return
                # Sleep until the backoff expires or local work arrives.
                wait_ev = deque.wait()
                if wait_ev.triggered:
                    yield from self._execute_job(node, wait_ev.value)
                    continue
                timer = self.env.timeout(backoff)
                yield self.env.any_of([wait_ev, timer])
                if wait_ev.triggered:
                    backoff = self.config.steal_backoff_s
                    yield from self._execute_job(node, wait_ev.value)
                else:
                    deque.cancel_wait(wait_ev)
                    backoff = min(backoff * 2.0, self.config.steal_backoff_max_s)
        except Interrupt:
            return  # node crashed

    def _message_handler(self, node: ComputeNode) -> Generator:
        try:
            while not self._shutdown:
                msg = yield node.endpoint.recv()
                if msg.tag == "steal_request":
                    # Serve in a sub-process so a busy CPU delays the reply
                    # without blocking later messages' bookkeeping order.
                    self.env.process(self._serve_steal(node, msg.payload))
                elif msg.tag == "steal_reply":
                    entry = self._steal_waits.get(msg.payload["req_id"])
                    if entry is not None and not entry[0].triggered:
                        entry[0].succeed(msg.payload["job"])
                elif msg.tag == "result":
                    self.env.process(self._absorb_result(node, msg.payload))
                elif msg.tag == "shared_update":
                    obj = self._shared_objects.get(msg.payload["name"])
                    if obj is not None:
                        obj.apply_update(node.rank, msg.payload)
                elif msg.tag == "user":
                    handler = getattr(self.app, "on_message", None)
                    if handler is not None:
                        handler(node, msg.payload)
        except Interrupt:
            return

    def _serve_steal(self, node: ComputeNode, payload: Dict[str, Any]) -> Generator:
        yield from node.cpu_delay(self.config.steal_handle_overhead_s,
                                  label="steal-serve")
        job = self.deques[node.rank].steal()
        nbytes = self.config.control_message_bytes
        if job is not None:
            job.thief_rank = payload["thief"]
            self._stolen_out[job.id] = job
            nbytes += self.app.task_bytes(job.task)
        if self.obs.enabled:
            self.obs.emit("steal", node=node.rank,
                          lane=f"node{node.rank}/steal",
                          start=self.env.now, end=self.env.now,
                          label="serve", thief=payload["thief"],
                          hit=job is not None)
        yield from node.endpoint.send(
            payload["thief"], "steal_reply",
            payload={"req_id": payload["req_id"], "job": job},
            nbytes=nbytes)

    def _absorb_result(self, node: ComputeNode, payload: Dict[str, Any]) -> Generator:
        yield from node.cpu_delay(self.config.result_handle_overhead_s,
                                  label="result-recv")
        job = self._stolen_out.pop(payload["job_id"], None)
        if job is not None and not job.done.triggered:
            self.stats.count_result_returned()
            if self.obs.enabled:
                self.obs.emit("result_recv", node=node.rank,
                              job_id=payload["job_id"])
            job.done.succeed(payload["result"])

    # ------------------------------------------------------------------
    # stealing
    # ------------------------------------------------------------------
    def _try_steal(self, node: ComputeNode) -> Generator:
        """One steal *round*: poll victims in random order until a job is
        found or every victim declined (Satin's random work-stealing retries
        immediately on failure — only a fully failed round backs off)."""
        victims = [n for n in self.cluster.alive_nodes() if n.rank != node.rank]
        if not victims:
            return None
        self.rng.shuffle(victims)
        if not self.config.steal_sweep:
            victims = victims[:1]
        for victim in victims:
            if self._shutdown:
                return None
            req_id = next(self._req_ids)
            wake = self.env.event()
            self._steal_waits[req_id] = (wake, victim.rank)
            self.stats.count_steal_attempt(node.rank)
            if self.obs.enabled:
                self.obs.emit("steal_attempt", node=node.rank,
                              victim=victim.rank, req_id=req_id)
            yield from node.endpoint.send(
                victim.rank, "steal_request",
                payload={"req_id": req_id, "thief": node.rank},
                nbytes=self.config.control_message_bytes)
            job = yield wake
            self._steal_waits.pop(req_id, None)
            if job is not None:
                self.stats.count_steal_success(node.rank)
                if self.obs.enabled:
                    self.obs.emit("steal_success", node=node.rank,
                                  victim=victim.rank, req_id=req_id,
                                  job_id=job.id)
                return job
            # Check for local work that arrived while the request was out.
            local = self.deques[node.rank].pop()
            if local is not None:
                return local
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute_job(self, node: ComputeNode, job: Job) -> Generator:
        self.stats.count_job(node.rank)
        result = yield from self._run_task(node, job.task, job.depth,
                                           job.manycore)
        if job.origin_rank == node.rank:
            if not job.done.triggered:
                job.done.succeed(result)
        else:
            # Fire-and-forget transfer back: overlaps with the next job
            # (Satin's latency hiding).
            self.env.process(node.endpoint.send(
                job.origin_rank, "result",
                payload={"job_id": job.id, "result": result},
                nbytes=self.config.control_message_bytes
                + self.app.result_bytes(job.task)))

    def _run_task(self, node: ComputeNode, task: Any, depth: int,
                  manycore: bool) -> Generator:
        app = self.app
        if app.is_leaf(task):
            result = yield from self._execute_leaf(node, task)
            self.stats.count_leaf(node.rank, app.leaf_flops(task))
            return result
        if not manycore and self._manycore_enabled(node) and app.is_manycore(task):
            manycore = True  # Cashmere.enableManyCore()
        children = list(app.divide(task))
        if not children:
            raise ValueError(f"{app.name}: divide() returned no children")
        if manycore:
            results = yield from self._run_manycore_children(node, children, depth)
        else:
            jobs: List[Job] = []
            rank = node.rank
            obs = self.obs
            deque = self.deques[rank]
            count_spawn = self.stats.count_spawn
            for child in children:
                yield from node.cpu_delay(self.config.spawn_overhead_s,
                                          label="spawn")
                job = Job(task=child, origin_rank=rank, depth=depth + 1,
                          manycore=False, done=self.env.event(),
                          id=next(self._job_ids))
                jobs.append(job)
                count_spawn(rank)
                if obs.enabled:
                    obs.emit("spawn", node=rank, job_id=job.id,
                             depth=job.depth)
                deque.push(job)
            results = yield from self._sync(node, jobs)
        return app.combine(task, results)

    def _manycore_enabled(self, node: ComputeNode) -> bool:
        """Whether this runtime honors enableManyCore (Cashmere overrides)."""
        return False

    def _run_manycore_children(self, node: ComputeNode, children: List[Any],
                               depth: int) -> Generator:
        """Thread-per-spawn execution under enableManyCore (Sec. III-B).

        Spawns no longer produce stealable jobs; each spawnable call gets a
        node-local thread, and sync joins them.
        """
        procs = [self.env.process(
            self._run_task(node, child, depth + 1, True))
            for child in children]
        results = []
        for proc in procs:
            results.append((yield proc))
        return results

    def _sync(self, node: ComputeNode, jobs: List[Job]) -> Generator:
        """Block until all child jobs are done, working meanwhile.

        A waiting computation first drains its local deque; when that is
        empty it keeps a steal helper running (Satin steals *during* sync —
        a node whose children were all stolen must not sit idle while other
        nodes hold queued work) and sleeps until a child completes or new
        local work appears.
        """
        pending: Dict[int, Job] = {j.id: j for j in jobs}
        deque = self.deques[node.rank]
        while True:
            for jid in [k for k, j in pending.items() if j.done.triggered]:
                pending.pop(jid)
            if not pending:
                break
            local = deque.pop()
            if local is not None:
                # Run the job as its own simulation process: inline
                # delegation would nest Python generator frames linearly in
                # the number of chained jobs and overflow the stack on
                # fine-grained runs.
                yield self.env.process(self._execute_job(node, local))
                continue
            # Nothing local: wait for a stolen child's result or new work,
            # keeping one background steal round in flight for this node.
            self._spawn_sync_steal_helper(node)
            wait_ev = deque.wait()
            if wait_ev.triggered:
                yield self.env.process(self._execute_job(node, wait_ev.value))
                continue
            child_events = [j.done for j in pending.values()]
            yield self.env.any_of(child_events + [wait_ev])
            if wait_ev.triggered:
                yield self.env.process(self._execute_job(node, wait_ev.value))
            else:
                deque.cancel_wait(wait_ev)
        return [j.done.value for j in jobs]

    def _spawn_sync_steal_helper(self, node: ComputeNode) -> None:
        """Ensure one background steal helper runs for this node."""
        if self._sync_stealing.get(node.rank) or self._shutdown:
            return
        if len(self.cluster.alive_nodes()) <= 1:
            return
        self._sync_stealing[node.rank] = True
        self.env.process(self._sync_steal_helper(node))

    def _sync_steal_helper(self, node: ComputeNode) -> Generator:
        """Steal rounds on behalf of sync-blocked computations.

        A stolen job is pushed into the node's deque, where the waiting
        sync (or an idle worker) picks it up.  Failed rounds back off so
        idle periods stay cheap in simulation events.
        """
        backoff = self.config.steal_backoff_s
        try:
            while not self._shutdown and not node.crashed:
                job = yield from self._try_steal(node)
                if job is not None:
                    self.deques[node.rank].push(job)
                    return
                if len(self.deques[node.rank]) > 0:
                    return  # local work appeared; no need to keep stealing
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2.0, self.config.steal_backoff_max_s)
        except Interrupt:
            return
        finally:
            self._sync_stealing[node.rank] = False

    def _execute_leaf(self, node: ComputeNode, task: Any) -> Generator:
        """Leaf execution; plain Satin runs it on one CPU core."""
        ctx = LeafContext(self, node)
        result = yield from self.app.leaf(task, ctx)
        return result

    # ------------------------------------------------------------------
    # fault tolerance
    # ------------------------------------------------------------------
    def _requeue_orphans(self, dead_rank: int) -> Generator:
        yield self.env.timeout(self.config.membership_notify_s)
        for job_id, job in list(self._stolen_out.items()):
            if job.thief_rank == dead_rank and not job.done.triggered:
                del self._stolen_out[job_id]
                job.thief_rank = None
                origin = self.cluster.node(job.origin_rank)
                if origin.crashed:
                    continue
                self.stats.count_orphan_requeued(job.origin_rank)
                if self.obs.enabled:
                    self.obs.emit("orphan_requeue", node=job.origin_rank,
                                  job_id=job_id, dead_node=dead_rank)
                self.deques[job.origin_rank].push(job)
