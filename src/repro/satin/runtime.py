"""The Satin runtime: spawn/sync divide-and-conquer with random work stealing.

This is the cluster-level engine of the reproduction (Sec. II-A):

* **spawn** — dividing a task creates child jobs in the node's work deque;
  other nodes can steal them,
* **sync** — the spawning computation blocks until its children are done,
  executing local work (and absorbing stolen children's results) meanwhile,
* **random work-stealing** — idle workers send steal requests to victims
  chosen by the configured :mod:`~repro.satin.steal` policy (uniformly
  random by default); a stolen job's input crosses the network, it executes
  on the thief (possibly spawning further work there), and the result
  crosses back,
* **latency hiding** — result transfers are fire-and-forget processes that
  overlap with computation,
* **fault tolerance** — when a node crashes, jobs it had stolen are
  re-queued at their origin nodes (orphan re-execution), mimicking Satin's
  recovery via the Ibis membership service.

The runtime is the *orchestration* layer of a stack of subsystems, each
its own module:

* :mod:`repro.satin.comm` — the typed message protocol (steal
  request/reply pairing, reply timeouts, dispatch),
* :mod:`repro.satin.steal` — pluggable victim-selection + backoff policies,
* :mod:`repro.satin.ft` — crash detection and the orphan table,
* :mod:`repro.satin.stats` — counters, projected over the metrics registry.

Protocol handling consumes CPU cores.  Under plain Satin all 8 cores run
leaf computations, so steal/result handling queues behind them — exactly the
second cause of Satin's reduced scalability discussed in Sec. V-B.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, Generator, List, Optional

from ..analyze.races import RaceDetector
from ..cluster.das4 import SimCluster
from ..cluster.node import ComputeNode
from ..obs.export import overlap_fraction
from ..sim.engine import Environment, Interrupt, Process, Timeout, first_of
from .comm import (
    CommLayer,
    ResultReturn,
    SharedObjectUpdate,
    StealReply,
    StealRequest,
    UserMessage,
)
from .ft import FaultTolerance
from .job import DependencyTracker, DivideConquerApp, Job, LeafContext
from .queues import WorkDeque
from .stats import RunResult, RunStats
from .steal import StealPolicy, create_steal_policy

__all__ = ["RuntimeConfig", "RunStats", "RunResult", "SatinRuntime"]


@dataclass
class RuntimeConfig:
    """Tunable constants of the runtime (defaults model the Java/Ibis stack).

    The class-level ``DEFAULT_*`` constants are the single source of truth
    for values that subclasses (``CashmereConfig``) deliberately override —
    naming them keeps the two configs from silently drifting apart.
    """

    #: Satin needs 8 jobs to fill a node (Sec. V-B); Cashmere needs 4
    #: (one per device queue) — each config names its own constant.
    DEFAULT_WORKERS_PER_NODE: ClassVar[int] = 8
    #: initial idle wait after a fully failed steal round
    DEFAULT_STEAL_BACKOFF_S: ClassVar[float] = 100e-6
    #: exponential backoff cap; Cashmere uses a tighter cap (its four
    #: workers must refill device queues promptly)
    DEFAULT_STEAL_BACKOFF_MAX_S: ClassVar[float] = 0.1

    workers_per_node: int = DEFAULT_WORKERS_PER_NODE
    spawn_overhead_s: float = 20e-6    #: CPU cost of creating one job
    steal_handle_overhead_s: float = 15e-6   #: CPU cost of serving a steal request
    result_handle_overhead_s: float = 10e-6  #: CPU cost of absorbing a result
    steal_backoff_s: float = DEFAULT_STEAL_BACKOFF_S
    steal_backoff_max_s: float = DEFAULT_STEAL_BACKOFF_MAX_S
    control_message_bytes: float = 64.0
    membership_notify_s: float = 1e-3  #: crash-detection latency
    seed: int = 42
    #: victim-selection policy (registry kind ``"steal"``): ``random`` is
    #: the paper's uniform sweep; ``cluster-aware`` and ``adaptive`` are
    #: the benchmarkable alternatives of :mod:`repro.satin.steal`
    steal_policy: str = "random"
    #: reply timeout for steal requests; ``None`` (default) relies purely
    #: on the membership service to fail requests to dead nodes.  Set a
    #: timeout to survive *silent* failures the membership service misses.
    steal_reply_timeout_s: Optional[float] = None
    #: extra attempts after the first reply timeout (bounded retry)
    steal_reply_retries: int = 1
    #: a steal round polls every victim in random order (Satin's behavior);
    #: False limits each round to a single random victim (ablation)
    steal_sweep: bool = True
    #: workers keep stealing after the root result is in (they are stopped
    #: by the runtime); bound their total count of backoff loops per run
    max_failed_steals: Optional[int] = None
    #: run the MCPL static verifier (:mod:`repro.mcl.verify`) over every
    #: registered kernel version before the run starts and refuse to run
    #: when an unsuppressed error-severity finding remains.  Ignored by the
    #: plain Satin runtime (no kernels); enforced by CashmereRuntime.
    verify_kernels: bool = False
    #: attach the happens-before race sanitizer
    #: (:class:`repro.analyze.races.RaceDetector`): spawn/sync/guard edges
    #: merge per-job vector clocks and conflicting shared-object accesses
    #: are reported as ``REP201`` findings.  Off by default — with the flag
    #: off no detector exists and seeded obs event streams are
    #: byte-identical to an uninstrumented runtime.
    detect_races: bool = False
    #: serve steal requests / absorb returned results on zero-process
    #: callback chains instead of spawned generator processes.  Event
    #: streams are byte-identical either way (the chains replay the
    #: generators' event structure exactly); the switch exists for A/B
    #: regression tests.  Engages only while the network fast path is
    #: also on, so forcing ``Network.fast_transmit = False`` restores the
    #: full reference behavior in one place.
    fast_protocol: bool = True
    #: batch numpy leaf execution through ``App.leaf_batch`` where the
    #: application supports it (matmul, n-body, k-means) — one vectorized
    #: call per flush instead of per-leaf python.  Leaf *timing* and event
    #: streams are unchanged; only the host-side cost of computing leaf
    #: values drops.
    leaf_batch: bool = True


class _PendingLeaf:
    """Deferred leaf value: a placeholder returned by the batched leaf path.

    The token travels wherever the value would have (through ``job.done``,
    across the simulated network in a ``ResultReturn``) and is resolved —
    flushing the whole pending batch through ``app.leaf_batch`` — at the
    combine (or subtask return) that consumes it.  Safe because all leaves
    of one subtask round read the same committed app state; deferral only
    moves *when* the host computes the value, never what it is.
    """

    __slots__ = ("task", "value", "resolved")

    def __init__(self, task: Any):
        self.task = task
        self.value = None
        self.resolved = False


class SatinRuntime:
    """One Satin execution on a simulated cluster.

    A runtime instance drives exactly one :meth:`run`; build a fresh cluster
    and runtime per experiment (cheap — everything is plain Python).
    """

    def __init__(self, cluster: SimCluster, app: DivideConquerApp,
                 config: Optional[RuntimeConfig] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.app = app
        self.config = config or RuntimeConfig()
        self.rng = random.Random(self.config.seed)
        self.stats = RunStats()
        #: observability event bus (alias of ``env.obs``)
        self.obs = self.env.obs
        # Each deque samples its depth into the queue-depth histogram on
        # every push; the bound child makes that a plain list append.
        self.deques: Dict[int, WorkDeque] = {
            node.rank: WorkDeque(
                self.env,
                observer=self.stats._queue_depth.child(node=node.rank))
            for node in cluster.nodes}
        #: typed message-protocol layer (one channel per node)
        self.comm = CommLayer(
            self.env,
            reply_timeout_s=self.config.steal_reply_timeout_s,
            reply_retries=self.config.steal_reply_retries)
        #: victim-selection + backoff policy (registry kind ``"steal"``)
        self.steal_policy: StealPolicy = create_steal_policy(
            self.config.steal_policy)
        self.steal_policy.bind(self.obs)
        #: fault tolerance: crash injection, orphan table, re-queueing
        self.ft = FaultTolerance(self)
        #: happens-before race sanitizer, or ``None`` (the default) — every
        #: instrumentation site guards on this, so the disabled path adds
        #: no work and no obs events
        self.race_detector: Optional[RaceDetector] = (
            RaceDetector(self) if self.config.detect_races else None)
        #: deferred leaf values awaiting one vectorized ``app.leaf_batch``
        #: call (flushed at the consuming combine); the guard on the app's
        #: default ``leaf`` hook ensures the batched path replays exactly
        #: the timing that hook would have produced
        self._pending_leaves: List[_PendingLeaf] = []
        self._leaf_batching: bool = bool(
            self.config.leaf_batch
            and getattr(app, "supports_leaf_batch", False)
            and type(app).leaf is DivideConquerApp.leaf)
        #: per-rank steal-round caches: candidate victim ranks (rebuilt when
        #: cluster membership changes) and the request hooks (message
        #: builder + obs-off attempt counter), so a steal round stops
        #: allocating closures and candidate lists
        self._victim_cache: Dict[int, List[int]] = {}
        self._victim_cache_version: int = -1
        self._steal_hooks: Dict[int, Any] = {}
        #: per-runtime job ids keep the observability event stream
        #: deterministic across runs within one process
        self._job_ids = itertools.count()
        self._processes: Dict[int, List[Process]] = {}
        self._shared_objects: Dict[str, Any] = {}
        #: nodes with a sync-steal helper in flight (at most one per node)
        self._sync_stealing: Dict[int, bool] = {}
        self._shutdown = False
        self._started = False
        self._finished = False
        self._run_start = 0.0
        for node in cluster.nodes:
            self._attach_channel(node)

    def _attach_channel(self, node: ComputeNode) -> None:
        """Wire one node's typed protocol handlers."""
        ch = self.comm.attach(node.endpoint)
        # Serving happens off the dispatch loop (a sub-process, or its
        # zero-process equivalent) so a busy CPU delays the reply without
        # blocking later messages' bookkeeping order.  The fast/slow branch
        # is taken per message: both produce identical event streams, and
        # checking ``fast_transmit`` here lets tests force the whole
        # reference path through one switch.
        ch.on(StealRequest, lambda msg, node=node:
              self._serve_steal_fast(node, msg)
              if self.config.fast_protocol
              and node.endpoint.network.fast_transmit
              else self.env.process(self._serve_steal(node, msg)))
        ch.on(StealReply, lambda msg, node=node:
              self._on_steal_reply(node, msg))
        ch.on(ResultReturn, lambda msg, node=node:
              self._absorb_result_fast(node, msg)
              if self.config.fast_protocol
              and node.endpoint.network.fast_transmit
              else self.env.process(self._absorb_result(node, msg)))
        ch.on(SharedObjectUpdate, lambda msg, node=node:
              self._on_shared_update(node, msg))
        ch.on(UserMessage, lambda msg, node=node:
              self._on_user_message(node, msg))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, root_task: Any, until: Optional[float] = None) -> RunResult:
        """Execute the divide-and-conquer computation to completion."""
        root_proc = self.begin(root_task)
        self.env.run(until=root_proc)
        return self.complete(root_proc)

    def begin(self, root_task: Any) -> Process:
        """Start the run without driving the event loop.

        Starts the node processes and the root computation, then returns the
        root :class:`~repro.sim.engine.Process` *without* running the
        simulation.  External drivers (the ``repro.serve`` job executor)
        advance the environment themselves — e.g. in bounded
        :meth:`~repro.sim.engine.Environment.step` slices interleaved with
        other work — and call :meth:`complete` once the root process is
        processed.  ``run()`` is exactly ``begin`` + ``env.run`` +
        ``complete``.
        """
        if self._started:
            raise RuntimeError(
                f"a {type(self).__name__} instance runs exactly once")
        self._started = True
        self._start_nodes()
        master = self.cluster.node(0)
        self._run_start = self.env.now
        return self.env.process(self._root(master, root_task))

    def complete(self, root_proc: Process) -> RunResult:
        """Finish a run started with :meth:`begin`.

        Must be called after the root process has been processed; performs
        the end-of-run bookkeeping (makespan, derived gauges) and returns
        the :class:`RunResult`.  A failed root propagates its exception.
        """
        if not root_proc.triggered:
            raise RuntimeError("complete() before the root process finished")
        if not root_proc.ok:
            raise root_proc.value
        self._finish_run(self._run_start)
        return RunResult(result=root_proc.value, stats=self.stats)

    def _finish_run(self, start: float) -> None:
        """Shared end-of-run bookkeeping: makespan + derived gauges."""
        self._shutdown = True
        self._finished = True
        self.stats.makespan_s = self.env.now - start
        self._finalize_metrics()

    def _finalize_metrics(self) -> None:
        """Derive the per-node / per-device gauges the paper's figures use.

        Everything here is computed from counters and (when the bus is on)
        the event stream — no second bookkeeping path.
        """
        r = self.stats.registry
        makespan = self.stats.makespan_s
        steal_ratio = r.gauge(
            "satin_steal_success_ratio", "steal successes / attempts, by node")
        attempts = self.stats._steal_attempts.by_label("node")
        successes = self.stats._steal_successes.by_label("node")
        for rank, att in sorted(attempts.items()):
            steal_ratio.set(successes.get(rank, 0.0) / att if att else 0.0,
                            node=rank)
        cpu_util = r.gauge(
            "node_cpu_utilization", "host-CPU busy fraction, by node")
        dev_util = r.gauge(
            "device_utilization", "kernel-engine busy fraction, by device lane")
        overlap = r.gauge(
            "device_overlap_fraction",
            "fraction of PCIe transfer time overlapped with kernels")
        net_bytes = r.gauge("network_bytes_total",
                            "bytes carried by the interconnect")
        net_msgs = r.gauge("network_messages_total",
                           "messages carried by the interconnect")
        net_bytes.set(self.cluster.network.total_bytes)
        net_msgs.set(self.cluster.network.total_messages)
        events = self.obs.events if self.obs.enabled else None
        for node in self.cluster.nodes:
            if makespan > 0:
                cpu_util.set(
                    min(node.busy_cpu_s / (node.cpu.cores * makespan), 1.0),
                    node=node.rank)
            for dev in node.devices:
                if makespan > 0:
                    dev_util.set(min(dev.busy_kernel_s / makespan, 1.0),
                                 lane=dev.lane)
                if events is not None:
                    frac = overlap_fraction(events, dev.lane)
                    if frac is not None:
                        overlap.set(frac, lane=dev.lane)

    def register_shared_object(self, obj: Any) -> None:
        """Attach a :class:`repro.satin.shared_objects.SharedObject`."""
        if obj.name in self._shared_objects:
            raise ValueError(f"shared object {obj.name!r} already registered")
        self._shared_objects[obj.name] = obj

    def shared_object(self, name: str) -> Any:
        return self._shared_objects[name]

    def crash_node(self, rank: int, notify_comm: bool = True) -> None:
        """Crash a node (fault injection; delegates to the FT layer).

        ``notify_comm=False`` models a silent failure the membership
        service never reports — recovery then relies on the comm layer's
        reply-timeout path (``steal_reply_timeout_s``)."""
        self.ft.crash_node(rank, notify_comm=notify_comm)

    def crash_after(self, rank: int, delay: float) -> None:
        """Schedule a crash at ``delay`` seconds of virtual time from now."""
        self.ft.crash_after(rank, delay)

    # ------------------------------------------------------------------
    # node processes
    # ------------------------------------------------------------------
    def _start_nodes(self) -> None:
        fast = (self.config.fast_protocol
                and self.cluster.network.fast_transmit)
        for node in self.cluster.nodes:
            channel = self.comm.channel(node.rank)
            procs: List[Process] = []
            if fast:
                # Callback pump instead of a dispatch process; its
                # "interrupt" is channel.stop_pump(), wired into
                # FaultTolerance.crash_node.
                channel.start_pump()
            else:
                procs.append(self.env.process(channel.dispatch()))
            for w in range(self.config.workers_per_node):
                procs.append(self.env.process(self._worker(node, w)))
            self._processes[node.rank] = procs

    def _root(self, master: ComputeNode, root_task: Any) -> Generator:
        result = yield from self.app.program(self, master, root_task)
        return result

    def run_subtask(self, node: ComputeNode, task: Any) -> Generator:
        """Process: execute one task tree to completion (for iterative
        programs: one spawn+sync round of the master's main loop)."""
        result = yield from self._run_task(node, task, depth=0, manycore=False,
                                           task_id=RaceDetector.ROOT)
        if self._leaf_batching:
            result = self._leaf_value(result)  # a root-is-leaf task
        return result

    def broadcast_from(self, node: ComputeNode, nbytes: float,
                       tag: str = "app-bcast", payload: Any = None) -> Generator:
        """Process: broadcast application data (e.g. updated centroids) from
        one node to all others, charging the network."""
        yield from self.cluster.network.broadcast(
            node.endpoint, tag, payload=payload, nbytes=nbytes,
            ranks=[n.rank for n in self.cluster.alive_nodes()])

    def allgather(self, total_bytes: float, tag: str = "app-allgather"
                  ) -> Generator:
        """Process: all-to-all exchange of ``total_bytes`` of shared state.

        Every alive node owns an equal share and sends it to every other
        node; all NICs inject concurrently, so the exchange takes roughly
        ``(P-1)/P * total_bytes / bandwidth`` — the n-body position update
        pattern ("all-to-all for each compute node", Sec. IV).
        """
        nodes = self.cluster.alive_nodes()
        if len(nodes) <= 1:
            return
        share = total_bytes / len(nodes)

        def node_sends(src: ComputeNode) -> Generator:
            for dst in nodes:
                if dst.rank != src.rank:
                    yield from src.endpoint.send(dst.rank, tag, nbytes=share)

        procs = [self.env.process(node_sends(n)) for n in nodes]
        for proc in procs:
            yield proc

    def _worker(self, node: ComputeNode, index: int) -> Generator:
        """One worker: pop local work, else steal from a policy-chosen victim.

        Failed steals back off (schedule owned by the steal policy; capped
        exponential by default) and the idle wait is interrupted as soon as
        local work appears, so idle workers stay cheap in simulation events
        even across hours of virtual time.
        """
        policy = self.steal_policy
        failed = 0
        backoff = policy.initial_backoff(self.config)
        deque = self.deques[node.rank]
        try:
            while not self._shutdown:
                job = deque.pop()
                if job is None and len(self.cluster.alive_nodes()) > 1:
                    job = yield from self._try_steal(node)
                if job is not None:
                    failed = 0
                    backoff = policy.initial_backoff(self.config)
                    yield from self._execute_job(node, job)
                    continue
                failed += 1
                limit = self.config.max_failed_steals
                if limit is not None and failed >= limit:
                    return
                # Sleep until the backoff expires or local work arrives.
                wait_ev = deque.wait()
                if wait_ev.triggered:
                    yield from self._execute_job(node, wait_ev.value)
                    continue
                timer = Timeout(self.env, backoff)
                yield first_of(self.env, wait_ev, timer)
                if wait_ev.triggered:
                    backoff = policy.initial_backoff(self.config)
                    yield from self._execute_job(node, wait_ev.value)
                else:
                    deque.cancel_wait(wait_ev)
                    backoff = policy.next_backoff(backoff, self.config)
        except Interrupt:
            return  # node crashed

    # ------------------------------------------------------------------
    # protocol handlers (registered on the node's CommChannel)
    # ------------------------------------------------------------------
    def _serve_steal(self, node: ComputeNode, msg: StealRequest) -> Generator:
        """Reference (slow-path) steal service, kept for A/B regression."""
        yield from node.cpu_delay(self.config.steal_handle_overhead_s,
                                  label="steal-serve")
        job = self.deques[node.rank].steal()
        nbytes = self.config.control_message_bytes
        if job is not None:
            job.thief_rank = msg.thief
            self.ft.record_stolen(job)
            nbytes += self.app.task_bytes(job.task)
        if self.obs.enabled:
            self.obs.emit("steal", node=node.rank,
                          lane=f"node{node.rank}/steal",
                          start=self.env.now, end=self.env.now,
                          label="serve", thief=msg.thief,
                          hit=job is not None)
        yield from self.comm.channel(node.rank).send(
            msg.thief, StealReply(req_id=msg.req_id, job=job), nbytes=nbytes)

    def _serve_steal_fast(self, node: ComputeNode, msg: StealRequest) -> None:
        """Zero-process steal service: same events as :meth:`_serve_steal`
        (via :meth:`ComputeNode.cpu_delay_async`), minus only the spawned
        process's waiter-free put/completion pops."""
        node.cpu_delay_async(
            self.config.steal_handle_overhead_s, "steal-serve",
            lambda: self._finish_serve_steal(node, msg),
            completes=False)

    def _finish_serve_steal(self, node: ComputeNode,
                            msg: StealRequest) -> None:
        # Body mirrors _serve_steal after its cpu_delay, with the blocking
        # reply send replaced by an inline-NIC-claim fire-and-forget.
        job = self.deques[node.rank].steal()
        nbytes = self.config.control_message_bytes
        if job is not None:
            job.thief_rank = msg.thief
            self.ft.record_stolen(job)
            nbytes += self.app.task_bytes(job.task)
        if self.obs.enabled:
            self.obs.emit("steal", node=node.rank,
                          lane=f"node{node.rank}/steal",
                          start=self.env.now, end=self.env.now,
                          label="serve", thief=msg.thief,
                          hit=job is not None)
        self.comm.channel(node.rank).send_nowait(
            msg.thief, StealReply(req_id=msg.req_id, job=job), nbytes=nbytes)

    def _on_steal_reply(self, node: ComputeNode, msg: StealReply) -> None:
        if self.comm.resolve(msg.req_id, msg.job):
            return
        if msg.job is None:
            return
        # Late reply carrying a job: the request timed out (or was failed
        # by the membership service) but the victim *did* hand the job
        # over.  Salvage it into the thief's deque so it is not lost.
        if self.obs.enabled:
            self.obs.emit("steal_salvage", node=node.rank,
                          req_id=msg.req_id, job_id=msg.job.id)
        self.deques[node.rank].push(msg.job)

    def _absorb_result(self, node: ComputeNode, msg: ResultReturn) -> Generator:
        """Reference (slow-path) result absorption, kept for A/B regression."""
        yield from node.cpu_delay(self.config.result_handle_overhead_s,
                                  label="result-recv")
        self._finish_absorb(node, msg)

    def _absorb_result_fast(self, node: ComputeNode,
                            msg: ResultReturn) -> None:
        """Zero-process result absorption (same events, no generator)."""
        node.cpu_delay_async(
            self.config.result_handle_overhead_s, "result-recv",
            lambda: self._finish_absorb(node, msg))

    def _finish_absorb(self, node: ComputeNode, msg: ResultReturn) -> None:
        job = self.ft.take_stolen(msg.job_id)
        if job is not None and not job.done.triggered:
            self.stats.count_result_returned()
            if self.obs.enabled:
                self.obs.emit("result_recv", node=node.rank,
                              job_id=msg.job_id)
            job.done.succeed(msg.result)

    def _on_shared_update(self, node: ComputeNode,
                          msg: SharedObjectUpdate) -> None:
        obj = self._shared_objects.get(msg.name)
        if obj is not None:
            obj.apply_update(node.rank, msg)

    def _on_user_message(self, node: ComputeNode, msg: UserMessage) -> None:
        handler = getattr(self.app, "on_message", None)
        if handler is not None:
            handler(node, msg.payload)

    # ------------------------------------------------------------------
    # stealing
    # ------------------------------------------------------------------
    def _make_steal_hooks(self, rank: int) -> Any:
        """Per-rank request hooks reused across steal rounds: the
        StealRequest builder and the obs-off attempt counter."""
        count_stat = self.stats.count_steal_attempt

        def build(req_id: int) -> StealRequest:
            return StealRequest(req_id=req_id, thief=rank)

        def count_attempt(req_id: int, attempt: int) -> None:
            count_stat(rank)

        return build, count_attempt

    def _try_steal(self, node: ComputeNode) -> Generator:
        """One steal *round*: poll victims in policy order until a job is
        found or every victim declined (Satin's random work-stealing retries
        immediately on failure — only a fully failed round backs off).

        The candidate list and the request hooks are cached per rank (the
        candidates keyed on the cluster's membership version): an idle
        worker runs tens of thousands of rounds per simulated second, so
        per-round list/closure allocations cost real wall-clock.  The
        victim *order* is still drawn from the policy every round — it
        consumes the seeded rng, so caching it would change the schedule.
        """
        rank = node.rank
        cluster = self.cluster
        if cluster.alive_version != self._victim_cache_version:
            self._victim_cache.clear()
            self._victim_cache_version = cluster.alive_version
        candidates = self._victim_cache.get(rank)
        if candidates is None:
            candidates = self._victim_cache[rank] = [
                n.rank for n in cluster.alive_nodes() if n.rank != rank]
        if not candidates:
            return None
        order = self.steal_policy.victim_order(rank, candidates, self.rng)
        if not self.config.steal_sweep:
            order = order[:1]
        channel = self.comm.channel(rank)
        hooks = self._steal_hooks.get(rank)
        if hooks is None:
            hooks = self._steal_hooks[rank] = self._make_steal_hooks(rank)
        build, count_attempt = hooks
        obs_enabled = self.obs.enabled
        for victim in order:
            if self._shutdown:
                return None
            on_attempt: Callable[[int, int], None] = count_attempt
            if obs_enabled:
                attempt_ids: List[int] = []

                def _obs_attempt(req_id: int, attempt: int,
                                 victim: int = victim,
                                 attempt_ids: List[int] = attempt_ids) -> None:
                    attempt_ids.append(req_id)
                    self.stats.count_steal_attempt(rank)
                    self.obs.emit("steal_attempt", node=rank,
                                  victim=victim, req_id=req_id)

                on_attempt = _obs_attempt

            job = yield from channel.request(
                victim, build,
                nbytes=self.config.control_message_bytes,
                on_attempt=on_attempt)
            hit = job is not None
            self.steal_policy.observe(rank, victim, hit)
            if hit:
                self.stats.count_steal_success(rank)
                if self.obs.enabled:
                    self.obs.emit("steal_success", node=rank,
                                  victim=victim, req_id=attempt_ids[-1],
                                  job_id=job.id)
                return job
            # Check for local work that arrived while the request was out.
            local = self.deques[rank].pop()
            if local is not None:
                return local
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute_job(self, node: ComputeNode, job: Job) -> Generator:
        self.stats.count_job(node.rank)
        result = yield from self._run_task(node, job.task, job.depth,
                                           job.manycore, task_id=job.id)
        if job.origin_rank == node.rank:
            if not job.done.triggered:
                job.done.succeed(result)
        else:
            # Fire-and-forget transfer back: overlaps with the next job
            # (Satin's latency hiding).
            self.comm.channel(node.rank).post(
                job.origin_rank,
                ResultReturn(job_id=job.id, result=result),
                nbytes=self.config.control_message_bytes
                + self.app.result_bytes(job.task))

    def _run_task(self, node: ComputeNode, task: Any, depth: int,
                  manycore: bool,
                  task_id: int = RaceDetector.ROOT) -> Generator:
        """``task_id`` identifies the executing task for the happens-before
        sanitizer: the id of the job being executed, or ``ROOT`` for the
        master program.  It is bookkeeping only — with ``detect_races`` off
        it is threaded through untouched."""
        app = self.app
        if app.is_leaf(task):
            result = yield from self._execute_leaf(node, task, task_id)
            self.stats.count_leaf(node.rank, app.leaf_flops(task))
            return result
        if not manycore and self._manycore_enabled(node) and app.is_manycore(task):
            manycore = True  # Cashmere.enableManyCore()
        children = list(app.divide(task))
        if not children:
            raise ValueError(f"{app.name}: divide() returned no children")
        if manycore:
            results = yield from self._run_manycore_children(
                node, children, depth, task_id)
        else:
            jobs: List[Job] = []
            rank = node.rank
            obs = self.obs
            deque = self.deques[rank]
            count_spawn = self.stats.count_spawn
            detector = self.race_detector
            for child in children:
                yield from node.cpu_delay(self.config.spawn_overhead_s,
                                          label="spawn")
                job = Job(task=child, origin_rank=rank, depth=depth + 1,
                          manycore=False, done=self.env.event(),
                          id=next(self._job_ids))
                jobs.append(job)
                count_spawn(rank)
                if detector is not None:
                    detector.on_spawn(task_id, job.id)
                if obs.enabled:
                    obs.emit("spawn", node=rank, job_id=job.id,
                             depth=job.depth)
                deque.push(job)
            results = yield from self._sync(node, jobs, task_id)
        if self._leaf_batching:
            # Child results may be deferred-leaf tokens (locally produced or
            # returned over the network); the combine consumes values.
            results = [self._leaf_value(r) for r in results]
        return app.combine(task, results)

    def _manycore_enabled(self, node: ComputeNode) -> bool:
        """Whether this runtime honors enableManyCore (Cashmere overrides)."""
        return False

    def _run_manycore_children(self, node: ComputeNode, children: List[Any],
                               depth: int,
                               task_id: int = RaceDetector.ROOT) -> Generator:
        """Thread-per-spawn execution under enableManyCore (Sec. III-B).

        Spawns no longer produce stealable jobs; each spawnable call gets a
        node-local thread, and sync joins them.  The threads inherit the
        parent's ``task_id``: they are node-local and joined immediately
        below, so the sanitizer treats them as the parent task (a known
        granularity limit, documented in docs/analyze.md).
        """
        procs = [self.env.process(
            self._run_task(node, child, depth + 1, True, task_id=task_id))
            for child in children]
        results = []
        for proc in procs:
            results.append((yield proc))
        return results

    def _sync(self, node: ComputeNode, jobs: List[Job],
              task_id: int = RaceDetector.ROOT) -> Generator:
        """Block until all child jobs are done, working meanwhile.

        A waiting computation first drains its local deque; when that is
        empty it keeps a steal helper running (Satin steals *during* sync —
        a node whose children were all stolen must not sit idle while other
        nodes hold queued work) and sleeps until a child completes or new
        local work appears.

        The sync point is one waiter on a :class:`DependencyTracker` whose
        dependencies are the child job ids — the same ready-set machinery
        that drives the static-DAG executor (``repro.graph``); here the
        DAG unfolds dynamically and completion is observed by polling the
        children's ``done`` events.
        """
        by_id: Dict[int, Job] = {j.id: j for j in jobs}
        tracker = DependencyTracker()
        tracker.add("sync", by_id)
        deque = self.deques[node.rank]
        while True:
            for jid in [d for d in tracker.remaining("sync")
                        if by_id[d].done.triggered]:
                tracker.complete(jid)
            if tracker.is_ready("sync"):
                break
            local = deque.pop()
            if local is not None:
                # Run the job as its own simulation process: inline
                # delegation would nest Python generator frames linearly in
                # the number of chained jobs and overflow the stack on
                # fine-grained runs.
                yield self.env.process(self._execute_job(node, local))
                continue
            # Nothing local: wait for a stolen child's result or new work,
            # keeping one background steal round in flight for this node.
            self._spawn_sync_steal_helper(node)
            wait_ev = deque.wait()
            if wait_ev.triggered:
                yield self.env.process(self._execute_job(node, wait_ev.value))
                continue
            child_events = [by_id[d].done for d in tracker.remaining("sync")]
            yield self.env.any_of(child_events + [wait_ev])
            if wait_ev.triggered:
                yield self.env.process(self._execute_job(node, wait_ev.value))
            else:
                deque.cancel_wait(wait_ev)
        if self.race_detector is not None:
            # The result-return edge: the parent's continuation
            # happens-after every child, wherever it was stolen to.
            self.race_detector.on_sync(task_id, [j.id for j in jobs])
        return [j.done.value for j in jobs]

    def _spawn_sync_steal_helper(self, node: ComputeNode) -> None:
        """Ensure one background steal helper runs for this node."""
        if self._sync_stealing.get(node.rank) or self._shutdown:
            return
        if len(self.cluster.alive_nodes()) <= 1:
            return
        self._sync_stealing[node.rank] = True
        self.env.process(self._sync_steal_helper(node))

    def _sync_steal_helper(self, node: ComputeNode) -> Generator:
        """Steal rounds on behalf of sync-blocked computations.

        A stolen job is pushed into the node's deque, where the waiting
        sync (or an idle worker) picks it up.  Failed rounds back off so
        idle periods stay cheap in simulation events.
        """
        policy = self.steal_policy
        backoff = policy.initial_backoff(self.config)
        try:
            while not self._shutdown and not node.crashed:
                job = yield from self._try_steal(node)
                if job is not None:
                    self.deques[node.rank].push(job)
                    return
                if len(self.deques[node.rank]) > 0:
                    return  # local work appeared; no need to keep stealing
                yield self.env.timeout(backoff)
                backoff = policy.next_backoff(backoff, self.config)
        except Interrupt:
            return
        finally:
            self._sync_stealing[node.rank] = False

    def _execute_leaf(self, node: ComputeNode, task: Any,
                      task_id: int = RaceDetector.ROOT) -> Generator:
        """Leaf execution; plain Satin runs it on one CPU core."""
        app = self.app
        if self._leaf_batching:
            # Same timing as the default DivideConquerApp.leaf (the guard in
            # __init__ checked the app did not override it); only the value
            # is deferred into the batch.
            yield from node.cpu_compute(
                app.leaf_flops(task) * app.cpu_irregularity_penalty,
                label=f"{app.name}-leaf")
            return self._leaf_token(task)
        ctx = LeafContext(self, node, task_id)
        result = yield from app.leaf(task, ctx)
        return result

    def _leaf_token(self, task: Any) -> Any:
        """The leaf's value — deferred into the batch when batching is on."""
        if self._leaf_batching:
            token = _PendingLeaf(task)
            self._pending_leaves.append(token)
            return token
        return self.app.leaf_result(task)

    def _leaf_value(self, value: Any) -> Any:
        """Resolve a value that may be a :class:`_PendingLeaf` token."""
        if type(value) is _PendingLeaf:
            if not value.resolved:
                self._flush_leaf_batch()
            return value.value
        return value

    def _flush_leaf_batch(self) -> None:
        """Run one vectorized ``app.leaf_batch`` over every pending leaf."""
        pending = self._pending_leaves
        if not pending:
            return
        self._pending_leaves = []
        values = self.app.leaf_batch([p.task for p in pending])
        if len(values) != len(pending):
            raise RuntimeError(
                f"{self.app.name}.leaf_batch returned {len(values)} values "
                f"for {len(pending)} tasks")
        for p, v in zip(pending, values):
            p.value = v
            p.resolved = True
