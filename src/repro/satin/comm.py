"""Typed message protocol of the Satin runtime.

The runtime's node-to-node protocol (Sec. II-A: steal requests/replies,
stolen-result returns, shared-object updates, the master's runtime-info
broadcast) used to be ad-hoc ``(tag, dict)`` payloads decoded inline in the
runtime's message loop.  This module makes the protocol a first-class layer
over :class:`repro.sim.network.Endpoint`:

* **typed messages** — one frozen-shape dataclass per protocol message
  (:class:`StealRequest`, :class:`StealReply`, :class:`ResultReturn`,
  :class:`SharedObjectUpdate`, :class:`UserMessage`, :class:`RuntimeInfo`);
  the wire tag is a class attribute, so the tag/shape pairing lives in
  exactly one place,
* **dispatch** — each node runs one :class:`CommChannel` whose dispatch
  loop decodes incoming messages and routes them to handlers registered by
  message *type* (unknown tags are dropped, matching the historical loop),
* **request/reply** — :meth:`CommChannel.request` pairs a request with its
  reply via a runtime-global ``req_id``, with optional *reply-timeout +
  bounded-retry* semantics: a dead or partitioned victim makes the request
  return ``None`` after the configured attempts instead of hanging the
  thief, so call sites need no per-victim special-casing,
* **failure notification** — :meth:`CommLayer.fail_pending_to` resolves
  every in-flight request aimed at a crashed rank with ``None`` (the Ibis
  membership-service path the paper's fault tolerance relies on); the
  timeout path covers failures the membership service never reports.

The layer deliberately knows nothing about jobs, deques or scheduling —
that is :mod:`repro.satin.runtime` (orchestration), :mod:`repro.satin.steal`
(victim selection) and :mod:`repro.satin.ft` (recovery).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Generator,
    Iterable,
    Optional,
    Set,
    Tuple,
    Type,
)

from ..sim.engine import Environment, Event, Interrupt, Timeout, first_of
from ..sim.network import Endpoint
from .job import Job

__all__ = [
    "SatinMessage",
    "StealRequest",
    "StealReply",
    "ResultReturn",
    "SharedObjectUpdate",
    "UserMessage",
    "RuntimeInfo",
    "CommChannel",
    "CommLayer",
]


@dataclass(slots=True)
class SatinMessage:
    """Base class of all typed protocol messages.

    ``WIRE_TAG`` is the tag charged on the simulated network; subclasses
    keep the historical tag strings so traces stay comparable across
    versions of the runtime.
    """

    WIRE_TAG: ClassVar[str] = ""


@dataclass(slots=True)
class StealRequest(SatinMessage):
    """A thief asks a victim for work."""

    WIRE_TAG: ClassVar[str] = "steal_request"
    req_id: int
    thief: int


@dataclass(slots=True)
class StealReply(SatinMessage):
    """The victim's answer: a job, or ``None`` for an empty deque."""

    WIRE_TAG: ClassVar[str] = "steal_reply"
    req_id: int
    job: Optional[Job]


@dataclass(slots=True)
class ResultReturn(SatinMessage):
    """A stolen job's result travelling back to its origin node."""

    WIRE_TAG: ClassVar[str] = "result"
    job_id: int
    result: Any


@dataclass(slots=True)
class SharedObjectUpdate(SatinMessage):
    """An asynchronous shared-object write broadcast to all replicas."""

    WIRE_TAG: ClassVar[str] = "shared_update"
    name: str
    method: Callable[[Any, Any], Any]
    payload: Any
    #: originating task (job id or root) — carried for the happens-before
    #: race sanitizer; ``None`` whenever ``detect_races`` is off
    task: Optional[int] = None


@dataclass(slots=True)
class UserMessage(SatinMessage):
    """Application-level message (delivered to ``app.on_message``)."""

    WIRE_TAG: ClassVar[str] = "user"
    payload: Any


@dataclass(slots=True)
class RuntimeInfo(SatinMessage):
    """The master's runtime-information broadcast at initialization
    (Sec. III-B: "rank 0 becomes the master and broadcasts run-time
    information")."""

    WIRE_TAG: ClassVar[str] = "runtime-info"
    payload: Any = None


#: sentinel distinguishing "reply timed out" from a ``None`` reply value
_TIMED_OUT = object()


@dataclass(slots=True)
class _PendingRequest:
    """Bookkeeping for one in-flight request awaiting its reply."""

    event: Event
    dst: int
    #: set when the reply (or a failure notification) resolved the event
    resolved: bool = field(default=False)


class CommLayer:
    """Runtime-wide protocol state: channels, request ids, pending table.

    One instance per runtime.  The request-id counter is global across all
    channels so ids in the observability stream stay unique and
    deterministic; the pending table is global so a crash can fail every
    request aimed at the dead rank in one place.
    """

    def __init__(self, env: Environment,
                 reply_timeout_s: Optional[float] = None,
                 reply_retries: int = 1):
        self.env = env
        #: default reply-timeout (seconds) for :meth:`CommChannel.request`;
        #: ``None`` waits for the reply or a failure notification
        self.reply_timeout_s = reply_timeout_s
        #: extra attempts after the first timeout (bounded retry)
        self.reply_retries = reply_retries
        self.channels: Dict[int, "CommChannel"] = {}
        self._req_ids = itertools.count()
        self._pending: Dict[int, _PendingRequest] = {}
        #: ranks the membership service reported dead (via
        #: :meth:`fail_pending_to`); requests to these fail immediately
        self.dead_ranks: Set[int] = set()

    # -- channels ------------------------------------------------------------
    def attach(self, endpoint: Endpoint) -> "CommChannel":
        """Create the channel wrapping one node's endpoint."""
        if endpoint.rank in self.channels:
            raise ValueError(f"rank {endpoint.rank} already has a channel")
        channel = CommChannel(self, endpoint)
        self.channels[endpoint.rank] = channel
        return channel

    def channel(self, rank: int) -> "CommChannel":
        return self.channels[rank]

    # -- request bookkeeping -------------------------------------------------
    def open_request(self, dst: int) -> Tuple[int, _PendingRequest]:
        req_id = next(self._req_ids)
        pending = _PendingRequest(event=self.env.event(), dst=dst)
        self._pending[req_id] = pending
        return req_id, pending

    def close_request(self, req_id: int) -> None:
        self._pending.pop(req_id, None)

    def resolve(self, req_id: int, value: Any) -> bool:
        """Deliver a reply to a waiting request.

        Returns ``False`` when nobody is waiting anymore (late reply after
        a timeout/retry) so the caller can salvage the payload.
        """
        pending = self._pending.get(req_id)
        if pending is None or pending.event.triggered:
            return False
        pending.resolved = True
        pending.event.succeed(value)
        return True

    def fail_pending_to(self, dead_rank: int) -> int:
        """Resolve every in-flight request to ``dead_rank`` with ``None``.

        Called by the fault-tolerance layer when the membership service
        reports a crash; returns the number of requests failed.  Idempotent:
        a second call for the same rank finds nothing pending and returns 0.
        The rank is remembered in :attr:`dead_ranks`, so a request *opened
        after* the notification (a thief racing the membership broadcast)
        fails immediately instead of hanging until its reply timeout — or
        forever, when no timeout is configured.
        """
        self.dead_ranks.add(dead_rank)
        failed = 0
        for req_id, pending in list(self._pending.items()):
            if pending.dst == dead_rank and not pending.event.triggered:
                pending.resolved = True
                pending.event.succeed(None)
                failed += 1
        return failed

    def pending_to(self, rank: int) -> int:
        """Number of unresolved requests aimed at ``rank`` (introspection)."""
        return sum(1 for p in self._pending.values()
                   if p.dst == rank and not p.event.triggered)


class CommChannel:
    """One node's attachment to the typed protocol: send, request, dispatch."""

    def __init__(self, layer: CommLayer, endpoint: Endpoint):
        self.layer = layer
        self.env = layer.env
        self.endpoint = endpoint
        self.rank = endpoint.rank
        #: message type -> handler(msg); handlers run inside the dispatch
        #: loop and must not block (spawn a process for slow work)
        self._handlers: Dict[Type[SatinMessage], Callable[[SatinMessage], None]] = {}
        #: armed mailbox getter of the callback pump (fast dispatch)
        self._pending_get: Any = None

    # -- handler registration ------------------------------------------------
    def on(self, msg_type: Type[SatinMessage],
           handler: Callable[[Any], None]) -> None:
        """Route incoming messages of ``msg_type`` to ``handler``."""
        if not msg_type.WIRE_TAG:
            raise ValueError(f"{msg_type.__name__} has no wire tag")
        self._handlers[msg_type] = handler

    # -- sending -------------------------------------------------------------
    def send(self, dst: int, msg: SatinMessage,
             nbytes: float = 0.0) -> Generator:
        """Process: transmit one typed message (blocks this node's NIC).

        Calls the network's transmit process directly rather than through
        :meth:`Endpoint.send` — the extra delegating generator frame costs
        real wall-clock at millions of protocol messages per run.
        """
        endpoint = self.endpoint
        yield from endpoint.network.transmit(endpoint, dst, msg.WIRE_TAG,
                                             msg, nbytes)

    def post(self, dst: int, msg: SatinMessage, nbytes: float = 0.0) -> None:
        """Fire-and-forget send: like ``env.process(channel.send(...))``
        but with no Process on the fast path (see :meth:`Network.post`).
        Event order is identical either way."""
        endpoint = self.endpoint
        endpoint.network.post(endpoint, dst, msg.WIRE_TAG, msg, nbytes)

    def send_nowait(self, dst: int, msg: SatinMessage,
                    nbytes: float = 0.0) -> None:
        """Start a transfer that claims the NIC *at this exact moment* —
        as a blocking :meth:`send` from a running process would — but
        resumes nobody on delivery.  Replaces a blocking send whose caller
        has nothing left to do; only valid on the network fast path
        (callers check ``network.fast_transmit``)."""
        endpoint = self.endpoint
        endpoint.network._begin(endpoint, dst, msg.WIRE_TAG, msg, nbytes,
                                None)

    def broadcast(self, msg: SatinMessage, nbytes: float,
                  ranks: Optional[Iterable[int]] = None) -> Generator:
        """Process: send a typed message to every (other) endpoint."""
        yield from self.endpoint.network.broadcast(
            self.endpoint, msg.WIRE_TAG, payload=msg, nbytes=nbytes,
            ranks=ranks)

    def request(self, dst: int,
                build: Callable[[int], SatinMessage],
                nbytes: float,
                timeout: Optional[float] = None,
                retries: Optional[int] = None,
                on_attempt: Optional[Callable[[int, int], None]] = None
                ) -> Generator:
        """Process: send a request and wait for its reply.

        ``build(req_id)`` constructs the message for each attempt (each
        attempt gets a fresh id, so a late reply to a timed-out attempt is
        recognizably stale).  ``timeout`` / ``retries`` default to the
        layer's configuration; with ``timeout=None`` the request waits
        until the reply arrives or :meth:`CommLayer.fail_pending_to` fails
        it.  ``on_attempt(req_id, attempt)`` runs before each send (the
        runtime hooks statistics and ``steal_attempt`` events here).

        Returns the reply value, or ``None`` after all attempts timed out.
        """
        layer = self.layer
        if timeout is None:
            timeout = layer.reply_timeout_s
        if retries is None:
            retries = layer.reply_retries
        attempts = 1 + (retries if timeout is not None else 0)
        for attempt in range(attempts):
            if dst in layer.dead_ranks:
                # Membership already declared the destination dead: fail
                # fast, exactly as fail_pending_to would have.
                return None
            req_id, pending = layer.open_request(dst)
            if on_attempt is not None:
                on_attempt(req_id, attempt)
            yield from self.send(dst, build(req_id), nbytes=nbytes)
            if timeout is None:
                reply = yield pending.event
                layer.close_request(req_id)
                return reply
            timer = Timeout(self.env, timeout, value=_TIMED_OUT)
            yield first_of(self.env, pending.event, timer)
            layer.close_request(req_id)
            if pending.event.triggered:
                return pending.event.value
        return None

    # -- receiving -----------------------------------------------------------
    def start_pump(self) -> None:
        """Begin consuming the mailbox via callbacks (fast dispatch).

        Event-identical to ``env.process(channel.dispatch())``: a
        front-priority starter stands in for the Process's ``Initialize``
        (so the first mailbox getter is armed at the same pop), then one
        getter per message, re-armed right after each handler runs — only
        the per-message generator resumption is gone.  Crash parity is
        :meth:`stop_pump` (the runtime calls it where it would have
        interrupted the dispatch process).
        """
        env = self.env
        starter = Event(env)
        starter._ok = True
        starter._value = None
        starter.callbacks.append(lambda _e: self._arm())
        env._schedule(starter, 0, front=True)

    def _arm(self) -> None:
        get = self.endpoint.mailbox.get()
        get.callbacks.append(self._pump)
        self._pending_get = get

    def _pump(self, event: Event) -> None:
        wire = event._value
        msg = wire.payload
        if isinstance(msg, SatinMessage):
            handler = self._handlers.get(type(msg))
            if handler is not None:
                handler(msg)
        self._arm()

    def stop_pump(self) -> None:
        """Stop the pump, mirroring an interrupt of the dispatch process:
        the armed getter stays registered (so, like the unhooked
        generator's pending ``recv``, it silently swallows at most one
        more delivered message) but resumes nothing and never re-arms.
        No-op when the pump never started (slow path)."""
        get = self._pending_get
        if get is not None and get.callbacks is not None:
            try:
                get.callbacks.remove(self._pump)
            except ValueError:  # pragma: no cover - already delivered
                pass
        self._pending_get = None

    def dispatch(self) -> Generator:
        """Process: the node's message loop.

        Decodes each delivered :class:`~repro.sim.network.Message` into its
        typed payload and routes it to the registered handler.  Messages
        whose type has no handler are dropped (e.g. the runtime-info
        broadcast on runtimes that ignore it).  An :class:`Interrupt`
        (node crash) ends the loop.
        """
        try:
            while True:
                wire = yield self.endpoint.recv()
                msg = wire.payload
                if not isinstance(msg, SatinMessage):
                    continue  # below-protocol traffic (app broadcasts etc.)
                handler = self._handlers.get(type(msg))
                if handler is not None:
                    handler(msg)
        except Interrupt:
            return
