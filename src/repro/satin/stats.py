"""Run statistics: the counters and derived figures of one Satin run.

Since the unified observability layer (:mod:`repro.obs`) these are *views*
over a :class:`~repro.obs.metrics.MetricsRegistry`; this module only holds
the projection code, extracted from the runtime monolith so the
orchestration layer and the bookkeeping layer can evolve independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..obs.metrics import MetricsRegistry

__all__ = ["RunStats", "RunResult"]


class RunStats:
    """Counters collected during one run.

    Since the unified observability layer (:mod:`repro.obs`) this is a
    *view* over a :class:`~repro.obs.metrics.MetricsRegistry` — the
    registry is the only bookkeeping path, and the historical field names
    (``steal_attempts``, ``jobs_executed``, ...) are read-only projections
    of its counters.  Access the registry directly for per-node/per-device
    breakdowns, histograms and derived gauges.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.makespan_s: float = 0.0
        r = self.registry
        self._jobs = r.counter(
            "satin_jobs_executed_total", "jobs executed, by node")
        self._leaves = r.counter(
            "satin_leaves_executed_total", "leaf tasks executed, by node")
        self._leaf_flops = r.counter(
            "satin_leaf_flops_total", "application flops performed by leaves")
        self._steal_attempts = r.counter(
            "satin_steal_attempts_total", "steal requests sent, by thief node")
        self._steal_successes = r.counter(
            "satin_steal_successes_total", "successful steals, by thief node")
        self._results = r.counter(
            "satin_results_returned_total", "stolen-job results returned")
        self._orphans = r.counter(
            "satin_orphans_requeued_total", "orphan jobs re-queued, by origin")
        self._fallbacks = r.counter(
            "cashmere_cpu_fallbacks_total", "leaves that fell back to the CPU")
        self._ooc = r.counter(
            "cashmere_out_of_core_launches_total", "out-of-core leaf launches")
        self._spawns = r.counter(
            "satin_jobs_spawned_total", "jobs spawned into work deques, by node")
        self._queue_depth = r.histogram(
            "satin_queue_depth", "work-deque depth observed at each push")
        # hot-path bound children: label keys resolved once per (metric,
        # rank), per-call cost is one dict get + one dict-slot update
        # (keeps the disabled-observability overhead within the <5%
        # budget of docs/observability.md)
        self._jobs_c: Dict[int, Any] = {}
        self._leaves_c: Dict[int, Any] = {}
        self._spawns_c: Dict[int, Any] = {}
        self._attempts_c: Dict[int, Any] = {}
        self._successes_c: Dict[int, Any] = {}
        self._orphans_c: Dict[int, Any] = {}
        self._depth_c: Dict[int, Any] = {}
        self._leaf_flops_inc = self._leaf_flops.child()
        self._results_inc = self._results.child()
        self._fallbacks_inc = self._fallbacks.child()
        self._ooc_inc = self._ooc.child()

    # -- mutation (used by the runtimes; one bookkeeping path) -------------
    def count_job(self, rank: int) -> None:
        fn = self._jobs_c.get(rank)
        if fn is None:
            fn = self._jobs_c[rank] = self._jobs.child(node=rank)
        fn()

    def count_leaf(self, rank: int, flops: float) -> None:
        fn = self._leaves_c.get(rank)
        if fn is None:
            fn = self._leaves_c[rank] = self._leaves.child(node=rank)
        fn()
        self._leaf_flops_inc(flops)

    def count_spawn(self, rank: int) -> None:
        fn = self._spawns_c.get(rank)
        if fn is None:
            fn = self._spawns_c[rank] = self._spawns.child(node=rank)
        fn()

    def count_steal_attempt(self, rank: int) -> None:
        fn = self._attempts_c.get(rank)
        if fn is None:
            fn = self._attempts_c[rank] = self._steal_attempts.child(node=rank)
        fn()

    def count_steal_success(self, rank: int) -> None:
        fn = self._successes_c.get(rank)
        if fn is None:
            fn = self._successes_c[rank] = self._steal_successes.child(node=rank)
        fn()

    def count_result_returned(self) -> None:
        self._results_inc()

    def count_orphan_requeued(self, origin_rank: int) -> None:
        fn = self._orphans_c.get(origin_rank)
        if fn is None:
            fn = self._orphans_c[origin_rank] = self._orphans.child(
                node=origin_rank)
        fn()

    def count_cpu_fallback(self) -> None:
        self._fallbacks_inc()

    def count_out_of_core(self) -> None:
        self._ooc_inc()

    def observe_queue_depth(self, rank: int, depth: int) -> None:
        fn = self._depth_c.get(rank)
        if fn is None:
            fn = self._depth_c[rank] = self._queue_depth.child(node=rank)
        fn(depth)

    # -- legacy field views -------------------------------------------------
    @staticmethod
    def _by_node(counter) -> Dict[int, int]:
        return {rank: int(v) for rank, v in sorted(counter.by_label("node").items())}

    @property
    def jobs_executed(self) -> Dict[int, int]:
        return self._by_node(self._jobs)

    @property
    def leaves_executed(self) -> Dict[int, int]:
        return self._by_node(self._leaves)

    @property
    def steal_attempts(self) -> int:
        return int(self._steal_attempts.total)

    @property
    def steal_successes(self) -> int:
        return int(self._steal_successes.total)

    @property
    def results_returned(self) -> int:
        return int(self._results.total)

    @property
    def orphans_requeued(self) -> int:
        return int(self._orphans.total)

    @property
    def cpu_fallbacks(self) -> int:
        return int(self._fallbacks.total)

    @property
    def out_of_core_launches(self) -> int:
        return int(self._ooc.total)

    @property
    def total_leaf_flops(self) -> float:
        return self._leaf_flops.total

    @property
    def total_jobs(self) -> int:
        return int(self._jobs.total)

    @property
    def total_leaves(self) -> int:
        return int(self._leaves.total)

    def gflops(self) -> float:
        """Application-level achieved GFLOPS (the figures' y-axis)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_leaf_flops / self.makespan_s / 1e9


@dataclass
class RunResult:
    result: Any
    stats: RunStats
