"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list                     # show experiment ids
    python -m repro run fig15                # run one experiment
    python -m repro run all -o results/      # run everything, save artifacts
    python -m repro lint --all               # static-verify builtin kernels
"""

from __future__ import annotations

import argparse
import inspect
import pathlib
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from .experiments import experiment_runner, list_experiments, run_experiment
from .experiments.figures import svgs_for


def _accepted_kwargs(fn: Callable[..., Any],
                     kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of ``kwargs`` the runner's signature accepts.

    Experiments declare what they can be parameterized with (``seed``,
    ``steal_policy``, ...); runners with ``**kwargs`` forward everything to
    the scalability harness and accept the full set.
    """
    params = inspect.signature(fn).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in params}


def _save(result, out_dir: pathlib.Path) -> List[str]:
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    text = result.render()
    for key in ("fig16", "fig17"):
        if key in result.extra:
            text += f"\n\n--- {key} ---\n{result.extra[key]}"
    path = out_dir / f"{result.experiment_id}.txt"
    path.write_text(text + "\n")
    written.append(str(path))
    for name, svg in svgs_for(result).items():
        svg_path = out_dir / f"{name}.svg"
        svg_path.write_text(svg)
        written.append(str(svg_path))
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the evaluation of 'Cashmere: Heterogeneous "
                    "Many-Core Computing' (IPDPS 2015).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment",
                       help="experiment id from 'list', or 'all'")
    run_p.add_argument("-o", "--out", type=pathlib.Path, default=None,
                       help="directory to write the text/SVG artifacts to")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override the run seed (where applicable)")
    run_p.add_argument("--steal-policy", default=None,
                       metavar="POLICY",
                       help="cluster-level steal victim-selection policy "
                            "(registry kind 'steal': random, cluster-aware, "
                            "adaptive; where applicable)")
    run_p.add_argument("--scheduler-policy", default=None,
                       metavar="POLICY",
                       help="intra-node device placement policy (registry "
                            "kind 'device': makespan, static, round-robin; "
                            "where applicable)")

    trace_p = sub.add_parser(
        "trace", help="run an app with the event bus on and export a "
                      "Chrome-trace JSON (open in chrome://tracing)")
    trace_p.add_argument("app", help="application to trace",
                         choices=("kmeans", "matmul", "raytracer", "nbody"))
    trace_p.add_argument("--out", type=pathlib.Path,
                         default=pathlib.Path("trace.json"),
                         help="Chrome-trace output path (default: trace.json)")
    trace_p.add_argument("--events", type=pathlib.Path, default=None,
                         help="also write the raw event stream (JSON lines)")
    trace_p.add_argument("--seed", type=int, default=42,
                         help="run seed (default: 42)")
    trace_p.add_argument("--no-summary", action="store_true",
                         help="skip the metrics summary table")

    lint_p = sub.add_parser(
        "lint", help="statically verify MCPL kernel sources (races, "
                     "bounds, initialization, memory budgets)")
    lint_p.add_argument("targets", nargs="*",
                        help="app names (kmeans, matmul, nbody, raytracer) "
                             "or .mcpl file paths")
    lint_p.add_argument("--all", action="store_true", dest="all_apps",
                        help="lint every builtin application")
    lint_p.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON output")
    lint_p.add_argument("--errors-only", action="store_true",
                        help="hide warning-severity findings")

    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "lint":
        from .mcl.verify.cli import lint_main
        return lint_main(args.targets, all_apps=args.all_apps,
                         as_json=args.as_json,
                         errors_only=args.errors_only)

    if args.command == "trace":
        from .obs.cli import trace_main
        return trace_main(args.app, out=args.out, seed=args.seed,
                          events_out=args.events,
                          summary=not args.no_summary)

    # Resolve policy names through the unified registry up front so a typo
    # fails fast with the known names, before any experiment runs.
    from .core.policy import policy_class
    requested: Dict[str, Any] = {}
    if args.seed is not None:
        requested["seed"] = args.seed
    try:
        if args.steal_policy is not None:
            import repro.satin  # noqa: F401  (registers the steal policies)
            policy_class("steal", args.steal_policy)
            requested["steal_policy"] = args.steal_policy
        if args.scheduler_policy is not None:
            import repro.core.scheduler  # noqa: F401  (registers device
            #                                            placement policies)
            policy_class("device", args.scheduler_policy)
            requested["scheduler_policy"] = args.scheduler_policy
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    targets = list_experiments() if args.experiment == "all" \
        else [args.experiment]
    for experiment_id in targets:
        try:
            runner = experiment_runner(experiment_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        kwargs = _accepted_kwargs(runner, requested)
        start = time.perf_counter()
        result = run_experiment(experiment_id, **kwargs)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"({elapsed:.1f}s wall-clock)\n")
        if args.out is not None:
            for path in _save(result, args.out):
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
