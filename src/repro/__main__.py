"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list                     # show experiment ids
    python -m repro run fig15                # run one experiment
    python -m repro run all -o results/      # run everything, save artifacts
    python -m repro sweep fig7_8 --jobs 8    # parallel, cached, resumable
    python -m repro lint --all               # static-verify builtin kernels
    python -m repro serve --demo             # multi-tenant job service demo
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

from .experiments import experiment_runner, list_experiments, run_experiment
from .experiments.artifacts import accepted_kwargs as _accepted_kwargs
from .experiments.artifacts import save_artifacts as _save


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the evaluation of 'Cashmere: Heterogeneous "
                    "Many-Core Computing' (IPDPS 2015).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment",
                       help="experiment id from 'list', or 'all'")
    run_p.add_argument("-o", "--out", type=pathlib.Path, default=None,
                       help="directory to write the text/SVG artifacts to")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override the run seed (where applicable)")
    run_p.add_argument("--steal-policy", default=None,
                       metavar="POLICY",
                       help="cluster-level steal victim-selection policy "
                            "(registry kind 'steal': random, cluster-aware, "
                            "adaptive; where applicable)")
    run_p.add_argument("--scheduler-policy", default=None,
                       metavar="POLICY",
                       help="device placement policy (registry kind "
                            "'device': makespan, makespan-lookahead, "
                            "static, round-robin; where applicable)")

    sweep_p = sub.add_parser(
        "sweep", help="run experiments through the parallel, cached, "
                      "resumable sweep engine (see docs/sweep.md)")
    sweep_p.add_argument("experiments", nargs="+",
                         metavar="EXPERIMENT",
                         help="experiment ids from 'list', or 'all'")
    sweep_p.add_argument("-j", "--jobs", type=int,
                         default=max(1, os.cpu_count() or 1),
                         help="worker processes (default: all cores)")
    sweep_p.add_argument("--cache-dir", type=pathlib.Path, default=None,
                         help="result-cache directory (default: "
                              "$REPRO_SWEEP_CACHE or ~/.cache/repro-sweep)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="run fully stateless (no reads, no writes)")
    sweep_p.add_argument("--force", action="store_true",
                         help="ignore cached results, re-run every cell "
                              "(fresh results are still written back)")
    sweep_p.add_argument("--resume", action="store_true",
                         help="resume a previous partial sweep from the "
                              "cache (explicit spelling of the default)")
    sweep_p.add_argument("--retries", type=int, default=1,
                         help="extra attempts per failed cell (default: 1)")
    sweep_p.add_argument("--bench-out", type=pathlib.Path, default=None,
                         help="path for BENCH_sweep.json (default: "
                              "<out-dir>/BENCH_sweep.json)")
    sweep_p.add_argument("-o", "--out", type=pathlib.Path, default=None,
                         help="directory to write the text/SVG artifacts to")
    sweep_p.add_argument("--seed", type=int, default=None,
                         help="override the run seed (where applicable)")
    sweep_p.add_argument("--steal-policy", default=None, metavar="POLICY",
                         help="cluster-level steal victim-selection policy "
                              "(where applicable)")
    sweep_p.add_argument("--scheduler-policy", default=None,
                         metavar="POLICY",
                         help="intra-node device placement policy "
                              "(where applicable)")
    sweep_p.add_argument("--node-counts", default=None, metavar="N,N,...",
                         help="override scalability node counts, e.g. "
                              "'1,2,4' for a reduced-scale smoke sweep")
    sweep_p.add_argument("--scale", type=float, default=None,
                         help="problem-size multiplier for experiments "
                              "that accept one (the DAG-app ablation); "
                              "e.g. 0.25 for a reduced-scale smoke sweep")

    bench_engine_p = sub.add_parser(
        "bench-engine",
        help="simulation-engine micro-benchmark: events/s on a synthetic "
             "hot-path workload and the satin raytracer (n=8), written to "
             "BENCH_engine.json")
    bench_engine_p.add_argument("--out", type=pathlib.Path,
                                default=pathlib.Path("BENCH_engine.json"),
                                help="output path (default: "
                                     "BENCH_engine.json)")
    bench_engine_p.add_argument("--repeats", type=int, default=3,
                                help="repeats per workload; best is "
                                     "recorded (default: 3)")
    bench_engine_p.add_argument("--check-baseline", type=pathlib.Path,
                                default=None, metavar="PATH",
                                help="fail (exit 1) if a workload's "
                                     "events/s drops more than the "
                                     "tolerance below this committed "
                                     "baseline record")
    bench_engine_p.add_argument("--tolerance", type=float, default=0.25,
                                help="allowed fractional drop vs the "
                                     "baseline (default: 0.25)")
    bench_engine_p.add_argument("--json", action="store_true",
                                dest="as_json",
                                help="print the full JSON record")

    trace_p = sub.add_parser(
        "trace", help="run an app with the event bus on and export a "
                      "Chrome-trace JSON (open in chrome://tracing)")
    trace_p.add_argument("app", help="application to trace",
                         choices=("kmeans", "matmul", "raytracer", "nbody"))
    trace_p.add_argument("--out", type=pathlib.Path,
                         default=pathlib.Path("trace.json"),
                         help="Chrome-trace output path (default: trace.json)")
    trace_p.add_argument("--events", type=pathlib.Path, default=None,
                         help="also write the raw event stream (JSON lines)")
    trace_p.add_argument("--seed", type=int, default=42,
                         help="run seed (default: 42)")
    trace_p.add_argument("--no-summary", action="store_true",
                         help="skip the metrics summary table")

    lint_p = sub.add_parser(
        "lint", help="statically verify MCPL kernel sources (races, "
                     "bounds, initialization, memory budgets)")
    lint_p.add_argument("targets", nargs="*",
                        help="app names (kmeans, matmul, nbody, raytracer) "
                             "or .mcpl file paths")
    lint_p.add_argument("--all", action="store_true", dest="all_apps",
                        help="lint every builtin application")
    lint_p.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON output")
    lint_p.add_argument("--errors-only", action="store_true",
                        help="hide warning-severity findings")

    analyze_p = sub.add_parser(
        "analyze", help="determinism sanitizer: REP1xx static lints over "
                        "the runtime source, and/or a happens-before "
                        "shared-object race check (see docs/analyze.md)")
    analyze_p.add_argument("--static", action="store_true",
                           help="run the static AST pass over the "
                                "installed repro package")
    analyze_p.add_argument("--races", default=None, metavar="APP",
                           help="run APP with the race sanitizer attached "
                                "(kmeans, matmul, nbody, raytracer, "
                                "race-demo, race-demo-synced)")
    analyze_p.add_argument("--all", action="store_true", dest="all_checks",
                           help="static pass + race-sanitized run of every "
                                "builtin application")
    analyze_p.add_argument("--json", action="store_true", dest="as_json",
                           help="machine-readable JSON output")
    analyze_p.add_argument("--root", type=pathlib.Path, default=None,
                           help="directory tree for the static pass "
                                "(default: the installed repro package)")
    analyze_p.add_argument("--baseline", type=pathlib.Path, default=None,
                           help="baseline file of accepted findings "
                                "(default: the checked-in baseline)")
    analyze_p.add_argument("--write-baseline", action="store_true",
                           help="regenerate the baseline from the current "
                                "static findings instead of failing")
    analyze_p.add_argument("--seed", type=int, default=42,
                           help="seed for the race-sanitized run "
                                "(default: 42)")

    serve_p = sub.add_parser(
        "serve", help="multi-tenant job service over the simulated "
                      "cluster (NDJSON socket protocol, or --demo)")
    serve_p.add_argument("--demo", action="store_true",
                         help="run the acceptance scenario (concurrent "
                              "tenant burst + mid-run node churn) and "
                              "print the report")
    serve_p.add_argument("--clients", type=int, default=200,
                         help="concurrent demo clients (default: 200)")
    serve_p.add_argument("--nodes", type=int, default=9,
                         help="pool size in nodes (default: 9)")
    serve_p.add_argument("--seed", type=int, default=42,
                         help="session seed (default: 42)")
    serve_p.add_argument("--admission-policy", default="fair-share",
                         metavar="POLICY",
                         help="admission policy (registry kind "
                              "'admission': fair-share, strict-priority)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="socket bind host (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=0,
                         help="socket bind port (default: ephemeral)")
    serve_p.add_argument("--tenant", action="append", default=None,
                         metavar="NAME[:WEIGHT]",
                         help="register a tenant (repeatable; default: "
                              "alpha:3 beta:2 gamma:1)")
    serve_p.add_argument("--json", action="store_true", dest="as_json",
                         help="machine-readable demo report")

    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "lint":
        from .mcl.verify.cli import lint_main
        return lint_main(args.targets, all_apps=args.all_apps,
                         as_json=args.as_json,
                         errors_only=args.errors_only)

    if args.command == "analyze":
        from .analyze.cli import analyze_main
        return analyze_main(static=args.static, races=args.races,
                            all_checks=args.all_checks,
                            as_json=args.as_json, root=args.root,
                            baseline_path=args.baseline,
                            write_baseline=args.write_baseline,
                            seed=args.seed)

    if args.command == "serve":
        from .core.policy import policy_class as _policy_class
        from .serve.cli import serve_main
        try:
            import repro.serve  # noqa: F401  (registers admission policies)
            _policy_class("admission", args.admission_policy)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        return serve_main(
            demo=args.demo, clients=args.clients, nodes=args.nodes,
            seed=args.seed, policy=args.admission_policy,
            host=args.host, port=args.port, tenants=args.tenant,
            as_json=args.as_json)

    if args.command == "bench-engine":
        from .sweep.engine_bench import bench_engine_main
        return bench_engine_main(args.out, repeats=args.repeats,
                                 check=args.check_baseline,
                                 tolerance=args.tolerance,
                                 as_json=args.as_json)

    if args.command == "trace":
        from .obs.cli import trace_main
        return trace_main(args.app, out=args.out, seed=args.seed,
                          events_out=args.events,
                          summary=not args.no_summary)

    # Resolve policy names through the unified registry up front so a typo
    # fails fast with the known names, before any experiment runs.
    from .core.policy import policy_class
    requested: Dict[str, Any] = {}
    if args.seed is not None:
        requested["seed"] = args.seed
    try:
        if args.steal_policy is not None:
            import repro.satin  # noqa: F401  (registers the steal policies)
            policy_class("steal", args.steal_policy)
            requested["steal_policy"] = args.steal_policy
        if args.scheduler_policy is not None:
            import repro.core.scheduler  # noqa: F401  (registers device
            #                                            placement policies)
            policy_class("device", args.scheduler_policy)
            requested["scheduler_policy"] = args.scheduler_policy
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    if args.command == "sweep":
        from .sweep.cli import sweep_main
        if args.node_counts is not None:
            requested["node_counts"] = tuple(
                int(n) for n in args.node_counts.split(","))
        if args.scale is not None:
            requested["scale"] = args.scale
        return sweep_main(
            args.experiments, jobs=args.jobs, cache_dir=args.cache_dir,
            no_cache=args.no_cache, force=args.force, resume=args.resume,
            retries=args.retries, bench_out=args.bench_out, out=args.out,
            runner_kwargs=requested)

    targets = list_experiments() if args.experiment == "all" \
        else [args.experiment]
    for experiment_id in targets:
        try:
            runner = experiment_runner(experiment_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        kwargs = _accepted_kwargs(runner, requested)
        start = time.perf_counter()
        result = run_experiment(experiment_id, **kwargs)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"({elapsed:.1f}s wall-clock)\n")
        if args.out is not None:
            for path in _save(result, args.out):
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
