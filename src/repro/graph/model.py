"""First-class DAG job model: kernel-node specs, typed data edges, builder.

Satin expresses divide-and-conquer trees; compound multi-kernel
computations (cf. "Execution of Compound Multi-Kernel OpenCL Computations
in Multi-CPU/Multi-GPU Environments", PAPERS.md) chain kernels by data
dependencies instead.  A :class:`TaskGraph` is the static form of that
dependency structure: named :class:`KernelNodeSpec` nodes joined by typed
:class:`DataEdge` buffers, validated at build time —

* every edge endpoint names an existing node, no self-edges,
* **single assignment**: each named buffer has exactly one producer,
* **acyclic**: a Kahn topological sort must consume every node (the
  insertion-order-deterministic topo order is kept for the schedulers).

:class:`GraphBuilder` is the fluent surface: ``source → map → zip_with →
reduce → then`` stage combinators cover map/reduce pipelines, stencil-style
iteration (chained per-tile maps) and multi-stage pipelines without
hand-writing edges.  Execution lives in :mod:`repro.graph.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..devices.perfmodel import KernelProfile

__all__ = ["GraphError", "KernelNodeSpec", "DataEdge", "TaskGraph",
           "GraphBuilder", "Stage"]


class GraphError(ValueError):
    """A structurally invalid task graph (cycle, dangling edge, ...)."""


@dataclass(frozen=True)
class KernelNodeSpec:
    """One kernel launch in a task graph.

    ``kernel`` is the kernel *family* name (the measurement/prediction key
    shared by all launches of the same code); ``name`` identifies this
    node.  Costs follow the roofline model of
    :mod:`repro.devices.perfmodel`; ``in_bytes`` is host input staged
    before the launch (source nodes uploading data), ``out_bytes`` the
    size of the node's single-assignment output buffer.
    """

    name: str
    kernel: str
    flops: float
    device_bytes: float
    out_bytes: float = 0.0
    in_bytes: float = 0.0
    compute_efficiency: float = 0.85
    memory_efficiency: float = 0.85
    divergence_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not self.kernel:
            raise GraphError("node needs a non-empty name and kernel")
        if self.flops < 0 or self.device_bytes < 0:
            raise GraphError(f"node {self.name!r}: negative flops/bytes")
        if self.out_bytes < 0 or self.in_bytes < 0:
            raise GraphError(f"node {self.name!r}: negative transfer bytes")

    def profile(self) -> KernelProfile:
        """The roofline profile of one launch of this node."""
        return KernelProfile(
            name=self.kernel,
            flops=self.flops,
            device_bytes=self.device_bytes,
            compute_efficiency=self.compute_efficiency,
            memory_efficiency=self.memory_efficiency,
            divergence_factor=self.divergence_factor,
        )


@dataclass(frozen=True)
class DataEdge:
    """A typed data dependency: ``dst`` consumes buffer ``data`` of ``src``."""

    src: str
    dst: str
    data: str
    nbytes: float
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise GraphError(f"edge {self.data!r}: negative nbytes")


class TaskGraph:
    """A validated DAG of kernel nodes and data edges.

    Node and edge iteration orders are insertion orders everywhere — the
    executor's dispatch and the schedulers' tie-breaks derive from them,
    which keeps seeded runs byte-identical.
    """

    def __init__(self, name: str, nodes: Sequence[KernelNodeSpec],
                 edges: Sequence[DataEdge]):
        self.name = name
        self.nodes: Dict[str, KernelNodeSpec] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise GraphError(f"duplicate node {node.name!r}")
            self.nodes[node.name] = node
        self.edges: Tuple[DataEdge, ...] = tuple(edges)
        self._index: Dict[str, int] = {
            n: i for i, n in enumerate(self.nodes)}
        self._in: Dict[str, List[DataEdge]] = {n: [] for n in self.nodes}
        self._out: Dict[str, List[DataEdge]] = {n: [] for n in self.nodes}
        producers: Dict[str, str] = {}
        for edge in self.edges:
            if edge.src not in self.nodes:
                raise GraphError(f"edge {edge.data!r}: unknown src {edge.src!r}")
            if edge.dst not in self.nodes:
                raise GraphError(f"edge {edge.data!r}: unknown dst {edge.dst!r}")
            if edge.src == edge.dst:
                raise GraphError(f"self-edge on {edge.src!r}")
            seen = producers.get(edge.data)
            if seen is not None and seen != edge.src:
                raise GraphError(
                    f"buffer {edge.data!r} assigned by both {seen!r} "
                    f"and {edge.src!r} (single-assignment violated)")
            producers[edge.data] = edge.src
            self._in[edge.dst].append(edge)
            self._out[edge.src].append(edge)
        self._topo: Tuple[str, ...] = self._toposort()

    # -- structure queries --------------------------------------------------
    def in_edges(self, name: str) -> List[DataEdge]:
        return self._in[name]

    def out_edges(self, name: str) -> List[DataEdge]:
        return self._out[name]

    def predecessors(self, name: str) -> List[str]:
        return list(dict.fromkeys(e.src for e in self._in[name]))

    def successors(self, name: str) -> List[str]:
        return list(dict.fromkeys(e.dst for e in self._out[name]))

    def node_index(self, name: str) -> int:
        """Insertion index — the deterministic tie-break key."""
        return self._index[name]

    def topo_order(self) -> Tuple[str, ...]:
        """Kahn topological order (insertion-order deterministic)."""
        return self._topo

    def sources(self) -> List[str]:
        return [n for n in self.nodes if not self._in[n]]

    def sinks(self) -> List[str]:
        return [n for n in self.nodes if not self._out[n]]

    @property
    def total_flops(self) -> float:
        return sum(spec.flops for spec in self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)

    def _toposort(self) -> Tuple[str, ...]:
        remaining: Dict[str, int] = {
            n: len(self.predecessors(n)) for n in self.nodes}
        frontier: List[str] = [n for n, deg in remaining.items() if deg == 0]
        order: List[str] = []
        while frontier:
            name = frontier.pop(0)
            order.append(name)
            for succ in self.successors(name):
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self.nodes):
            cyclic = [n for n, deg in remaining.items() if deg > 0]
            raise GraphError(f"cycle through nodes {cyclic}")
        return tuple(order)


class Stage:
    """A fluent handle on a set of sibling nodes inside a builder.

    Each combinator appends nodes + edges to the owning builder and
    returns the new stage, so pipelines read left-to-right::

        b.source("tile", 8, ...).map("trace", ...).reduce("sum", ...)
    """

    def __init__(self, builder: "GraphBuilder", names: Sequence[str]):
        self._b = builder
        self.names: Tuple[str, ...] = tuple(names)

    def __len__(self) -> int:
        return len(self.names)

    def _out_bytes(self, name: str) -> float:
        return self._b._nodes[name].out_bytes

    def map(self, prefix: str, *, kernel: Optional[str] = None,
            flops: float, out_bytes: float,
            device_bytes: Optional[float] = None,
            **kw: float) -> "Stage":
        """One new node per stage node, consuming that node's output."""
        names = []
        for i, src in enumerate(self.names):
            name = f"{prefix}{i}" if len(self.names) > 1 else prefix
            nbytes = self._out_bytes(src)
            self._b.node(name, kernel=kernel or prefix, flops=flops,
                         device_bytes=device_bytes
                         if device_bytes is not None
                         else nbytes + out_bytes,
                         out_bytes=out_bytes, **kw)
            self._b.edge(src, name, nbytes=nbytes)
            names.append(name)
        return Stage(self._b, names)

    def zip_with(self, other: "Stage", prefix: str, *,
                 kernel: Optional[str] = None, flops: float,
                 out_bytes: float, device_bytes: Optional[float] = None,
                 **kw: float) -> "Stage":
        """Pairwise combine two equally-sized stages (e.g. accumulate)."""
        if len(other) != len(self):
            raise GraphError(
                f"zip_with: stage sizes differ ({len(self)} vs {len(other)})")
        names = []
        for i, (a, b) in enumerate(zip(self.names, other.names)):
            name = f"{prefix}{i}" if len(self.names) > 1 else prefix
            nbytes = self._out_bytes(a) + self._out_bytes(b)
            self._b.node(name, kernel=kernel or prefix, flops=flops,
                         device_bytes=device_bytes
                         if device_bytes is not None
                         else nbytes + out_bytes,
                         out_bytes=out_bytes, **kw)
            self._b.edge(a, name, nbytes=self._out_bytes(a))
            self._b.edge(b, name, nbytes=self._out_bytes(b))
            names.append(name)
        return Stage(self._b, names)

    def reduce(self, prefix: str, *, kernel: Optional[str] = None,
               flops_per_input: float, out_bytes: float, arity: int = 2,
               **kw: float) -> "Stage":
        """Tree-reduce the stage down to a single node."""
        if arity < 2:
            raise GraphError("reduce arity must be >= 2")
        level = 0
        current = list(self.names)
        while len(current) > 1:
            nxt = []
            for i in range(0, len(current), arity):
                group = current[i:i + arity]
                if len(group) == 1 and len(current) > arity:
                    nxt.append(group[0])
                    continue
                name = (f"{prefix}_l{level}_{i // arity}"
                        if len(current) > arity else prefix)
                in_bytes = sum(self._out_bytes(g) for g in group)
                self._b.node(name, kernel=kernel or prefix,
                             flops=flops_per_input * len(group),
                             device_bytes=in_bytes + out_bytes,
                             out_bytes=out_bytes, **kw)
                for g in group:
                    self._b.edge(g, name, nbytes=self._out_bytes(g))
                nxt.append(name)
            current = nxt
            level += 1
        return Stage(self._b, current)

    def fanout(self, prefix: str, count: int, *,
               kernel: Optional[str] = None, flops: float, out_bytes: float,
               device_bytes: Optional[float] = None, **kw: float) -> "Stage":
        """``count`` new nodes, each consuming every output of this stage
        (broadcast: e.g. one scene buffer feeding every trace tile)."""
        if count < 1:
            raise GraphError("fanout count must be >= 1")
        in_bytes = sum(self._out_bytes(n) for n in self.names)
        names = []
        for i in range(count):
            name = f"{prefix}{i}" if count > 1 else prefix
            self._b.node(name, kernel=kernel or prefix, flops=flops,
                         device_bytes=device_bytes
                         if device_bytes is not None
                         else in_bytes + out_bytes,
                         out_bytes=out_bytes, **kw)
            for src in self.names:
                self._b.edge(src, name, nbytes=self._out_bytes(src))
            names.append(name)
        return Stage(self._b, names)

    def then(self, name: str, *, kernel: Optional[str] = None,
             flops: float, out_bytes: float,
             device_bytes: Optional[float] = None, **kw: float) -> "Stage":
        """One node consuming every output of this stage (a join/barrier)."""
        in_bytes = sum(self._out_bytes(n) for n in self.names)
        self._b.node(name, kernel=kernel or name, flops=flops,
                     device_bytes=device_bytes if device_bytes is not None
                     else in_bytes + out_bytes,
                     out_bytes=out_bytes, **kw)
        for src in self.names:
            self._b.edge(src, name, nbytes=self._out_bytes(src))
        return Stage(self._b, [name])


class GraphBuilder:
    """Fluent builder accumulating nodes and edges; ``build()`` validates."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: Dict[str, KernelNodeSpec] = {}
        self._edges: List[DataEdge] = []

    def node(self, name: str, *, kernel: str, flops: float,
             device_bytes: float, out_bytes: float = 0.0,
             in_bytes: float = 0.0, **kw: float) -> "GraphBuilder":
        if name in self._nodes:
            raise GraphError(f"duplicate node {name!r}")
        self._nodes[name] = KernelNodeSpec(
            name=name, kernel=kernel, flops=flops,
            device_bytes=device_bytes, out_bytes=out_bytes,
            in_bytes=in_bytes, **kw)
        return self

    def edge(self, src: str, dst: str, *, nbytes: float,
             data: Optional[str] = None, dtype: str = "float32"
             ) -> "GraphBuilder":
        self._edges.append(DataEdge(src=src, dst=dst,
                                    data=data or f"{src}.out",
                                    nbytes=nbytes, dtype=dtype))
        return self

    def source(self, prefix: str, count: int = 1, *,
               kernel: Optional[str] = None, flops: float,
               out_bytes: float, in_bytes: float = 0.0,
               device_bytes: Optional[float] = None, **kw: float) -> Stage:
        """``count`` root nodes (data upload / generation kernels)."""
        if count < 1:
            raise GraphError("source count must be >= 1")
        names = []
        for i in range(count):
            name = f"{prefix}{i}" if count > 1 else prefix
            self.node(name, kernel=kernel or prefix, flops=flops,
                      device_bytes=device_bytes if device_bytes is not None
                      else in_bytes + out_bytes,
                      out_bytes=out_bytes, in_bytes=in_bytes, **kw)
            names.append(name)
        return Stage(self, names)

    def stage(self, names: Sequence[str]) -> Stage:
        """A stage over already-declared nodes (for hand-wired graphs)."""
        for n in names:
            if n not in self._nodes:
                raise GraphError(f"unknown node {n!r}")
        return Stage(self, names)

    def build(self) -> TaskGraph:
        return TaskGraph(self.name, list(self._nodes.values()), self._edges)
