"""The two compound multi-kernel DAG applications.

Both are pipeline-shaped workloads the D&C model cannot express — kernels
chained by data dependencies with reuse across stages, where placement
that ignores data locality pays PCIe/network transfers on every hop:

* :func:`path_tracer_graph` — a tiled path tracer with per-pass
  accumulation and a post-process stage: each pass traces every tile
  (divergent, compute-bound), accumulates into the running per-tile
  framebuffer (bandwidth-bound, tiny), and a final tonemap + gather
  produces the image.  The accumulation chain makes tile affinity
  valuable: moving a tile's framebuffer between devices costs more than
  the accumulate kernel itself.

* :func:`kmeans_pp_graph` — a multi-stage k-means++ pipeline: k-means||
  style seeding rounds (per-chunk distance map → weight reduce → choose)
  followed by Lloyd iterations (per-chunk assign → update).  The chunked
  point set is the resident state; every stage also consumes the small
  centroid buffer broadcast from the previous round's tail node.

``GRAPH_APPS`` is the registry the sweep engine / CLI resolve ``system
== "graph"`` app names through; builders accept ``scale`` (flops/bytes
multiplier) plus structural knobs so CI can run them small.
"""

from __future__ import annotations

from typing import Callable, Dict

from .model import GraphBuilder, TaskGraph

__all__ = ["path_tracer_graph", "kmeans_pp_graph", "GRAPH_APPS"]

FLOAT_BYTES = 4.0


def path_tracer_graph(scale: float = 1.0, tiles: int = 8, passes: int = 6,
                      width: int = 1920, height: int = 1080,
                      samples: int = 2) -> TaskGraph:
    """Tiled path tracer: trace passes → per-tile accumulate → tonemap."""
    if tiles < 1 or passes < 1:
        raise ValueError("tiles and passes must be >= 1")
    pixels = width * height * scale
    tile_px = pixels / tiles
    tile_bytes = tile_px * FLOAT_BYTES
    scene_bytes = 256 * 1024.0
    flops_per_sample = 1800.0

    b = GraphBuilder("path-tracer")
    scene = b.source("scene", 1, kernel="scene-upload", flops=1e6,
                     out_bytes=scene_bytes, in_bytes=scene_bytes)
    # pass 0 seeds the accumulation chain; later passes zip into it
    acc = scene.fanout(
        "trace_p0_t", tiles, kernel="trace",
        flops=tile_px * samples * flops_per_sample,
        device_bytes=tile_bytes * 4, out_bytes=tile_bytes,
        compute_efficiency=0.8, memory_efficiency=0.7,
        divergence_factor=1.6)
    for p in range(1, passes):
        trace = scene.fanout(
            f"trace_p{p}_t", tiles, kernel="trace",
            flops=tile_px * samples * flops_per_sample,
            device_bytes=tile_bytes * 4, out_bytes=tile_bytes,
            compute_efficiency=0.8, memory_efficiency=0.7,
            divergence_factor=1.6)
        acc = acc.zip_with(
            trace, f"acc_p{p}_t", kernel="accumulate",
            flops=2.0 * tile_px, out_bytes=tile_bytes,
            memory_efficiency=0.75)
    tone = acc.map("tone_t", kernel="tonemap", flops=5.0 * tile_px,
                   out_bytes=tile_bytes, memory_efficiency=0.75)
    tone.then("image", kernel="gather", flops=pixels,
              out_bytes=pixels * FLOAT_BYTES, memory_efficiency=0.75)
    return b.build()


def kmeans_pp_graph(scale: float = 1.0, chunks: int = 6,
                    seed_rounds: int = 3, iterations: int = 3,
                    n_points: int = 1 << 20, dim: int = 16,
                    k: int = 32) -> TaskGraph:
    """k-means++ pipeline: seeding rounds, then Lloyd assign/update."""
    if chunks < 1 or seed_rounds < 1 or iterations < 1:
        raise ValueError("chunks/seed_rounds/iterations must be >= 1")
    points = n_points * scale
    chunk_pts = points / chunks
    chunk_bytes = chunk_pts * dim * FLOAT_BYTES
    batch = max(1.0, k / seed_rounds)          # seeds chosen per round
    seed_bytes = batch * dim * FLOAT_BYTES
    centroid_bytes = k * dim * FLOAT_BYTES

    b = GraphBuilder("kmeans-pp")
    pts = b.source("points", chunks, kernel="points-upload",
                   flops=chunk_pts, out_bytes=chunk_bytes,
                   in_bytes=chunk_bytes, memory_efficiency=0.75)
    seeds = None  # tail node carrying the current seed/centroid set
    for r in range(seed_rounds):
        dist = pts.map(f"dist_r{r}_c", kernel="kmeans-dist",
                       flops=chunk_pts * dim * batch * 2.0,
                       device_bytes=chunk_bytes + chunk_pts * FLOAT_BYTES,
                       out_bytes=chunk_pts * FLOAT_BYTES,
                       compute_efficiency=0.8)
        if seeds is not None:
            for name in dist.names:
                b.edge(seeds.names[0], name, nbytes=seed_bytes * (r + 1))
        weights = dist.reduce(f"weights_r{r}",
                              kernel="kmeans-weight-reduce",
                              flops_per_input=chunk_pts,
                              out_bytes=4096.0, memory_efficiency=0.75)
        seeds = weights.then(f"choose_r{r}", kernel="kmeans-choose",
                             flops=batch * dim * 50.0,
                             out_bytes=seed_bytes * (r + 1),
                             memory_efficiency=0.75)
    centroids = seeds
    assert centroids is not None
    for i in range(iterations):
        assign = pts.map(f"assign_i{i}_c", kernel="kmeans-assign",
                         flops=chunk_pts * dim * k * 2.0,
                         device_bytes=chunk_bytes + chunk_pts * FLOAT_BYTES,
                         out_bytes=k * (dim + 1) * FLOAT_BYTES,
                         compute_efficiency=0.8)
        for name in assign.names:
            b.edge(centroids.names[0], name,
                   nbytes=centroid_bytes if i else seed_bytes * seed_rounds)
        centroids = assign.then(f"update_i{i}", kernel="kmeans-update",
                                flops=k * dim * (chunks + 1.0),
                                out_bytes=centroid_bytes,
                                memory_efficiency=0.75)
    return b.build()


#: registry for the sweep engine / experiments / CLI (system ``"graph"``)
GRAPH_APPS: Dict[str, Callable[..., TaskGraph]] = {
    "path-tracer": path_tracer_graph,
    "kmeans-pp": kmeans_pp_graph,
}
