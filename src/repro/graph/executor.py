"""DAG executor: runs a :class:`TaskGraph` on a simulated cluster.

The executor is the static-graph twin of the Satin runtime: the same
:class:`~repro.satin.job.DependencyTracker` ready-set machinery drives
dispatch, but the DAG is known up front, so the device scheduler can look
ahead.  Every node runs as one kernel launch on one device of the
flattened cluster-wide pool:

* inputs produced on a **different** device are materialised via
  d2h → (network, when the producer lives on another node) → h2d,
  inputs produced on the **same** device are free (device-resident),
* source nodes stage their ``in_bytes`` from the host over PCIe,
* sink outputs are copied back to the host.

Placement goes through the unified device-policy registry
(:mod:`repro.core.policy`, kind ``"device"``): the greedy policies see one
ready node at a time, :class:`~repro.core.scheduler.LookaheadMakespanPolicy`
additionally receives the whole graph via the ``graph_*`` hooks.

Observability: ``graph_node_ready`` / ``graph_node_dispatch`` /
``graph_node_complete`` point events, plus the usual ``h2d``/``d2h``/
``kernel``/``send`` intervals and the policies' ``sched_decision`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..cluster.das4 import SimCluster
from ..cluster.node import ComputeNode
from ..core.policy import create_policy
from ..core.scheduler import DevicePlacementPolicy, SchedulingDecision
from ..devices.device import SimDevice
from ..devices.perfmodel import kernel_time, transfer_time
from ..satin.job import DependencyTracker
from .model import DataEdge, TaskGraph

__all__ = ["GraphConfig", "GraphRunResult", "GraphRuntime"]


@dataclass
class GraphConfig:
    """Execution parameters of one DAG run."""

    DEFAULT_SEED = 42
    DEFAULT_SCHEDULER_POLICY = "makespan"

    seed: int = DEFAULT_SEED
    #: device-placement policy name (registry kind ``"device"``)
    scheduler_policy: str = DEFAULT_SCHEDULER_POLICY


@dataclass
class GraphRunResult:
    """Outcome of one DAG run."""

    graph: str
    policy: str
    makespan_s: float
    total_flops: float
    nodes_run: int
    #: node name -> device lane it ran on
    placements: Dict[str, str] = field(default_factory=dict)
    #: bytes moved across devices to satisfy edges (0 = perfect locality)
    cross_device_bytes: float = 0.0

    @property
    def gflops(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.total_flops / self.makespan_s / 1e9


class _ScheduleContext:
    """What a lookahead policy may ask about the in-flight schedule."""

    def __init__(self, runtime: "GraphRuntime"):
        self._rt = runtime

    @property
    def now(self) -> float:
        return self._rt.env.now

    def in_edges(self, name: str) -> List[DataEdge]:
        return self._rt.graph.in_edges(name)

    def placement(self, name: str) -> Optional[str]:
        decision = self._rt._decisions.get(name)
        return decision.device.lane if decision is not None else None

    def edge_cost(self, edge: DataEdge, src_lane: str, dst_lane: str) -> float:
        """Estimated cost of moving ``edge`` between two distinct devices."""
        return self._rt._edge_cost(edge.nbytes,
                                   self._rt._device_by_lane[src_lane],
                                   self._rt._device_by_lane[dst_lane])


class GraphRuntime:
    """Execute one task graph over the flattened device pool of a cluster."""

    def __init__(self, cluster: SimCluster, graph: TaskGraph,
                 config: Optional[GraphConfig] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.graph = graph
        self.config = config or GraphConfig()
        self.devices: List[SimDevice] = [
            dev for node in cluster.nodes for dev in node.devices]
        if not self.devices:
            raise ValueError(
                f"cluster {cluster.config.name!r} has no many-core devices")
        self._owner: Dict[str, ComputeNode] = {}
        for node in cluster.nodes:
            for dev in node.devices:
                self._owner[dev.lane] = node
        self._device_by_lane: Dict[str, SimDevice] = {
            dev.lane: dev for dev in self.devices}
        policy = create_policy("device", self.config.scheduler_policy)
        assert isinstance(policy, DevicePlacementPolicy)
        self._policy: DevicePlacementPolicy = policy
        self._policy.bind(cluster.obs)
        self._decisions: Dict[str, SchedulingDecision] = {}
        self._tracker = DependencyTracker()
        self._ctx = _ScheduleContext(self)
        self._completed = 0
        self._cross_device_bytes = 0.0
        self._wake = None

    # -- cost estimates (policy-facing) -------------------------------------
    def _edge_cost(self, nbytes: float, src: SimDevice,
                   dst: SimDevice) -> float:
        """d2h + (network) + h2d for one edge between two distinct devices."""
        cost = (transfer_time(nbytes, src.spec)
                + transfer_time(nbytes, dst.spec))
        src_node = self._owner[src.lane]
        dst_node = self._owner[dst.lane]
        if src_node.rank != dst_node.rank:
            cost += self.cluster.network.spec.transfer_time(nbytes)
        return cost

    def _mean_exec_estimate(self, name: str) -> float:
        profile = self.graph.nodes[name].profile()
        times = [kernel_time(profile, dev.spec) for dev in self.devices]
        return sum(times) / len(times)

    def _mean_comm_estimate(self, edge: DataEdge) -> float:
        """Mean cross-device cost of an edge over distinct device pairs."""
        if len(self.devices) == 1:
            return 0.0
        total = 0.0
        pairs = 0
        for src in self.devices:
            for dst in self.devices:
                if src is dst:
                    continue
                total += self._edge_cost(edge.nbytes, src, dst)
                pairs += 1
        return total / pairs

    # -- execution ----------------------------------------------------------
    def run(self) -> GraphRunResult:
        driver = self.env.process(self._drive())
        self.env.run(until=driver)
        return GraphRunResult(
            graph=self.graph.name,
            policy=self.config.scheduler_policy,
            makespan_s=self.env.now,
            total_flops=self.graph.total_flops,
            nodes_run=self._completed,
            placements={name: d.device.lane
                        for name, d in self._decisions.items()},
            cross_device_bytes=self._cross_device_bytes,
        )

    def _drive(self) -> Generator:
        graph = self.graph
        tracker = self._tracker = DependencyTracker()
        for name in graph.nodes:
            tracker.add(name, graph.predecessors(name))
        self._policy.graph_prepare(graph, self._mean_exec_estimate,
                                   self._mean_comm_estimate)
        obs = self.cluster.obs
        total = len(graph)
        while self._completed < total:
            ready = tracker.take_ready()
            if ready:
                for name in self._policy.graph_order(ready, graph):
                    if obs.enabled:
                        obs.emit("graph_node_ready", node=None, graph=graph.name,
                                 graph_node=name,
                                 kernel=graph.nodes[name].kernel)
                    self._dispatch(name)
                continue
            self._wake = self.env.event()
            yield self._wake
        self._wake = None

    def _dispatch(self, name: str) -> None:
        spec = self.graph.nodes[name]
        profile = spec.profile()
        predictions: Dict[str, Tuple[float, bool]] = {
            dev.lane: (kernel_time(profile, dev.spec), False)
            for dev in self.devices}
        decision = self._policy.graph_select(name, self.devices,
                                             predictions, self._ctx)
        decision.device.pending_work_s += decision.predicted_s
        self._decisions[name] = decision
        obs = self.cluster.obs
        if obs.enabled:
            obs.emit("graph_node_dispatch", node=decision.device.node_rank,
                     graph=self.graph.name, graph_node=name,
                     kernel=spec.kernel, chosen=decision.device.lane,
                     predicted_s=decision.predicted_s,
                     policy=self.config.scheduler_policy)
        self.env.process(self._run_node(name, decision))

    def _run_node(self, name: str,
                  decision: SchedulingDecision) -> Generator:
        graph = self.graph
        spec = graph.nodes[name]
        dev = decision.device
        node = self._owner[dev.lane]
        if spec.in_bytes > 0:
            yield from dev.copy_to_device(spec.in_bytes, label=f"{name}-in")
        for edge in graph.in_edges(name):
            src_dev = self._decisions[edge.src].device
            if src_dev is dev:
                continue  # device-resident input: no transfer
            if edge.nbytes <= 0:
                continue
            self._cross_device_bytes += edge.nbytes
            src_node = self._owner[src_dev.lane]
            yield from src_dev.copy_from_device(
                edge.nbytes, label=f"{edge.data}-d2h")
            if src_node.rank != node.rank:
                yield from src_node.endpoint.send(
                    node.rank, f"graph:{edge.data}", nbytes=edge.nbytes)
            yield from dev.copy_to_device(
                edge.nbytes, label=f"{edge.data}-h2d")
        yield from dev.run_kernel(spec.profile(), label=name)
        if not graph.out_edges(name) and spec.out_bytes > 0:
            yield from dev.copy_from_device(
                spec.out_bytes, label=f"{name}-out")
        dev.pending_work_s = max(
            0.0, dev.pending_work_s - decision.predicted_s)
        obs = self.cluster.obs
        if obs.enabled:
            obs.emit("graph_node_complete", node=dev.node_rank,
                     graph=graph.name, graph_node=name, kernel=spec.kernel,
                     chosen=dev.lane)
        self._completed += 1
        self._tracker.complete(name)
        wake = self._wake
        if wake is not None and not wake.triggered:
            self._wake = None
            wake.succeed()
