"""First-class DAG job model and executor (``repro.graph``).

Sits between the applications and the Satin/Cashmere runtime layers: the
:mod:`model <repro.graph.model>` declares compound multi-kernel
computations as validated task graphs, the :mod:`executor
<repro.graph.executor>` runs them over a simulated cluster through the
unified device-policy registry, and :mod:`apps <repro.graph.apps>` ships
the two pipeline workloads.  See docs/graphs.md.
"""

from .apps import GRAPH_APPS, kmeans_pp_graph, path_tracer_graph
from .executor import GraphConfig, GraphRunResult, GraphRuntime
from .model import (DataEdge, GraphBuilder, GraphError, KernelNodeSpec,
                    Stage, TaskGraph)

__all__ = [
    "DataEdge", "GraphBuilder", "GraphError", "KernelNodeSpec", "Stage",
    "TaskGraph", "GraphConfig", "GraphRunResult", "GraphRuntime",
    "GRAPH_APPS", "path_tracer_graph", "kmeans_pp_graph",
]
