"""Matrix multiplication — the regular, compute- *and* communication-
intensive application (Table II).

The paper multiplies two 32768x32768 single-precision matrices.  The D&C
driver divides the output matrix into quadrants; a leaf computes one
``bs x bs`` output block from an ``bs x n`` row panel of A and an ``n x bs``
column panel of B, which is why matmul is communication-heavy: a stolen leaf
drags hundreds of MB across the network (Sec. V-B2's poor scaling).

Kernel versions:

* ``perfect`` — the paper's Fig. 3 kernel verbatim (unoptimized),
* ``gpu``    — 32x32 local-memory tiling with cooperative staging,
* ``mic``    — core/thread chunking with 16-wide vectorized columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .base import FLOAT_BYTES, CashmereApplication

__all__ = ["MatmulApp", "MatmulTask", "reference_matmul",
           "PAPER_N", "paper_app", "small_app"]

#: the paper's problem size (Sec. V-B2)
PAPER_N = 32768

KERNELS_PERFECT = """
perfect void matmul(int n, int m, int p,
    float[n,m] c,
    float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) {
        sum += a[i,k] * b[k,j];
      }
      c[i,j] += sum;
    }
  }
}
"""

KERNELS_GPU = """
gpu void matmul(int n, int m, int p,
    float[n,m] c,
    float[n,p] a, float[p,m] b) {
  foreach (int bi in n / 32 blocks) {
    foreach (int bj in m / 32 blocks) {
      local float[32,32] ta;
      local float[32,32] tb;
      local float[32,32] cacc;
      foreach (int ti in 32 threads) {
        foreach (int tj in 32 threads) {
          cacc[ti,tj] = 0.0;
        }
      }
      for (int kk = 0; kk < p; kk += 32) {
        foreach (int ti in 32 threads) {
          foreach (int tj in 32 threads) {
            ta[ti,tj] = a[bi * 32 + ti, kk + tj];  // lint: ignore[MCL201] the driver pads p to a multiple of 32
            tb[ti,tj] = b[kk + ti, bj * 32 + tj];  // lint: ignore[MCL201] the driver pads p to a multiple of 32
          }
        }
        foreach (int ti in 32 threads) {
          foreach (int tj in 32 threads) {
            float sum = cacc[ti,tj];
            for (int k = 0; k < 32; k++) {
              sum += ta[ti,k] * tb[k,tj];
            }
            cacc[ti,tj] = sum;
          }
        }
      }
      foreach (int ti in 32 threads) {
        foreach (int tj in 32 threads) {
          c[bi * 32 + ti, bj * 32 + tj] += cacc[ti,tj];
        }
      }
    }
  }
}
"""

KERNELS_MIC = """
mic void matmul(int n, int m, int p,
    float[n,m] c,
    float[n,p] a, float[p,m] b) {
  foreach (int ci in 60 cores) {
    int rows = (n + 59) / 60;
    for (int kk = 0; kk < p; kk += 256) {
      for (int jj = 0; jj < m; jj += 128) {
        local float[256,128] tb;
        for (int x = 0; x < 256; x++) {
          for (int y = 0; y < 128; y++) {
            tb[x,y] = b[kk + x, jj + y];  // lint: ignore[MCL201] the driver pads p and m to multiples of the tile
          }
        }
        foreach (int ti in 4 threads) {
          int chunk = (rows + 3) / 4;
          int base = ci * rows + ti * chunk;
          for (int i = base; i < base + chunk && i < n && i < ci * rows + rows; i += 1) {
            for (int jv = 0; jv < 128; jv += 16) {
              foreach (int v in 16 vectors) {
                int j = jj + jv + v;
                float sum = 0.0;
                for (int k = 0; k < 256; k++) {
                  sum += a[i, kk + k] * tb[k, jv + v];  // lint: ignore[MCL201] kk + k < p by padding; jv + v < 128 since jv steps by the 16-lane width
                }
                c[i,j] += sum;  // lint: ignore[MCL201] j = jj + jv + v < m by padding
              }
            }
          }
        }
      }
    }
  }
}
"""


@dataclass(frozen=True)
class MatmulTask:
    """One output block of C: rows [row0, row0+size), cols [col0, col0+size)."""

    row0: int
    col0: int
    size: int


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference result the distributed computation must match."""
    return a @ b


class MatmulApp(CashmereApplication):
    """Blocked matmul over the Cashmere/Satin divide-and-conquer model."""

    name = "matmul"
    KERNELS_UNOPTIMIZED = KERNELS_PERFECT
    KERNELS_OPTIMIZED = KERNELS_GPU + KERNELS_MIC

    def __init__(self, n: int = PAPER_N, leaf_block: int = 2048,
                 manycore_block: Optional[int] = None,
                 data: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None):
        if n % leaf_block != 0:
            raise ValueError("n must be a multiple of leaf_block")
        self.n = n
        self.leaf_block = leaf_block
        #: block size at which enableManyCore fires (default: the leaf
        #: block, keeping every leaf individually stealable)
        self.manycore_block = manycore_block if manycore_block is not None \
            else leaf_block
        #: optional (a, b, c) arrays for real execution; c accumulates
        self.data = data

    # -- structure ----------------------------------------------------------
    def root_task(self) -> MatmulTask:
        return MatmulTask(0, 0, self.n)

    def is_leaf(self, task: MatmulTask) -> bool:
        return task.size <= self.leaf_block

    def is_manycore(self, task: MatmulTask) -> bool:
        return task.size <= self.manycore_block

    def divide(self, task: MatmulTask) -> List[MatmulTask]:
        half = task.size // 2
        return [MatmulTask(task.row0 + di * half, task.col0 + dj * half, half)
                for di in (0, 1) for dj in (0, 1)]

    def combine(self, task: MatmulTask, results: List[Any]) -> Any:
        return sum(r for r in results if r is not None)

    # -- costs ----------------------------------------------------------------
    def task_bytes(self, task: MatmulTask) -> float:
        # Row panel of A, column panel of B, and the C block itself.
        return FLOAT_BYTES * (2.0 * task.size * self.n + task.size ** 2)

    def result_bytes(self, task: MatmulTask) -> float:
        return FLOAT_BYTES * task.size ** 2

    def leaf_flops(self, task: MatmulTask) -> float:
        return 2.0 * task.size * task.size * self.n

    # -- kernels -----------------------------------------------------------------
    def leaf_kernel_name(self, task: MatmulTask) -> str:
        return "matmul"

    def leaf_kernel_params(self, task: MatmulTask) -> Dict[str, int]:
        return {"n": task.size, "m": task.size, "p": self.n}

    def leaf_h2d_bytes(self, task: MatmulTask) -> float:
        return self.task_bytes(task)

    def leaf_d2h_bytes(self, task: MatmulTask) -> float:
        return self.result_bytes(task)

    # -- real execution -------------------------------------------------------
    supports_leaf_batch = True

    def leaf_result(self, task: MatmulTask) -> Any:
        if self.data is None:
            return 0.0
        a, b, c = self.data
        r0, c0, s = task.row0, task.col0, task.size
        block = a[r0:r0 + s, :] @ b[:, c0:c0 + s]
        c[r0:r0 + s, c0:c0 + s] += block
        return float(block.sum())

    def leaf_batch(self, tasks) -> List[Any]:
        """All pending output blocks in one stacked batched matmul.

        Leaves of equal size share a ``[k, s, n] @ [k, n, s]`` call; each
        slice is the same GEMM the scalar path runs, and leaf blocks of C
        are disjoint, so accumulation order does not matter.
        """
        if self.data is None:
            return [0.0] * len(tasks)
        a, b, c = self.data
        out: List[Any] = [None] * len(tasks)
        by_size: Dict[int, List[int]] = {}
        for i, t in enumerate(tasks):
            by_size.setdefault(t.size, []).append(i)
        for size, idxs in by_size.items():
            a_stack = np.stack(
                [a[tasks[i].row0:tasks[i].row0 + size, :] for i in idxs])
            b_stack = np.stack(
                [b[:, tasks[i].col0:tasks[i].col0 + size] for i in idxs])
            blocks = a_stack @ b_stack
            for j, i in enumerate(idxs):
                t = tasks[i]
                block = blocks[j]
                c[t.row0:t.row0 + size, t.col0:t.col0 + size] += block
                out[i] = float(block.sum())
        return out


def paper_app(optimized_blocks: bool = True) -> MatmulApp:
    """The paper-scale configuration (32768^2, 2048-blocks)."""
    return MatmulApp(n=PAPER_N, leaf_block=2048)


def small_app(n: int = 256, leaf_block: int = 64,
             seed: int = 0) -> MatmulApp:
    """A small configuration with real data, for validation."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n), dtype=np.float64)
    b = rng.random((n, n), dtype=np.float64)
    c = np.zeros((n, n))
    return MatmulApp(n=n, leaf_block=leaf_block, data=(a, b, c))
