"""The four evaluation applications of the paper (Table II).

========== =========== ============ =============
app        type        computation  communication
========== =========== ============ =============
raytracer  irregular   heavy        light
matmul     regular     heavy        heavy
k-means    iterative   moderate     light
n-body     iterative   heavy        moderate
========== =========== ============ =============
"""

from .base import CashmereApplication, run_cashmere, run_satin
from .kmeans import KMeansApp
from .matmul import MatmulApp
from .nbody import NBodyApp
from .raytracer import RaytracerApp

__all__ = [
    "CashmereApplication",
    "run_satin",
    "run_cashmere",
    "MatmulApp",
    "KMeansApp",
    "NBodyApp",
    "RaytracerApp",
]
