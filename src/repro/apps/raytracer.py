"""Path-tracing raytracer — the irregular, compute-intensive application
(Table II), based on smallpt / SmallptGPU.

The paper renders the Cornell scene at 16384x8192 with 500 random samples
per pixel.  The kernel is highly divergent: ray bounces terminate at
data-dependent depths, so SIMD lanes idle — which is why optimization
barely helps this kernel (Sec. V-A) and why we provide no vectorized
``mic`` version (divergent code does not vectorize).

The MCPL kernel is a simplified grayscale path tracer with a 32-bit
xorshift RNG; the Python reference implementation mirrors it operation for
operation, so interpreter output can be compared bit-for-bit at small
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .base import FLOAT_BYTES, CashmereApplication

__all__ = ["RaytracerApp", "RayTask", "cornell_scene", "reference_trace",
           "paper_app", "small_app", "PAPER_WIDTH", "PAPER_HEIGHT",
           "PAPER_SAMPLES"]

PAPER_WIDTH = 16384
PAPER_HEIGHT = 8192
PAPER_SAMPLES = 500

_TRACE_BODY = """
  foreach (int y in nrows threads) {
    foreach (int x in w threads) {
      int state = seed + (row0 + y) * w + x + 1;
      float acc = 0.0;
      for (int s = 0; s < ns; s++) {
        float ox = 0.5;
        float oy = 0.5;
        float oz = 0.0 - 2.0;
        float dx = (float_cast(x) + 0.5) / float_cast(w) - 0.5;
        float dy = (float_cast(row0 + y) + 0.5) / float_cast(h) - 0.5;
        float dz = 1.0;
        float inv = rsqrt(dx * dx + dy * dy + dz * dz);
        dx = dx * inv;
        dy = dy * inv;
        dz = dz * inv;
        float atten = 1.0;
        int depth = 0;
        int alive = 1;
        while (alive == 1) {
          float tbest = 100000000.0;
          int ibest = 0 - 1;
          for (int i = 0; i < no; i++) {
            float cx = spheres[i,0] - ox;
            float cy = spheres[i,1] - oy;
            float cz = spheres[i,2] - oz;
            float bq = cx * dx + cy * dy + cz * dz;
            float det = bq * bq - (cx * cx + cy * cy + cz * cz)
                + spheres[i,3] * spheres[i,3];
            if (det > 0.0) {
              float sq = sqrt(det);
              float tt = bq - sq;
              if (tt < 0.001) {
                tt = bq + sq;
              }
              if (tt > 0.001 && tt < tbest) {
                tbest = tt;
                ibest = i;
              }
            }
          }
          if (ibest < 0) {
            alive = 0;
          } else {
            acc = acc + atten * material[ibest,0];
            atten = atten * material[ibest,1];
            ox = ox + dx * tbest;
            oy = oy + dy * tbest;
            oz = oz + dz * tbest;
            state = state ^ (state << 13);
            state = state ^ (state >> 17);
            state = state ^ (state << 5);
            float r1 = float_cast(state & 65535) / 65536.0;
            state = state ^ (state << 13);
            state = state ^ (state >> 17);
            state = state ^ (state << 5);
            float r2 = float_cast(state & 65535) / 65536.0;
            dx = r1 * 2.0 - 1.0;
            dy = r2 * 2.0 - 1.0;
            dz = (r1 + r2) * 0.5 - 0.5 + 0.001;
            float n2 = rsqrt(dx * dx + dy * dy + dz * dz + 0.0001);
            dx = dx * n2;
            dy = dy * n2;
            dz = dz * n2;
            depth = depth + 1;
            if (depth >= 5) {
              alive = 0;
            }
            if (atten < 0.05) {
              alive = 0;
            }
          }
        }
      }
      image[y,x] = acc / float_cast(ns);
    }
  }
"""

_SIGNATURE = """void raytrace(int w, int h, int row0, int nrows,
    int ns, int no, int seed,
    float[no,4] spheres, float[no,2] material,
    float[nrows,w] image) {"""

KERNELS_PERFECT = "perfect " + _SIGNATURE + _TRACE_BODY + "}\n"

#: The "optimized" gpu version.  Stepwise refinement cannot remove the
#: algorithmic divergence (Sec. V-A: "to obtain better performance from the
#: raytracer would mean a different algorithm"), so the gpu version is the
#: same computation, merely restructured — its performance matches the
#: unoptimized one, reproducing Fig. 6's raytracer bars.
KERNELS_GPU = "gpu " + _SIGNATURE + _TRACE_BODY + "}\n"


def _i32(x: int) -> int:
    x &= 0xFFFFFFFF
    return x - 0x100000000 if x >= 0x80000000 else x


def _xorshift(state: int) -> int:
    state = _i32(state ^ _i32((state & 0xFFFFFFFF) << 13))
    state = _i32(state ^ ((state & 0xFFFFFFFF) >> 17))
    state = _i32(state ^ _i32((state & 0xFFFFFFFF) << 5))
    return state


def reference_trace(w: int, h: int, row0: int, nrows: int, ns: int,
                    seed: int, spheres: np.ndarray, material: np.ndarray
                    ) -> np.ndarray:
    """Python port of the MCPL kernel, operation for operation."""
    no = spheres.shape[0]
    image = np.zeros((nrows, w))
    for y in range(nrows):
        for x in range(w):
            state = seed + (row0 + y) * w + x + 1
            acc = 0.0
            for _s in range(ns):
                ox, oy, oz = 0.5, 0.5, -2.0
                dx = (float(x) + 0.5) / float(w) - 0.5
                dy = (float(row0 + y) + 0.5) / float(h) - 0.5
                dz = 1.0
                inv = 1.0 / np.sqrt(dx * dx + dy * dy + dz * dz)
                dx, dy, dz = dx * inv, dy * inv, dz * inv
                atten = 1.0
                depth = 0
                while True:
                    tbest = 100000000.0
                    ibest = -1
                    for i in range(no):
                        cx = spheres[i, 0] - ox
                        cy = spheres[i, 1] - oy
                        cz = spheres[i, 2] - oz
                        bq = cx * dx + cy * dy + cz * dz
                        det = bq * bq - (cx * cx + cy * cy + cz * cz) \
                            + spheres[i, 3] * spheres[i, 3]
                        if det > 0.0:
                            sq = float(np.sqrt(det))
                            tt = bq - sq
                            if tt < 0.001:
                                tt = bq + sq
                            if tt > 0.001 and tt < tbest:
                                tbest = tt
                                ibest = i
                    if ibest < 0:
                        break
                    acc += atten * material[ibest, 0]
                    atten *= material[ibest, 1]
                    ox += dx * tbest
                    oy += dy * tbest
                    oz += dz * tbest
                    state = _xorshift(state)
                    r1 = float(state & 65535) / 65536.0
                    state = _xorshift(state)
                    r2 = float(state & 65535) / 65536.0
                    dx = r1 * 2.0 - 1.0
                    dy = r2 * 2.0 - 1.0
                    dz = (r1 + r2) * 0.5 - 0.5 + 0.001
                    n2 = 1.0 / np.sqrt(dx * dx + dy * dy + dz * dz + 0.0001)
                    dx, dy, dz = dx * n2, dy * n2, dz * n2
                    depth += 1
                    if depth >= 5 or atten < 0.05:
                        break
            image[y, x] = acc / float(ns)
    return image


_FLOPS_PER_ROW_CACHE: Dict[Tuple[int, int, int, int], float] = {}


def _flops_per_row(width: int, height: int, samples: int, n_objects: int
                   ) -> float:
    """Per-row flop count from the MCL analysis of the perfect kernel."""
    key = (width, height, samples, n_objects)
    if key not in _FLOPS_PER_ROW_CACHE:
        from ..mcl.compiler.analysis import analyze_cost
        from ..mcl.mcpl.parser import parse_kernel
        ref_rows = 4
        analysis = analyze_cost(parse_kernel(KERNELS_PERFECT),
                                {"w": width, "h": height, "row0": 0,
                                 "nrows": ref_rows, "ns": samples,
                                 "no": n_objects, "seed": 1})
        _FLOPS_PER_ROW_CACHE[key] = analysis.flops / ref_rows
    return _FLOPS_PER_ROW_CACHE[key]


def cornell_scene() -> Tuple[np.ndarray, np.ndarray]:
    """The smallpt Cornell-box scene as 9 spheres.

    Returns (spheres [9,4]: x,y,z,radius; material [9,2]: emission,
    reflectivity), scaled into the unit box the camera looks at.
    """
    big = 1000.0
    spheres = np.array([
        [-big, 0.5, 0.5, big - 0.0],     # left wall
        [big + 1.0, 0.5, 0.5, big - 0.0],  # right wall
        [0.5, 0.5, big + 1.5, big - 0.0],  # back wall
        [0.5, 0.5, -big - 2.5, big - 0.0],  # front wall
        [0.5, -big, 0.5, big - 0.0],     # floor
        [0.5, big + 1.0, 0.5, big - 0.0],  # ceiling
        [0.3, 0.2, 0.8, 0.18],           # mirror-ish ball
        [0.7, 0.2, 0.6, 0.18],           # glass-ish ball
        [0.5, 0.95, 0.5, 0.12],          # light
    ])
    material = np.array([
        [0.0, 0.75], [0.0, 0.75], [0.0, 0.75], [0.0, 0.0],
        [0.0, 0.75], [0.0, 0.75],
        [0.0, 0.9], [0.0, 0.9],
        [12.0, 0.0],
    ])
    return spheres, material


@dataclass(frozen=True)
class RayTask:
    """Render the image rows [row0, row0 + nrows)."""

    row0: int
    nrows: int


class RaytracerApp(CashmereApplication):
    """Strip-decomposed path tracing over the D&C model."""

    name = "raytracer"
    KERNELS_UNOPTIMIZED = KERNELS_PERFECT
    KERNELS_OPTIMIZED = KERNELS_GPU
    #: path tracing is scalar and branchy on the host CPU: no SSE, frequent
    #: mispredictions — a single core sustains far below its streaming rate
    cpu_irregularity_penalty = 4.6

    def __init__(self, width: int = PAPER_WIDTH, height: int = PAPER_HEIGHT,
                 samples: int = PAPER_SAMPLES, leaf_rows: int = 64,
                 manycore_rows: Optional[int] = None, seed: int = 1,
                 scene: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 real_execution: bool = False):
        self.width = width
        self.height = height
        self.samples = samples
        self.leaf_rows = leaf_rows
        # Default: spawn at device-job granularity — every leaf remains
        # individually stealable, which the tail of a strong-scaled run
        # needs.  Pass a larger value to batch leaves per enableManyCore().
        self.manycore_rows = manycore_rows if manycore_rows is not None \
            else leaf_rows
        self.seed = seed
        self.spheres, self.material = scene if scene is not None \
            else cornell_scene()
        self.real_execution = real_execution
        #: assembled image in real mode
        self.image: Optional[np.ndarray] = \
            np.zeros((height, width)) if real_execution else None

    @property
    def n_objects(self) -> int:
        return self.spheres.shape[0]

    # -- structure ----------------------------------------------------------
    def root_task(self) -> RayTask:
        return RayTask(0, self.height)

    def is_leaf(self, task: RayTask) -> bool:
        return task.nrows <= self.leaf_rows

    def is_manycore(self, task: RayTask) -> bool:
        return task.nrows <= self.manycore_rows

    def divide(self, task: RayTask) -> List[RayTask]:
        half = task.nrows // 2
        return [RayTask(task.row0, half),
                RayTask(task.row0 + half, task.nrows - half)]

    def combine(self, task: RayTask, results: List[Any]) -> Any:
        return sum(r for r in results if r is not None)

    # -- costs ---------------------------------------------------------------
    def task_bytes(self, task: RayTask) -> float:
        # Scene description plus parameters: tiny (compute >> communication).
        return FLOAT_BYTES * (self.n_objects * 6) + 64.0

    def result_bytes(self, task: RayTask) -> float:
        return FLOAT_BYTES * task.nrows * self.width

    def leaf_flops(self, task: RayTask) -> float:
        # O(n * o * d * s) (Sec. IV).  Derived from the MCL static analysis
        # of the kernel so the CPU-leaf (Satin) timing, the device timing
        # and the reported application GFLOPS all count the same work.
        return task.nrows * _flops_per_row(self.width, self.height,
                                           self.samples, self.n_objects)

    # -- kernels ----------------------------------------------------------------
    def leaf_kernel_name(self, task: RayTask) -> str:
        return "raytrace"

    def leaf_kernel_params(self, task: RayTask) -> Dict[str, int]:
        return {"w": self.width, "h": self.height, "row0": task.row0,
                "nrows": task.nrows, "ns": self.samples,
                "no": self.n_objects, "seed": self.seed}

    def leaf_h2d_bytes(self, task: RayTask) -> float:
        return self.task_bytes(task)

    def leaf_d2h_bytes(self, task: RayTask) -> float:
        return self.result_bytes(task)

    # -- real execution -----------------------------------------------------------
    def leaf_result(self, task: RayTask) -> Any:
        if not self.real_execution:
            return 0.0
        block = reference_trace(self.width, self.height, task.row0,
                                task.nrows, self.samples, self.seed,
                                self.spheres, self.material)
        self.image[task.row0:task.row0 + task.nrows, :] = block
        return float(block.sum())


def paper_app() -> RaytracerApp:
    """Paper-scale configuration: 16384x8192, 500 samples."""
    return RaytracerApp()


def small_app(width: int = 32, height: int = 16, samples: int = 4,
             leaf_rows: int = 4) -> RaytracerApp:
    """Tiny configuration with real rendering for validation."""
    return RaytracerApp(width=width, height=height, samples=samples,
                        leaf_rows=leaf_rows, real_execution=True)
