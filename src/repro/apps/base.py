"""Shared scaffolding for the four evaluation applications.

Each application (Table II of the paper) provides:

* MCPL kernel sources — an *unoptimized* version on level ``perfect`` plus
  *optimized* versions on deeper levels (``gpu``, ``mic``),
* a divide-and-conquer driver with two granularities: the Satin baseline
  needs ~8 jobs per node (single-threaded CPU leaves), Cashmere needs far
  fewer (a leaf fills a whole device),
* a numpy reference implementation used to validate the MCPL kernels at
  small scale,
* the cost hooks the simulator charges (task/result/transfer bytes, flops).
"""

from __future__ import annotations

from typing import Any, Optional

from ..cluster.das4 import ClusterConfig, SimCluster
from ..core.runtime import CashmereConfig, CashmereRuntime
from ..mcl.kernels import KernelLibrary
from ..satin.job import DivideConquerApp
from ..satin.runtime import RuntimeConfig, SatinRuntime

__all__ = ["CashmereApplication", "run_satin", "run_cashmere"]

FLOAT_BYTES = 4.0


class CashmereApplication(DivideConquerApp):
    """Base class wiring an app's kernels into both runtimes."""

    #: MCPL sources: always-registered (unoptimized, level perfect)
    KERNELS_UNOPTIMIZED: str = ""
    #: extra sources registered when optimized=True (gpu/mic/... levels)
    KERNELS_OPTIMIZED: str = ""

    @classmethod
    def build_library(cls, optimized: bool = True) -> KernelLibrary:
        """Kernel library for this app (optionally with optimized versions)."""
        lib = KernelLibrary()
        lib.add_source(cls.KERNELS_UNOPTIMIZED)
        if optimized and cls.KERNELS_OPTIMIZED:
            lib.add_source(cls.KERNELS_OPTIMIZED)
        return lib


def run_satin(app: DivideConquerApp, cluster_config: ClusterConfig,
              root_task: Any, seed: int = 42,
              config: Optional[RuntimeConfig] = None,
              trace: bool = False, obs: bool = False,
              return_runtime: bool = False):
    """One Satin baseline run (CPU leaves, 8 workers per node).

    ``obs=True`` switches the cluster's event bus on without enabling the
    (heavier) Gantt trace recorder; ``trace=True`` implies both.
    """
    cluster = SimCluster(cluster_config, trace_enabled=trace, obs_enabled=obs)
    runtime = SatinRuntime(cluster, app, config or RuntimeConfig(seed=seed))
    result = runtime.run(root_task)
    if return_runtime:
        return result, runtime, cluster
    return result


def run_cashmere(app: CashmereApplication, cluster_config: ClusterConfig,
                 root_task: Any, optimized: bool = True, seed: int = 42,
                 config: Optional[CashmereConfig] = None,
                 trace: bool = False, obs: bool = False,
                 return_runtime: bool = False):
    """One Cashmere run with the app's kernel library.

    ``obs=True`` switches the cluster's event bus on without enabling the
    (heavier) Gantt trace recorder; ``trace=True`` implies both.
    """
    cluster = SimCluster(cluster_config, trace_enabled=trace, obs_enabled=obs)
    library = app.build_library(optimized=optimized)
    runtime = CashmereRuntime(cluster, app, library,
                              config or CashmereConfig(seed=seed))
    result = runtime.run(root_task)
    if return_runtime:
        return result, runtime, cluster
    return result
