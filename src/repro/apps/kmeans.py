"""K-means clustering — the iterative application with light communication
(Table II).

The paper clusters 268 million 4-feature points into 4096 clusters over 3
iterations.  Each iteration is a divide-and-conquer pass over point chunks:
a leaf assigns its points to the nearest centroid and produces partial sums
and counts (O(k·d) result bytes); the master combines partials into new
centroids and broadcasts them — O(k) communication per iteration against
O(n·k) computation, which is why k-means scales so well (Fig. 11).

Kernel versions:

* ``perfect`` — naive assignment, centroids re-read from global memory,
* ``gpu``    — centroids staged through local memory in 2048-cluster chunks
  (4096x4 floats exceed 48 KB of local memory), transposed point layout for
  coalescing,
* ``mic``    — core/thread chunking with the cluster loop vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .base import FLOAT_BYTES, CashmereApplication

__all__ = ["KMeansApp", "KMeansTask", "reference_kmeans_iteration",
           "paper_app", "small_app", "PAPER_POINTS", "PAPER_K", "PAPER_D",
           "PAPER_ITERATIONS"]

PAPER_POINTS = 268_000_000
PAPER_K = 4096
PAPER_D = 4
PAPER_ITERATIONS = 3

KERNELS_PERFECT = """
perfect void kmeans(int nk, int d, int np,
    float[np,d] points, float[nk,d] centroids,
    float[nk,d] sums, float[nk] counts, int[np] assign) {
  foreach (int i in np threads) {
    float best = 100000000000.0;
    int bi = 0;
    for (int cc = 0; cc < nk; cc++) {
      float dist = 0.0;
      for (int f = 0; f < d; f++) {
        float diff = points[i,f] - centroids[cc,f];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        bi = cc;
      }
    }
    assign[i] = bi;
  }
  for (int i = 0; i < np; i++) {
    int cc = assign[i];
    counts[cc] += 1.0;  // lint: ignore[MCL201] assign[i] holds a cluster id in [0, nk) by construction
    for (int f = 0; f < d; f++) {
      sums[cc,f] += points[i,f];  // lint: ignore[MCL201] cc = assign[i] is in [0, nk)
    }
  }
}
"""

KERNELS_GPU = """
gpu void kmeans(int nk, int d, int np,
    float[d,np] points, float[nk,d] centroids,
    float[nk,d] sums, float[nk] counts, int[np] assign) {
  foreach (int b in (np + 255) / 256 blocks) {
    local float[2048,4] lc;
    local float[256] lbest;  // lint: ignore[MCL501] tuned for 48 KB devices (GTX480/K20); the generic gpu level assumes 32 KB
    local int[256] lbi;
    foreach (int t in 256 threads) {
      lbest[t] = 100000000000.0;
      lbi[t] = 0;
    }
    for (int base = 0; base < nk; base += 2048) {
      foreach (int t in 256 threads) {
        for (int x = t; x < 2048 * d; x += 256) {
          if (base + x / d < nk) {
            lc[x / d, x % d] = centroids[base + x / d, x % d];  // lint: ignore[MCL101,MCL201] threads copy disjoint x strides; d == 4 at run time
          }
        }
      }
      foreach (int t in 256 threads) {
        int i = b * 256 + t;
        if (i < np) {
          private float[4] pt;
          for (int f = 0; f < d; f++) {
            pt[f] = points[f,i];  // lint: ignore[MCL201] d == 4 at run time (pt is sized for it)
          }
          for (int cc = 0; cc < 2048 && base + cc < nk; cc++) {
            float dist = 0.0;
            for (int f = 0; f < d; f++) {
              float diff = pt[f] - lc[cc,f];  // lint: ignore[MCL201] d == 4 at run time
              dist += diff * diff;
            }
            if (dist < lbest[t]) {
              lbest[t] = dist;
              lbi[t] = base + cc;
            }
          }
        }
      }
    }
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < np) {
        assign[i] = lbi[t];
      }
    }
  }
  for (int i = 0; i < np; i++) {
    int cc = assign[i];
    counts[cc] += 1.0;  // lint: ignore[MCL201] assign[i] holds a cluster id in [0, nk) by construction
    for (int f = 0; f < d; f++) {
      sums[cc,f] += points[f,i];  // lint: ignore[MCL201] cc = assign[i] is in [0, nk)
    }
  }
}
"""

KERNELS_MIC = """
mic void kmeans(int nk, int d, int np,
    float[np,d] points, float[nk,d] centroids,
    float[nk,d] sums, float[nk] counts, int[np] assign) {
  foreach (int ci in 60 cores) {
    foreach (int ti in 4 threads) {
      int w = ci * 4 + ti;
      int chunk = (np + 239) / 240;
      for (int i = w * chunk; i < (w + 1) * chunk && i < np; i += 1) {
        float best = 100000000000.0;
        int bi = 0;
        private float[4] pt;
        for (int f = 0; f < d; f++) {
          pt[f] = points[i,f];  // lint: ignore[MCL201] d == 4 at run time (pt is sized for it)
        }
        for (int base = 0; base < nk; base += 16) {
          foreach (int v in 16 vectors) {
            int cc = base + v;
            if (cc < nk) {
              float dist = 0.0;
              for (int f = 0; f < d; f++) {
                float diff = pt[f] - centroids[cc,f];  // lint: ignore[MCL201] d == 4 at run time
                dist += diff * diff;
              }
              if (dist < best) {
                best = dist;  // lint: ignore[MCL102] SIMD min-reduction; lanes resolve via vector blend
                bi = cc;  // lint: ignore[MCL102] SIMD min-reduction; lanes resolve via vector blend
              }
            }
          }
        }
        assign[i] = bi;
      }
    }
  }
  for (int i = 0; i < np; i++) {
    int cc = assign[i];
    counts[cc] += 1.0;  // lint: ignore[MCL201] assign[i] holds a cluster id in [0, nk) by construction
    for (int f = 0; f < d; f++) {
      sums[cc,f] += points[i,f];  // lint: ignore[MCL201] cc = assign[i] is in [0, nk)
    }
  }
}
"""


@dataclass(frozen=True)
class KMeansTask:
    """One iteration's work on the points in [lo, hi)."""

    iteration: int
    lo: int
    hi: int

    @property
    def count(self) -> int:
        return self.hi - self.lo


def reference_kmeans_iteration(points: np.ndarray, centroids: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One assignment pass: (assignments, per-cluster sums, counts)."""
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    assign = d2.argmin(axis=1)
    k = centroids.shape[0]
    sums = np.zeros_like(centroids)
    np.add.at(sums, assign, points)
    counts = np.bincount(assign, minlength=k).astype(float)
    return assign, sums, counts


class KMeansApp(CashmereApplication):
    """Iterative distributed k-means over the D&C model."""

    name = "kmeans"
    KERNELS_UNOPTIMIZED = KERNELS_PERFECT
    KERNELS_OPTIMIZED = KERNELS_GPU + KERNELS_MIC

    def __init__(self, n_points: int = PAPER_POINTS, k: int = PAPER_K,
                 d: int = PAPER_D, iterations: int = PAPER_ITERATIONS,
                 leaf_points: int = 1 << 18,
                 manycore_points: Optional[int] = None,
                 data: Optional[np.ndarray] = None,
                 centroids: Optional[np.ndarray] = None):
        self.n_points = n_points
        self.k = k
        self.d = d
        self.iterations = iterations
        self.leaf_points = leaf_points
        self.manycore_points = manycore_points if manycore_points is not None \
            else leaf_points
        #: optional real data: points [n, d]
        self.data = data
        #: current centroids (real mode); updated by program() per iteration
        self.centroids = centroids
        #: per-iteration centroid snapshots (real mode, for validation)
        self.centroid_history: List[np.ndarray] = []

    # -- iterative main program (Fig. 5 + Sec. V-B3) -------------------------
    def program(self, runtime, master, root_task):
        last = None
        for it in range(self.iterations):
            task = KMeansTask(it, 0, self.n_points)
            last = yield from runtime.run_subtask(master, task)
            if self.data is not None and last is not None:
                sums, counts = last
                new = np.where(counts[:, None] > 0,
                               sums / np.maximum(counts[:, None], 1.0),
                               self.centroids)
                self.centroids = new
                self.centroid_history.append(new.copy())
            # Distribute the k updated centroids to every node: the O(k)
            # per-iteration communication the paper highlights.
            yield from runtime.broadcast_from(
                master, nbytes=self.k * self.d * FLOAT_BYTES,
                tag="kmeans-centroids")
        return last

    # -- structure ------------------------------------------------------------
    def root_task(self) -> KMeansTask:
        return KMeansTask(0, 0, self.n_points)

    def is_leaf(self, task: KMeansTask) -> bool:
        return task.count <= self.leaf_points

    def is_manycore(self, task: KMeansTask) -> bool:
        return task.count <= self.manycore_points

    def divide(self, task: KMeansTask) -> List[KMeansTask]:
        mid = (task.lo + task.hi) // 2
        return [KMeansTask(task.iteration, task.lo, mid),
                KMeansTask(task.iteration, mid, task.hi)]

    def combine(self, task: KMeansTask, results: List[Any]) -> Any:
        real = [r for r in results if r is not None]
        if not real:
            return None
        sums = sum(r[0] for r in real)
        counts = sum(r[1] for r in real)
        return (sums, counts)

    # -- costs -------------------------------------------------------------------
    def task_bytes(self, task: KMeansTask) -> float:
        # The input points are pre-distributed across the cluster before the
        # timed section (on DAS-4 they are read from storage, not shipped
        # from the master) and stay node-resident between iterations
        # (Satin's shared-object-style data reuse).  A stolen task carries
        # only the current centroids — the O(k) communication of Sec. IV.
        return FLOAT_BYTES * self.k * self.d + 64.0

    def result_bytes(self, task: KMeansTask) -> float:
        # Partial sums and counts.
        return FLOAT_BYTES * (self.k * self.d + self.k)

    def leaf_flops(self, task: KMeansTask) -> float:
        # 3 flops per (point, cluster, feature): sub, mul, add.
        return 3.0 * task.count * self.k * self.d

    # -- kernels --------------------------------------------------------------
    def leaf_kernel_name(self, task: KMeansTask) -> str:
        return "kmeans"

    def leaf_kernel_params(self, task: KMeansTask) -> Dict[str, int]:
        return {"nk": self.k, "d": self.d, "np": task.count}

    def leaf_h2d_bytes(self, task: KMeansTask) -> float:
        return self.task_bytes(task)

    def leaf_d2h_bytes(self, task: KMeansTask) -> float:
        return self.result_bytes(task)

    # -- real execution ----------------------------------------------------------
    supports_leaf_batch = True

    def leaf_result(self, task: KMeansTask) -> Any:
        if self.data is None:
            return None
        chunk = self.data[task.lo:task.hi]
        _, sums, counts = reference_kmeans_iteration(chunk, self.centroids)
        return (sums, counts)

    def leaf_batch(self, tasks) -> List[Any]:
        """One vectorized assignment pass over every pending leaf's points.

        The O(n·k·d) distance/argmin work runs once over the concatenated
        chunks (assignments are row-independent, so concatenation changes
        nothing); the cheap per-task segment reductions then reproduce each
        ``leaf_result`` partial exactly.
        """
        if self.data is None:
            return [None] * len(tasks)
        chunks = [self.data[t.lo:t.hi] for t in tasks]
        points = np.concatenate(chunks)
        d2 = ((points[:, None, :] - self.centroids[None, :, :]) ** 2).sum(axis=2)
        assign = d2.argmin(axis=1)
        k = self.centroids.shape[0]
        out: List[Any] = []
        off = 0
        for t, chunk in zip(tasks, chunks):
            a = assign[off:off + t.count]
            sums = np.zeros_like(self.centroids)
            np.add.at(sums, a, chunk)
            counts = np.bincount(a, minlength=k).astype(float)
            out.append((sums, counts))
            off += t.count
        return out


def paper_app() -> KMeansApp:
    """Paper-scale configuration: 268M points, k=4096, d=4, 3 iterations."""
    return KMeansApp(leaf_points=1 << 20)


def small_app(n_points: int = 4096, k: int = 16, d: int = 4,
             iterations: int = 2, leaf_points: int = 512,
             seed: int = 0) -> KMeansApp:
    """Small configuration with real data for validation."""
    rng = np.random.default_rng(seed)
    data = rng.random((n_points, d))
    centroids = data[rng.choice(n_points, size=k, replace=False)].copy()
    return KMeansApp(n_points=n_points, k=k, d=d, iterations=iterations,
                     leaf_points=leaf_points, data=data, centroids=centroids)
