"""N-body simulation — the iterative application with intensive
communication (Table II).

The paper simulates 2 million bodies for 2 iterations.  Each iteration is
O(n^2) computation; afterwards every node needs all updated positions —
O(n) communication with an all-to-all pattern, which we model as the
master gathering leaf results (through the normal result path) and
broadcasting the new positions.

Kernel versions:

* ``perfect`` — naive all-pairs, every interaction re-reads global memory,
* ``gpu``    — the classic tiled formulation: 256-body tiles staged through
  local memory, own body state in registers,
* ``mic``    — core/thread chunking, vectorized inner interaction loop, own
  body in registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .base import FLOAT_BYTES, CashmereApplication

__all__ = ["NBodyApp", "NBodyTask", "reference_nbody_step",
           "paper_app", "small_app", "PAPER_BODIES", "PAPER_ITERATIONS"]

PAPER_BODIES = 2_000_000
PAPER_ITERATIONS = 2
SOFTENING = 0.01

KERNELS_PERFECT = """
perfect void nbody(int nl, int n, float dt,
    float[nl,4] mypos, float[n,4] allpos,
    float[nl,4] vel, float[nl,4] out) {
  foreach (int i in nl threads) {
    float ax = 0.0;
    float ay = 0.0;
    float az = 0.0;
    for (int j = 0; j < n; j++) {
      float dx = allpos[j,0] - mypos[i,0];
      float dy = allpos[j,1] - mypos[i,1];
      float dz = allpos[j,2] - mypos[i,2];
      float r2 = dx * dx + dy * dy + dz * dz + 0.01;
      float inv = rsqrt(r2);
      float inv3 = inv * inv * inv;
      float s = allpos[j,3] * inv3;
      ax += dx * s;
      ay += dy * s;
      az += dz * s;
    }
    vel[i,0] += ax * dt;
    vel[i,1] += ay * dt;
    vel[i,2] += az * dt;
    out[i,0] = mypos[i,0] + vel[i,0] * dt;
    out[i,1] = mypos[i,1] + vel[i,1] * dt;
    out[i,2] = mypos[i,2] + vel[i,2] * dt;
    out[i,3] = mypos[i,3];
  }
}
"""

KERNELS_GPU = """
gpu void nbody(int nl, int n, float dt,
    float[nl,4] mypos, float[n,4] allpos,
    float[nl,4] vel, float[nl,4] out) {
  foreach (int b in (nl + 255) / 256 blocks) {
    local float[256,4] tile;
    local float[256,4] acc;
    foreach (int t in 256 threads) {
      acc[t,0] = 0.0;
      acc[t,1] = 0.0;
      acc[t,2] = 0.0;
    }
    for (int jj = 0; jj < n; jj += 256) {
      foreach (int t in 256 threads) {
        for (int x = t; x < 1024; x += 256) {
          if (jj + x / 4 < n) {
            tile[x / 4, x % 4] = allpos[jj + x / 4, x % 4];
          }
        }
      }
      foreach (int t in 256 threads) {
        int i = b * 256 + t;
        if (i < nl) {
          private float[4] me;
          for (int f = 0; f < 4; f++) {
            me[f] = mypos[i,f];
          }
          float ax = 0.0;
          float ay = 0.0;
          float az = 0.0;
          for (int j = 0; j < 256; j++) {
            if (jj + j < n) {
              float dx = tile[j,0] - me[0];
              float dy = tile[j,1] - me[1];
              float dz = tile[j,2] - me[2];
              float r2 = dx * dx + dy * dy + dz * dz + 0.01;
              float inv = rsqrt(r2);
              float inv3 = inv * inv * inv;
              float s = tile[j,3] * inv3;
              ax += dx * s;
              ay += dy * s;
              az += dz * s;
            }
          }
          acc[t,0] += ax;
          acc[t,1] += ay;
          acc[t,2] += az;
        }
      }
    }
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < nl) {
        vel[i,0] += acc[t,0] * dt;
        vel[i,1] += acc[t,1] * dt;
        vel[i,2] += acc[t,2] * dt;
        out[i,0] = mypos[i,0] + vel[i,0] * dt;
        out[i,1] = mypos[i,1] + vel[i,1] * dt;
        out[i,2] = mypos[i,2] + vel[i,2] * dt;
        out[i,3] = mypos[i,3];
      }
    }
  }
}
"""

KERNELS_MIC = """
mic void nbody(int nl, int n, float dt,
    float[nl,4] mypos, float[n,4] allpos,
    float[nl,4] vel, float[nl,4] out) {
  foreach (int ci in 60 cores) {
    foreach (int ti in 4 threads) {
      int w = ci * 4 + ti;
      int chunk = (nl + 239) / 240;
      for (int i = w * chunk; i < (w + 1) * chunk && i < nl; i += 1) {
        private float[4] me;
        for (int f = 0; f < 4; f++) {
          me[f] = mypos[i,f];
        }
        float ax = 0.0;
        float ay = 0.0;
        float az = 0.0;
        for (int jj = 0; jj < n; jj += 16) {
          foreach (int v in 16 vectors) {
            int j = jj + v;
            if (j < n) {
              float dx = allpos[j,0] - me[0];
              float dy = allpos[j,1] - me[1];
              float dz = allpos[j,2] - me[2];
              float r2 = dx * dx + dy * dy + dz * dz + 0.01;
              float inv = rsqrt(r2);
              float inv3 = inv * inv * inv;
              float s = allpos[j,3] * inv3;
              ax += dx * s;  // lint: ignore[MCL102] SIMD sum-reduction across the 16 lanes
              ay += dy * s;  // lint: ignore[MCL102] SIMD sum-reduction across the 16 lanes
              az += dz * s;  // lint: ignore[MCL102] SIMD sum-reduction across the 16 lanes
            }
          }
        }
        vel[i,0] += ax * dt;
        vel[i,1] += ay * dt;
        vel[i,2] += az * dt;
        out[i,0] = mypos[i,0] + vel[i,0] * dt;
        out[i,1] = mypos[i,1] + vel[i,1] * dt;
        out[i,2] = mypos[i,2] + vel[i,2] * dt;
        out[i,3] = mypos[i,3];
      }
    }
  }
}
"""


@dataclass(frozen=True)
class NBodyTask:
    """One iteration's force computation for the bodies in [lo, hi)."""

    iteration: int
    lo: int
    hi: int

    @property
    def count(self) -> int:
        return self.hi - self.lo


#: flops per body-body interaction (3 subs, 6 mul/add for r2, rsqrt~2,
#: 2 for inv3, 1 scale, 6 for the accumulate) — the customary count is 20.
FLOPS_PER_INTERACTION = 20.0


def reference_nbody_step(pos: np.ndarray, vel: np.ndarray, dt: float
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """One full O(n^2) step: returns (new_pos, new_vel).

    ``pos`` is [n, 4] (x, y, z, mass); matches the kernels' math exactly.
    """
    delta = pos[None, :, :3] - pos[:, None, :3]        # [i, j, 3]
    r2 = (delta ** 2).sum(axis=2) + SOFTENING
    inv3 = r2 ** -1.5
    s = pos[None, :, 3] * inv3                          # [i, j]
    acc = (delta * s[:, :, None]).sum(axis=1)           # [i, 3]
    new_vel = vel.copy()
    new_vel[:, :3] += acc * dt
    new_pos = pos.copy()
    new_pos[:, :3] += new_vel[:, :3] * dt
    return new_pos, new_vel


class NBodyApp(CashmereApplication):
    """Iterative all-pairs n-body over the D&C model."""

    name = "nbody"
    KERNELS_UNOPTIMIZED = KERNELS_PERFECT
    KERNELS_OPTIMIZED = KERNELS_GPU + KERNELS_MIC

    def __init__(self, n_bodies: int = PAPER_BODIES,
                 iterations: int = PAPER_ITERATIONS, dt: float = 0.01,
                 leaf_bodies: int = 1 << 10,
                 manycore_bodies: Optional[int] = None,
                 data: Optional[Tuple[np.ndarray, np.ndarray]] = None):
        self.n_bodies = n_bodies
        self.iterations = iterations
        self.dt = dt
        self.leaf_bodies = leaf_bodies
        self.manycore_bodies = manycore_bodies if manycore_bodies is not None \
            else leaf_bodies
        #: optional real data: (pos [n,4], vel [n,4])
        self.data = data
        #: position snapshots per iteration (real mode)
        self.history: List[np.ndarray] = []

    # -- iterative main program -------------------------------------------------
    def program(self, runtime, master, root_task):
        last = None
        # Initial distribution of all body positions (all-to-all: every
        # node contributes its share, as on the real system).
        yield from runtime.allgather(self.n_bodies * 4 * FLOAT_BYTES,
                                     tag="nbody-positions")
        for it in range(self.iterations):
            self._prepare_iteration()
            task = NBodyTask(it, 0, self.n_bodies)
            last = yield from runtime.run_subtask(master, task)
            self._commit_iteration()
            if self.data is not None:
                self.history.append(self.data[0].copy())
            # All nodes need the updated positions: O(n) bytes exchanged
            # all-to-all (Sec. IV: "all-to-all for each compute node").
            yield from runtime.allgather(self.n_bodies * 4 * FLOAT_BYTES,
                                         tag="nbody-positions")
        return last

    # -- structure ------------------------------------------------------------
    def root_task(self) -> NBodyTask:
        return NBodyTask(0, 0, self.n_bodies)

    def is_leaf(self, task: NBodyTask) -> bool:
        return task.count <= self.leaf_bodies

    def is_manycore(self, task: NBodyTask) -> bool:
        return task.count <= self.manycore_bodies

    def divide(self, task: NBodyTask) -> List[NBodyTask]:
        mid = (task.lo + task.hi) // 2
        return [NBodyTask(task.iteration, task.lo, mid),
                NBodyTask(task.iteration, mid, task.hi)]

    def combine(self, task: NBodyTask, results: List[Any]) -> Any:
        return sum(r for r in results if r is not None)

    # -- costs -------------------------------------------------------------------
    def task_bytes(self, task: NBodyTask) -> float:
        # A stolen task carries its own bodies (pos + vel).  The *other*
        # positions are already node-resident: program() broadcasts all
        # positions before the first iteration and after each one — the
        # O(n) all-to-all communication of Sec. IV.
        return FLOAT_BYTES * task.count * 8

    def result_bytes(self, task: NBodyTask) -> float:
        return FLOAT_BYTES * task.count * 8  # new pos + vel

    def leaf_flops(self, task: NBodyTask) -> float:
        return FLOPS_PER_INTERACTION * task.count * self.n_bodies

    # -- kernels --------------------------------------------------------------
    def leaf_kernel_name(self, task: NBodyTask) -> str:
        return "nbody"

    def leaf_kernel_params(self, task: NBodyTask) -> Dict[str, Any]:
        return {"nl": task.count, "n": self.n_bodies, "dt": self.dt}

    def leaf_h2d_bytes(self, task: NBodyTask) -> float:
        return self.task_bytes(task)

    def leaf_d2h_bytes(self, task: NBodyTask) -> float:
        return self.result_bytes(task)

    # -- real execution ----------------------------------------------------------
    supports_leaf_batch = True

    def leaf_batch(self, tasks) -> List[Any]:
        """One vectorized all-pairs pass over every pending leaf's bodies.

        Concatenating the body ranges keeps each row's reduction identical
        to the scalar path (forces are computed row-independently), so the
        staged positions/velocities and per-task checksums match
        ``leaf_result`` exactly.
        """
        if self.data is None:
            return [0.0] * len(tasks)
        pos, vel = self.data
        idx = np.concatenate([np.arange(t.lo, t.hi) for t in tasks])
        delta = pos[None, :, :3] - pos[idx, None, :3]
        r2 = (delta ** 2).sum(axis=2) + SOFTENING
        s = pos[None, :, 3] * r2 ** -1.5
        acc = (delta * s[:, :, None]).sum(axis=1)
        out: List[Any] = []
        off = 0
        for t in tasks:
            lo, hi = t.lo, t.hi
            a = acc[off:off + t.count]
            self._staged_vel[lo:hi] = vel[lo:hi]
            self._staged_vel[lo:hi, :3] += a * self.dt
            self._staged_pos[lo:hi] = pos[lo:hi]
            self._staged_pos[lo:hi, :3] += self._staged_vel[lo:hi, :3] * self.dt
            out.append(float(a.sum()))
            off += t.count
        return out

    def leaf_result(self, task: NBodyTask) -> Any:
        if self.data is None:
            return 0.0
        pos, vel = self.data
        lo, hi = task.lo, task.hi
        delta = pos[None, :, :3] - pos[lo:hi, None, :3]
        r2 = (delta ** 2).sum(axis=2) + SOFTENING
        s = pos[None, :, 3] * r2 ** -1.5
        acc = (delta * s[:, :, None]).sum(axis=1)
        # Write into staging arrays so in-iteration updates do not corrupt
        # other leaves' inputs; program() commits them via _staged.
        self._staged_vel[lo:hi] = vel[lo:hi]
        self._staged_vel[lo:hi, :3] += acc * self.dt
        self._staged_pos[lo:hi] = pos[lo:hi]
        self._staged_pos[lo:hi, :3] += self._staged_vel[lo:hi, :3] * self.dt
        return float(acc.sum())

    def _prepare_iteration(self) -> None:
        if self.data is not None:
            self._staged_pos = np.empty_like(self.data[0])
            self._staged_vel = np.empty_like(self.data[1])

    def _commit_iteration(self) -> None:
        if self.data is not None:
            self.data[0][:] = self._staged_pos
            self.data[1][:] = self._staged_vel


def paper_app() -> NBodyApp:
    """Paper-scale configuration: 2M bodies, 2 iterations."""
    return NBodyApp()


def small_app(n_bodies: int = 512, iterations: int = 2,
             leaf_bodies: int = 64, seed: int = 0) -> NBodyApp:
    """Small configuration with real data for validation."""
    rng = np.random.default_rng(seed)
    pos = rng.random((n_bodies, 4))
    pos[:, 3] = rng.random(n_bodies) + 0.5  # masses
    vel = np.zeros((n_bodies, 4))
    return NBodyApp(n_bodies=n_bodies, iterations=iterations,
                    leaf_bodies=leaf_bodies, data=(pos, vel))
