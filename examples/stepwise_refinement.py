#!/usr/bin/env python
"""Stepwise refinement for performance: the MCL methodology (Sec. II-B).

We take the paper's matrix-multiplication kernel written for hardware
description `perfect` (Fig. 3), walk it down the hierarchy, and watch the
compiler's feedback become more detailed at each level — then show how the
optimized (tiled) version resolves the feedback and what that does to the
predicted kernel performance on every device of the DAS-4 (Fig. 6).

Run:  python examples/stepwise_refinement.py
"""

from repro.apps.matmul import KERNELS_GPU, KERNELS_MIC, KERNELS_PERFECT
from repro.devices import device_spec, kernel_gflops
from repro.mcl import (
    KernelLibrary,
    analyze,
    analyze_cost,
    generate_opencl,
    get_description,
    get_feedback,
    leaf_names,
    parse_kernel,
    translate,
)

PARAMS = {"n": 2048, "m": 2048, "p": 32768}  # one paper-scale leaf block


def step1_feedback_at_each_level():
    print("=" * 72)
    print("STEP 1 — compiler feedback for the naive kernel, per level")
    print("=" * 72)
    kernel = parse_kernel(KERNELS_PERFECT)
    for level in ("perfect", "accelerator", "gpu", "nvidia", "gtx480"):
        lowered = translate(kernel, level) if level != "perfect" else kernel
        info = analyze(lowered, get_description(level))
        items = get_feedback(info, PARAMS)
        print(f"\nlevel {level!r}:")
        if not items:
            print("   (no feedback — the compiler knows nothing to complain "
                  "about at this level)")
        for item in items:
            print(f"   {item}")


def step2_optimized_version_resolves_feedback():
    print()
    print("=" * 72)
    print("STEP 2 — the tiled gpu version resolves the gpu-level feedback")
    print("=" * 72)
    tiled = parse_kernel(KERNELS_GPU)
    items = get_feedback(analyze(tiled), PARAMS)
    print(f"\nfeedback on the hand-tiled gpu kernel: "
          f"{[i.code for i in items] or 'none — ready to translate down'}")
    analysis = analyze_cost(tiled, PARAMS)
    naive = analyze_cost(parse_kernel(KERNELS_PERFECT), PARAMS)
    print(f"global memory traffic: naive {naive.global_bytes / 1e9:8.1f} GB "
          f"-> tiled {analysis.global_bytes / 1e9:8.1f} GB "
          f"({naive.global_bytes / analysis.global_bytes:.0f}x reduction)")
    print(f"arithmetic intensity : naive {naive.arithmetic_intensity:5.2f} "
          f"-> tiled {analysis.arithmetic_intensity:5.2f} flops/byte")


def step3_generated_opencl():
    print()
    print("=" * 72)
    print("STEP 3 — generated OpenCL for the GTX480 (excerpt)")
    print("=" * 72)
    leaf = translate(parse_kernel(KERNELS_PERFECT), "gtx480")
    source = generate_opencl(leaf)
    print("\n".join(source.splitlines()[:12]))
    print("    ...")


def step4_fig6_style_table():
    print()
    print("=" * 72)
    print("STEP 4 — predicted kernel performance per device (cf. Fig. 6)")
    print("=" * 72)
    naive_lib = KernelLibrary()
    naive_lib.add_source(KERNELS_PERFECT)
    opt_lib = KernelLibrary()
    opt_lib.add_source(KERNELS_PERFECT)
    opt_lib.add_source(KERNELS_GPU)
    opt_lib.add_source(KERNELS_MIC)
    print(f"\n{'device':10s} {'version':8s} {'unoptimized':>12s} "
          f"{'optimized':>10s} {'speedup':>8s}")
    for device in leaf_names():
        spec = device_spec(device)
        naive = kernel_gflops(naive_lib.compile("matmul", device)
                              .profile(PARAMS), spec)
        compiled = opt_lib.compile("matmul", device)
        opt = kernel_gflops(compiled.profile(PARAMS), spec)
        print(f"{device:10s} {compiled.version_level:8s} "
              f"{naive:9.1f} GF {opt:7.1f} GF {opt / naive:7.1f}x")


def main():
    step1_feedback_at_each_level()
    step2_optimized_version_resolves_feedback()
    step3_generated_opencl()
    step4_fig6_style_table()


if __name__ == "__main__":
    main()
