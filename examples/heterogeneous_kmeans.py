#!/usr/bin/env python
"""Heterogeneous k-means: the paper's flagship scenario (Secs. III-B, V-C).

Two runs on a simulated mini-DAS-4 mixing a GTX480 node, a Titan node and a
node carrying both a K20 and a Xeon Phi (the node of Fig. 16):

1. a small run with *real data*, validated against a sequential numpy
   reference — stealing and heterogeneous scheduling never corrupt results;
2. a paper-scale modeled run showing the intra-node min-makespan scheduler
   splitting work between the K20 and the ~4x slower Phi, plus the
   Fig. 16-style Gantt chart.

Run:  python examples/heterogeneous_kmeans.py
"""

import numpy as np

from repro.apps.base import run_cashmere
from repro.apps.kmeans import KMeansApp, reference_kmeans_iteration, small_app
from repro.cluster import ClusterConfig
from repro.core import gantt_zoomed
from repro.core.runtime import CashmereConfig

MINI_DAS4 = ClusterConfig(
    name="mini-das4",
    nodes=[("gtx480",), ("titan",), ("k20", "xeon_phi")],
)


def sequential(points, centroids, iterations):
    c = centroids.copy()
    for _ in range(iterations):
        _, sums, counts = reference_kmeans_iteration(points, c)
        c = np.where(counts[:, None] > 0,
                     sums / np.maximum(counts[:, None], 1.0), c)
    return c


def validate_with_real_data():
    app = small_app(n_points=8192, k=16, d=4, iterations=3, leaf_points=512)
    points = app.data.copy()
    c0 = app.centroids.copy()
    run_cashmere(app, MINI_DAS4, app.root_task(),
                 config=CashmereConfig(seed=7))
    expected = sequential(points, c0, 3)
    np.testing.assert_allclose(app.centroids, expected, rtol=1e-10)
    print("1) distributed centroids match the sequential reference: OK\n")


def show_heterogeneous_schedule():
    # Paper-scale leaves (modeled time): the kernels are heavy enough that
    # keeping the slower Phi busy pays off (Sec. III-B's balancing example).
    app = KMeansApp(n_points=1 << 25, k=4096, d=4, iterations=3,
                    leaf_points=1 << 18)
    result, runtime, cluster = run_cashmere(
        app, MINI_DAS4, app.root_task(),
        config=CashmereConfig(seed=7), trace=True, return_runtime=True)

    print("2) paper-scale run — device workloads:")
    for node in cluster.nodes:
        for dev in node.devices:
            launches = dev.launch_counts.get("kmeans", 0)
            t = dev.measured_times.get("kmeans", 0.0)
            print(f"   {dev.lane:24s} {launches:4d} launches, "
                  f"measured kernel time {t * 1e3:7.2f} ms")
    shared = cluster.node(2)
    k20, phi = shared.devices
    ratio = phi.measured_times["kmeans"] / k20.measured_times["kmeans"]
    print(f"\n   K20 : Xeon Phi job split on {shared.name}: "
          f"{k20.launch_counts['kmeans']} : {phi.launch_counts['kmeans']} "
          f"(the Phi is {ratio:.1f}x slower)")

    span = cluster.trace.span()
    print("\n   Gantt chart of the shared node (mid-run zoom, cf. Fig. 16):")
    print(gantt_zoomed(cluster.trace, [shared.name],
                       t0=span * 0.4, t1=span * 0.6, width=90))
    stats = result.stats
    print(f"\n   makespan {stats.makespan_s:.3f} s simulated, "
          f"{stats.total_leaves} leaves, {stats.gflops():.0f} GFLOPS")


def main():
    validate_with_real_data()
    show_heterogeneous_schedule()


if __name__ == "__main__":
    main()
