#!/usr/bin/env python
"""Compound multi-kernel pipelines: a path tracer as a task graph.

Where the other examples express divide-and-conquer trees (spawn/sync),
this one builds a static DAG with ``repro.graph``: one scene upload feeds
every trace pass, passes chain through accumulation, and a tonemap +
gather stage produces the final image.  The same graph then runs under
the greedy device policy and the dependency-aware ``makespan-lookahead``
policy on a heterogeneous 3-node cluster, showing why seeing the whole
graph matters: the lookahead policy keeps chained passes on the device
that already holds their inputs.

Run:  python examples/pipeline_path_tracing.py
"""

from repro.cluster.das4 import ClusterConfig, SimCluster
from repro.graph import GraphConfig, GraphRuntime, path_tracer_graph


def run(policy: str):
    graph = path_tracer_graph(scale=0.5, tiles=4, passes=4)
    cluster = SimCluster(ClusterConfig(
        name="het-3", nodes=[("gtx480",), ("k20",), ("c2050",)]))
    result = GraphRuntime(cluster, graph,
                          GraphConfig(scheduler_policy=policy)).run()
    assert result.nodes_run == len(graph), "every node must run exactly once"
    return graph, result


def main():
    graph, greedy = run("makespan")
    _, lookahead = run("makespan-lookahead")

    print(f"pipeline: {graph.name} — {len(graph)} kernel nodes, "
          f"{len(graph.edges)} data edges, "
          f"{graph.total_flops / 1e9:.1f} GFLOP total")

    for label, result in [("greedy", greedy), ("lookahead", lookahead)]:
        lanes = sorted(set(result.placements.values()))
        print(f"  {label:9s}: makespan {result.makespan_s * 1e3:8.3f} ms   "
              f"{result.gflops:7.1f} GFLOPS   "
              f"cross-device {result.cross_device_bytes / 1e6:6.2f} MB   "
              f"devices used: {len(lanes)}")

    # Where did tile 0's accumulation chain land?  The lookahead policy
    # tends to keep each accumulate next to one of its producers.
    acc_nodes = [n for n, spec in graph.nodes.items()
                 if spec.kernel == "accumulate" and n.endswith("t0")]
    for label, result in [("greedy", greedy), ("lookahead", lookahead)]:
        chain = " -> ".join(result.placements[n] for n in acc_nodes)
        print(f"  accumulate chain, tile 0 ({label:9s}): {chain}")

    speedup = greedy.makespan_s / lookahead.makespan_s
    assert lookahead.makespan_s <= greedy.makespan_s, \
        "dependency-aware placement must not lose to greedy here"
    print(f"lookahead beats greedy: {speedup:.2f}x: OK")


if __name__ == "__main__":
    main()
