#!/usr/bin/env python
"""Fault tolerance: a node crashes mid-render, the image still completes.

Satin's fault tolerance (Sec. II-A) re-executes orphaned jobs when a node
disappears.  We render a small Cornell-box image on four simulated GTX480
nodes, crash one of them partway through, and verify the final image is
bit-identical to the fault-free reference.

Run:  python examples/fault_tolerant_raytracing.py
"""

import numpy as np

from repro.apps.raytracer import reference_trace, small_app
from repro.cluster import SimCluster, gtx480_cluster
from repro.core.runtime import CashmereConfig, CashmereRuntime


def main():
    app = small_app(width=64, height=64, samples=8, leaf_rows=2)
    cluster = SimCluster(gtx480_cluster(4))
    runtime = CashmereRuntime(cluster, app, app.build_library(True),
                              CashmereConfig(seed=11))

    # Crash node 2 shortly after the render starts (fault injection).
    runtime.crash_after(2, delay=5e-4)
    result = runtime.run(app.root_task())

    assert cluster.node(2).crashed
    print(f"node 2 crashed mid-run; "
          f"{result.stats.orphans_requeued} orphaned jobs re-queued")

    reference = reference_trace(64, 64, 0, 64, 8, app.seed,
                                app.spheres, app.material)
    np.testing.assert_allclose(app.image, reference)
    print("rendered image identical to the fault-free reference: OK")

    alive = [n.rank for n in cluster.alive_nodes()]
    leaves = result.stats.leaves_executed
    print(f"surviving nodes {alive} executed "
          f"{ {r: leaves.get(r, 0) for r in alive} } leaves")
    print(f"makespan {result.stats.makespan_s * 1e3:.2f} ms simulated")

    # Render a few rows as ASCII art, because why not.
    print("\nthe image (darker = less radiance):")
    shades = " .:-=+*#%@"
    img = app.image / max(app.image.max(), 1e-9)
    for row in img[::4]:
        print("   |" + "".join(shades[min(int(v * 9.99), 9)] for v in row[::2]) + "|")


if __name__ == "__main__":
    main()
