#!/usr/bin/env python
"""Quickstart: a complete Cashmere program in ~80 lines.

We write an MCPL kernel, wrap it in a divide-and-conquer application
(Fig. 5 of the paper: spawn / sync with a many-core stop condition), and
run it on a simulated 4-node GTX480 cluster.  The kernel really computes —
the distributed result is checked against plain numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.base import run_cashmere
from repro.cluster import gtx480_cluster
from repro.mcl import KernelLibrary
from repro.satin import DivideConquerApp

# 1. An MCPL kernel on hardware description `perfect` (Sec. II-B): SAXPY.
SAXPY = """
perfect void saxpy(int n, float alpha, float[n] x, float[n] y) {
  foreach (int i in n threads) {
    y[i] = alpha * x[i] + y[i];
  }
}
"""


# 2. The divide-and-conquer driver (the paper's Fig. 5 skeleton).
class Saxpy(DivideConquerApp):
    name = "saxpy"

    def __init__(self, x, y, alpha=2.0, leaf_size=1 << 14):
        self.x, self.y, self.alpha = x, y, alpha
        self.n = len(x)
        self.leaf_size = leaf_size

    # -- structure: divide until small enough for a leaf ------------------
    def is_leaf(self, task):
        lo, hi = task
        return hi - lo <= self.leaf_size

    def is_manycore(self, task):        # Cashmere.enableManyCore() threshold
        lo, hi = task
        return hi - lo <= self.leaf_size * 2

    def divide(self, task):
        lo, hi = task
        mid = (lo + hi) // 2
        return [(lo, mid), (mid, hi)]

    def combine(self, task, results):
        return sum(results)

    # -- what the simulator charges ----------------------------------------
    def task_bytes(self, task):
        lo, hi = task
        return 8.0 * (hi - lo)          # x and y chunks

    def result_bytes(self, task):
        lo, hi = task
        return 4.0 * (hi - lo)          # updated y chunk

    def leaf_flops(self, task):
        lo, hi = task
        return 2.0 * (hi - lo)          # multiply + add per element

    # -- MCL kernel hooks ----------------------------------------------------
    def leaf_kernel_name(self, task):
        return "saxpy"

    def leaf_kernel_params(self, task):
        lo, hi = task
        return {"n": hi - lo, "alpha": self.alpha}

    # -- the real computation (validates the distributed run) ----------------
    def leaf_result(self, task):
        lo, hi = task
        self.y[lo:hi] += self.alpha * self.x[lo:hi]
        return hi - lo


class SaxpyWithLibrary(Saxpy):
    """Attach the MCPL source so build_library() can compile it per device."""

    KERNELS_UNOPTIMIZED = SAXPY

    @classmethod
    def build_library(cls, optimized=True):
        lib = KernelLibrary()
        lib.add_source(SAXPY)
        return lib


def main():
    rng = np.random.default_rng(0)
    n = 1 << 18
    x = rng.random(n)
    y = rng.random(n)
    expected = y + 2.0 * x

    app = SaxpyWithLibrary(x, y)
    result = run_cashmere(app, gtx480_cluster(4), (0, n))

    np.testing.assert_allclose(y, expected, rtol=1e-12)
    stats = result.stats
    print(f"elements processed : {result.result}")
    print(f"leaves executed    : {stats.total_leaves}")
    print(f"jobs stolen        : {stats.steal_successes}")
    print(f"simulated makespan : {stats.makespan_s * 1e3:.2f} ms")
    print(f"achieved           : {stats.gflops():.2f} GFLOPS")
    print("distributed result matches numpy: OK")


if __name__ == "__main__":
    main()
