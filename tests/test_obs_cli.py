"""End-to-end checks for ``python -m repro trace`` and the exporters.

Locks down the acceptance criterion: the trace subcommand writes valid
Chrome-trace JSON containing steal, transfer and kernel events from at
least two nodes and two device types — and the bus being *disabled* keeps
runs observably identical (same statistics, zero events recorded).
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.obs.cli import TRACE_APPS, demo_cluster, run_traced_app


@pytest.fixture(scope="module")
def kmeans_trace(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace") / "t.json"
    events = out.with_suffix(".jsonl")
    rc = main(["trace", "kmeans", "--out", str(out),
               "--events", str(events), "--no-summary"])
    assert rc == 0
    return json.loads(out.read_text()), events.read_text()


def test_trace_cli_writes_valid_chrome_json(kmeans_trace):
    trace, _ = kmeans_trace
    assert "traceEvents" in trace
    events = [e for e in trace["traceEvents"] if e.get("ph") != "M"]
    assert events
    for e in events:
        assert e["ph"] in ("X", "i")
        assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0


def test_trace_cli_covers_required_kinds_nodes_devices(kmeans_trace):
    trace, _ = kmeans_trace
    events = [e for e in trace["traceEvents"] if e.get("ph") != "M"]
    cats = {e["cat"] for e in events}
    assert {"steal", "transfer", "kernel"} <= cats
    pids = {e["pid"] for e in events}
    assert len(pids) >= 2, "expected events from at least two nodes"
    devices = {e["args"].get("device") for e in events
               if e["cat"] == "kernel"}
    assert len(devices) >= 2, "expected kernels on at least two device types"


def test_trace_cli_event_stream_is_json_lines(kmeans_trace):
    _, stream = kmeans_trace
    lines = [ln for ln in stream.splitlines() if ln]
    records = [json.loads(ln) for ln in lines]
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert {r["kind"] for r in records} >= {"kernel", "spawn", "sched_decision"}


def test_all_trace_apps_are_runnable():
    # matmul is the fastest of the four; the others are covered by the
    # fixture and by the experiment suites.
    result, runtime, cluster = run_traced_app("matmul", seed=1)
    assert len(cluster.obs.events) > 0
    assert result.stats.total_jobs > 0
    assert set(TRACE_APPS) == {"kmeans", "matmul", "raytracer", "nbody"}
    with pytest.raises(KeyError):
        run_traced_app("no-such-app")


def test_disabled_bus_records_nothing_and_changes_nothing():
    from repro.apps.base import run_cashmere
    from repro.apps.matmul import MatmulApp

    def one(obs: bool):
        app = MatmulApp(n=4096, leaf_block=1024)
        return run_cashmere(app, demo_cluster(), app.root_task(),
                            seed=9, obs=obs, return_runtime=True)

    res_off, _, cluster_off = one(False)
    res_on, _, cluster_on = one(True)
    assert len(cluster_off.obs.events) == 0
    assert len(cluster_on.obs.events) > 0
    # The bus is pure observation: simulated outcomes are identical.
    assert res_off.stats.makespan_s == res_on.stats.makespan_s
    assert res_off.stats.total_jobs == res_on.stats.total_jobs
    assert res_off.stats.jobs_executed == res_on.stats.jobs_executed
    assert res_off.stats.steal_successes == res_on.stats.steal_successes


def test_emit_is_noop_while_disabled():
    from repro.obs.bus import EventBus
    bus = EventBus()
    assert bus.emit("kernel", node=0, lane="x", start=0.0, end=1.0) is None
    assert len(bus) == 0
    bus.enable()
    assert bus.emit("kernel", node=0, lane="x", start=0.0, end=1.0) is not None
    assert len(bus) == 1
