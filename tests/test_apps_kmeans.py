"""K-means application: kernel correctness and iterative distributed runs."""

import numpy as np

from repro.apps.base import run_cashmere, run_satin
from repro.apps.kmeans import (
    KERNELS_GPU,
    KERNELS_MIC,
    KERNELS_PERFECT,
    KMeansApp,
    reference_kmeans_iteration,
    small_app,
)
from repro.cluster import ClusterConfig, gtx480_cluster, satin_cpu_cluster
from repro.mcl import execute, parse_kernel


def make_data(n=64, k=8, d=4, seed=3):
    rng = np.random.default_rng(seed)
    points = rng.random((n, d))
    centroids = points[rng.choice(n, size=k, replace=False)].copy()
    return points, centroids


def run_kernel(src, points, centroids, transpose_points=False):
    n, d = points.shape
    k = centroids.shape[0]
    sums = np.zeros((k, d))
    counts = np.zeros(k)
    assign = np.zeros(n, dtype=np.int64)
    pts = np.ascontiguousarray(points.T) if transpose_points else points
    execute(parse_kernel(src), k, d, n, pts, centroids, sums, counts, assign)
    return assign, sums, counts


def test_perfect_kernel_matches_reference():
    points, centroids = make_data()
    assign, sums, counts = run_kernel(KERNELS_PERFECT, points, centroids)
    ref_assign, ref_sums, ref_counts = reference_kmeans_iteration(points, centroids)
    np.testing.assert_array_equal(assign, ref_assign)
    np.testing.assert_allclose(sums, ref_sums, rtol=1e-12)
    np.testing.assert_allclose(counts, ref_counts)


def test_gpu_kernel_matches_reference():
    points, centroids = make_data(n=300, k=20)
    assign, sums, counts = run_kernel(KERNELS_GPU, points, centroids,
                                      transpose_points=True)
    ref_assign, ref_sums, ref_counts = reference_kmeans_iteration(points, centroids)
    np.testing.assert_array_equal(assign, ref_assign)
    np.testing.assert_allclose(sums, ref_sums, rtol=1e-12)
    np.testing.assert_allclose(counts, ref_counts)


def test_mic_kernel_matches_reference():
    points, centroids = make_data(n=300, k=20)
    assign, sums, counts = run_kernel(KERNELS_MIC, points, centroids)
    ref_assign, _, ref_counts = reference_kmeans_iteration(points, centroids)
    np.testing.assert_array_equal(assign, ref_assign)
    np.testing.assert_allclose(counts, ref_counts)


def sequential_iterations(points, centroids, iterations):
    c = centroids.copy()
    history = []
    for _ in range(iterations):
        _, sums, counts = reference_kmeans_iteration(points, c)
        c = np.where(counts[:, None] > 0,
                     sums / np.maximum(counts[:, None], 1.0), c)
        history.append(c.copy())
    return history


def test_end_to_end_cashmere_iterations_match_sequential():
    app = small_app(n_points=2048, k=8, iterations=2, leaf_points=256)
    points = app.data.copy()
    c0 = app.centroids.copy()
    run_cashmere(app, gtx480_cluster(2), app.root_task())
    expected = sequential_iterations(points, c0, 2)
    assert len(app.centroid_history) == 2
    for got, want in zip(app.centroid_history, expected):
        np.testing.assert_allclose(got, want, rtol=1e-10)


def test_end_to_end_satin_iterations_match_sequential():
    app = small_app(n_points=2048, k=8, iterations=2, leaf_points=256)
    points = app.data.copy()
    c0 = app.centroids.copy()
    run_satin(app, satin_cpu_cluster(2), app.root_task())
    expected = sequential_iterations(points, c0, 2)
    for got, want in zip(app.centroid_history, expected):
        np.testing.assert_allclose(got, want, rtol=1e-10)


def test_end_to_end_heterogeneous():
    app = small_app(n_points=2048, k=8, iterations=1, leaf_points=256)
    points = app.data.copy()
    c0 = app.centroids.copy()
    config = ClusterConfig(name="het",
                           nodes=[("gtx480",), ("k20", "xeon_phi")])
    run_cashmere(app, config, app.root_task())
    expected = sequential_iterations(points, c0, 1)
    np.testing.assert_allclose(app.centroid_history[0], expected[0], rtol=1e-10)


def test_iteration_count_respected():
    app = small_app(n_points=1024, k=4, iterations=3, leaf_points=256)
    result = run_cashmere(app, gtx480_cluster(1), app.root_task())
    assert len(app.centroid_history) == 3
    # 3 iterations x 4 leaves each
    assert result.stats.total_leaves == 3 * (1024 // 256)


def test_communication_is_light():
    """O(k) steal/broadcast traffic against O(n*k) computation."""
    app = KMeansApp(n_points=1 << 22, k=64, d=4, iterations=2,
                    leaf_points=1 << 19)
    t = app.root_task()
    # Points are pre-distributed: a stolen task carries only centroids.
    assert app.task_bytes(t) == 4.0 * app.k * app.d + 64.0
    assert app.result_bytes(t) == 4.0 * (app.k * app.d + app.k)
    assert app.leaf_flops(app.divide(t)[0]) > 1e9


def test_library_levels():
    lib = KMeansApp.build_library(optimized=True)
    assert set(lib.versions("kmeans")) == {"perfect", "gpu", "mic"}
    assert lib.select_version("kmeans", "xeon_phi").level == "mic"
    assert lib.select_version("kmeans", "titan").level == "gpu"
