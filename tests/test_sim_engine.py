"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 5.0
    assert env.now == 5.0


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        v = yield env.timeout(1.0, value="hello")
        return v

    assert env.run(env.process(proc())) == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc("a", 3))
    env.process(proc("b", 1))
    env.process(proc("c", 2))
    env.run()
    assert order == [("b", 1), ("c", 2), ("a", 3)]


def test_same_time_events_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abcd":
        env.process(proc(name))
    env.run()
    assert order == list("abcd")


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(2)
        return 42

    def parent():
        result = yield env.process(child())
        return result + 1

    assert env.run(env.process(parent())) == 43


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    results = []

    def waiter():
        v = yield ev
        results.append((env.now, v))

    def trigger():
        yield env.timeout(4)
        ev.succeed("done")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert results == [(4, "done")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_to_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "handled"

    def trigger():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(p) == "handled"


def test_unhandled_process_exception_propagates_out_of_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("kernel failed")

    env.process(bad())
    with pytest.raises(RuntimeError, match="kernel failed"):
        env.run()


def test_allof_waits_for_all():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(5, value="y")
        yield t1 & t2
        return env.now

    assert env.run(env.process(proc())) == 5


def test_anyof_returns_at_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(5, value="y")
        yield t1 | t2
        return env.now

    assert env.run(env.process(proc())) == 1


def test_all_of_factory_with_many_events():
    env = Environment()

    def proc():
        events = [env.timeout(i) for i in range(1, 6)]
        yield env.all_of(events)
        return env.now

    assert env.run(env.process(proc())) == 5


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def attacker(p):
        yield env.timeout(3)
        p.interrupt("stop it")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert log == [(3, "stop it")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def victim():
        yield env.timeout(1)

    def attacker(p):
        yield env.timeout(5)
        p.interrupt()  # victim already finished

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert not v.is_alive


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=25)
    assert env.now == 25


def test_run_until_past_raises():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_run_until_event_deadlock_detected():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=ev)


def test_yield_non_event_raises_in_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")
