"""Tests for the ``python -m repro`` command-line interface."""



from repro.__main__ import main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "fig15" in out
    assert "table3" in out
    assert "ablation_scheduler" in out


def test_run_static_table(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Quartetto" in out
    assert "wall-clock" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_writes_artifacts(tmp_path, capsys):
    assert main(["run", "table2", "-o", str(tmp_path)]) == 0
    written = tmp_path / "table2.txt"
    assert written.exists()
    assert "iterative" in written.read_text()


def test_run_with_seed(capsys):
    # Seed is forwarded to seeded experiments and ignored by static tables.
    assert main(["run", "table1", "--seed", "5"]) == 0
    assert main(["run", "ablation_network", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "InfiniBand" in out
