"""Tests for the extracted fault-tolerance layer (repro.satin.ft)."""

import pytest

from repro.cluster import SimCluster, satin_cpu_cluster
from repro.satin import RuntimeConfig, SatinRuntime
from repro.satin.ft import FaultTolerance
from repro.satin.job import Job

from test_satin_runtime import TreeSum, expected_sum


def _runtime(nodes=3, **cfg):
    cluster = SimCluster(satin_cpu_cluster(nodes))
    runtime = SatinRuntime(cluster, TreeSum(leaf_size=16),
                           RuntimeConfig(seed=3, **cfg))
    return cluster, runtime


# --------------------------------------------------------------------------
# orphan table
# --------------------------------------------------------------------------


def test_orphan_table_record_and_take():
    cluster, runtime = _runtime()
    ft = runtime.ft
    assert isinstance(ft, FaultTolerance)
    job = Job(task=(0, 8), origin_rank=0, depth=1, manycore=False,
              done=cluster.env.event(), id=5)
    ft.record_stolen(job)
    assert ft.take_stolen(5) is job
    assert ft.take_stolen(5) is None  # claimed exactly once


def test_crash_fails_in_flight_requests_via_comm():
    """crash_node routes through CommLayer.fail_pending_to: nothing stays
    pending toward the dead rank (the membership-service model)."""
    cluster, runtime = _runtime()
    env = cluster.env
    log = {}

    def probe():
        # open a request to node 2, then crash it mid-flight
        channel = runtime.comm.channel(0)
        from repro.satin.comm import StealRequest
        reply = yield from channel.request(
            2, lambda rid: StealRequest(req_id=rid, thief=0), nbytes=64)
        log["reply"] = reply
        log["pending"] = runtime.comm.pending_to(2)

    def crasher():
        yield env.timeout(1e-4)
        runtime.crash_node(2)

    env.process(crasher())
    env.run(until=env.process(probe()))
    assert log == {"reply": None, "pending": 0}


def test_silent_crash_recovered_by_reply_timeout():
    """notify_comm=False models a failure the membership service misses: a
    thief's in-flight request is only rescued by the comm layer's
    reply-timeout + bounded-retry path, and the run still completes with
    the correct answer (orphans are re-executed)."""
    cluster = SimCluster(satin_cpu_cluster(4))
    runtime = SatinRuntime(
        cluster, TreeSum(leaf_size=16, flops_per_item=1e7),
        RuntimeConfig(seed=3, steal_reply_timeout_s=0.01,
                      steal_reply_retries=1))
    runtime.ft.crash_after(2, delay=0.02)
    # replace the normal crash with a silent one at the same instant
    orig = runtime.ft.crash_node
    runtime.ft.crash_node = lambda rank, notify_comm=True: orig(
        rank, notify_comm=False)
    result = runtime.run((0, 2048))
    assert result.result == expected_sum(2048)
    assert cluster.node(2).crashed
    # nothing left pending toward the dead node: timeouts drained it
    assert runtime.comm.pending_to(2) == 0


def test_crash_node_delegates_preserve_public_behavior():
    cluster = SimCluster(satin_cpu_cluster(3))
    runtime = SatinRuntime(
        cluster, TreeSum(leaf_size=16, flops_per_item=1e7),
        RuntimeConfig(seed=3))
    with pytest.raises(ValueError, match="master"):
        runtime.crash_node(0)
    runtime.ft.crash_after(1, delay=0.02)
    result = runtime.run((0, 2048))
    assert result.result == expected_sum(2048)
    assert cluster.node(1).crashed


# --------------------------------------------------------------------------
# idempotence of crash handling (regression: serve-layer churn and in-job
# fault injection may both report the same dead node)
# --------------------------------------------------------------------------


def test_crash_node_twice_is_idempotent():
    """A second crash_node for the same rank must not re-interrupt,
    double-requeue orphans, double-increment counters or re-emit the
    crash event."""
    cluster = SimCluster(satin_cpu_cluster(4), obs_enabled=True)
    runtime = SatinRuntime(
        cluster, TreeSum(leaf_size=16, flops_per_item=1e7),
        RuntimeConfig(seed=3))

    def double_crash():
        yield cluster.env.timeout(0.02)
        runtime.crash_node(2)
        runtime.crash_node(2)  # duplicate report (e.g. churn + membership)
        yield cluster.env.timeout(0.005)
        runtime.crash_node(2)  # late duplicate, after the notify latency

    cluster.env.process(double_crash())
    result = runtime.run((0, 2048))
    assert result.result == expected_sum(2048)
    crash_events = [ev for ev in cluster.obs.events if ev.kind == "crash"]
    assert len(crash_events) == 1
    # every orphan requeue is unique: no job id re-queued by the same crash
    requeues = [ev.fields["job_id"] for ev in cluster.obs.events
                if ev.kind == "orphan_requeue"]
    assert len(requeues) == len(set(requeues))
    assert result.stats.orphans_requeued == len(requeues)


def test_fail_pending_to_twice_is_idempotent():
    cluster, runtime = _runtime()
    env = cluster.env
    log = {}

    def probe():
        channel = runtime.comm.channel(0)
        from repro.satin.comm import StealRequest
        reply = yield from channel.request(
            2, lambda rid: StealRequest(req_id=rid, thief=0), nbytes=64)
        log["reply"] = reply

    def failer():
        yield env.timeout(1e-4)
        log["first"] = runtime.comm.fail_pending_to(2)
        log["second"] = runtime.comm.fail_pending_to(2)

    env.process(failer())
    env.run(until=env.process(probe()))
    assert log["first"] == 1
    assert log["second"] == 0  # second call finds nothing pending
    assert log["reply"] is None
    assert runtime.comm.pending_to(2) == 0


def test_silent_crash_then_membership_notification_drains_pending():
    """A silent crash followed by a later membership notification for the
    same rank must still fail the pending requests (regression: the old
    early-return skipped fail_pending_to entirely on the second call,
    leaving the request pending forever when no reply timeout is set)."""
    cluster, runtime = _runtime()  # no steal_reply_timeout_s configured
    env = cluster.env
    log = {}

    def probe():
        channel = runtime.comm.channel(0)
        from repro.satin.comm import StealRequest
        reply = yield from channel.request(
            2, lambda rid: StealRequest(req_id=rid, thief=0), nbytes=64)
        log["reply"] = reply

    def crasher():
        yield env.timeout(1e-4)
        runtime.ft.crash_node(2, notify_comm=False)   # partition: silent
        yield env.timeout(1e-3)
        runtime.ft.crash_node(2, notify_comm=True)    # membership catches up

    env.process(crasher())
    env.run(until=env.process(probe()))
    assert log == {"reply": None}
    assert runtime.comm.pending_to(2) == 0


def test_requests_opened_after_notification_fail_fast():
    """Once the membership service reported a rank dead, a *new* request to
    it resolves None immediately instead of hanging."""
    cluster, runtime = _runtime()
    env = cluster.env
    log = {}

    def probe():
        yield env.timeout(1e-3)
        runtime.comm.fail_pending_to(2)
        from repro.satin.comm import StealRequest
        channel = runtime.comm.channel(0)
        reply = yield from channel.request(
            2, lambda rid: StealRequest(req_id=rid, thief=0), nbytes=64)
        log["reply"] = reply
        log["pending"] = runtime.comm.pending_to(2)

    env.run(until=env.process(probe()))
    assert log == {"reply": None, "pending": 0}


def test_orphans_requeued_at_origin_after_notify_latency():
    cluster = SimCluster(satin_cpu_cluster(4))
    runtime = SatinRuntime(
        cluster, TreeSum(leaf_size=16, flops_per_item=1e7),
        RuntimeConfig(seed=3))
    runtime.crash_after(2, delay=0.02)
    result = runtime.run((0, 2048))
    assert result.stats.orphans_requeued > 0
    # the orphan table holds no entries stolen by the dead rank anymore
    assert all(job.thief_rank != 2
               for job in runtime.ft.stolen_out.values())
