"""Tests for the extracted fault-tolerance layer (repro.satin.ft)."""

import pytest

from repro.cluster import SimCluster, satin_cpu_cluster
from repro.satin import RuntimeConfig, SatinRuntime
from repro.satin.ft import FaultTolerance
from repro.satin.job import Job

from test_satin_runtime import TreeSum, expected_sum


def _runtime(nodes=3, **cfg):
    cluster = SimCluster(satin_cpu_cluster(nodes))
    runtime = SatinRuntime(cluster, TreeSum(leaf_size=16),
                           RuntimeConfig(seed=3, **cfg))
    return cluster, runtime


# --------------------------------------------------------------------------
# orphan table
# --------------------------------------------------------------------------


def test_orphan_table_record_and_take():
    cluster, runtime = _runtime()
    ft = runtime.ft
    assert isinstance(ft, FaultTolerance)
    job = Job(task=(0, 8), origin_rank=0, depth=1, manycore=False,
              done=cluster.env.event(), id=5)
    ft.record_stolen(job)
    assert ft.take_stolen(5) is job
    assert ft.take_stolen(5) is None  # claimed exactly once


def test_crash_fails_in_flight_requests_via_comm():
    """crash_node routes through CommLayer.fail_pending_to: nothing stays
    pending toward the dead rank (the membership-service model)."""
    cluster, runtime = _runtime()
    env = cluster.env
    log = {}

    def probe():
        # open a request to node 2, then crash it mid-flight
        channel = runtime.comm.channel(0)
        from repro.satin.comm import StealRequest
        reply = yield from channel.request(
            2, lambda rid: StealRequest(req_id=rid, thief=0), nbytes=64)
        log["reply"] = reply
        log["pending"] = runtime.comm.pending_to(2)

    def crasher():
        yield env.timeout(1e-4)
        runtime.crash_node(2)

    env.process(crasher())
    env.run(until=env.process(probe()))
    assert log == {"reply": None, "pending": 0}


def test_silent_crash_recovered_by_reply_timeout():
    """notify_comm=False models a failure the membership service misses: a
    thief's in-flight request is only rescued by the comm layer's
    reply-timeout + bounded-retry path, and the run still completes with
    the correct answer (orphans are re-executed)."""
    cluster = SimCluster(satin_cpu_cluster(4))
    runtime = SatinRuntime(
        cluster, TreeSum(leaf_size=16, flops_per_item=1e7),
        RuntimeConfig(seed=3, steal_reply_timeout_s=0.01,
                      steal_reply_retries=1))
    runtime.ft.crash_after(2, delay=0.02)
    # replace the normal crash with a silent one at the same instant
    orig = runtime.ft.crash_node
    runtime.ft.crash_node = lambda rank, notify_comm=True: orig(
        rank, notify_comm=False)
    result = runtime.run((0, 2048))
    assert result.result == expected_sum(2048)
    assert cluster.node(2).crashed
    # nothing left pending toward the dead node: timeouts drained it
    assert runtime.comm.pending_to(2) == 0


def test_crash_node_delegates_preserve_public_behavior():
    cluster = SimCluster(satin_cpu_cluster(3))
    runtime = SatinRuntime(
        cluster, TreeSum(leaf_size=16, flops_per_item=1e7),
        RuntimeConfig(seed=3))
    with pytest.raises(ValueError, match="master"):
        runtime.crash_node(0)
    runtime.ft.crash_after(1, delay=0.02)
    result = runtime.run((0, 2048))
    assert result.result == expected_sum(2048)
    assert cluster.node(1).crashed


def test_orphans_requeued_at_origin_after_notify_latency():
    cluster = SimCluster(satin_cpu_cluster(4))
    runtime = SatinRuntime(
        cluster, TreeSum(leaf_size=16, flops_per_item=1e7),
        RuntimeConfig(seed=3))
    runtime.crash_after(2, delay=0.02)
    result = runtime.run((0, 2048))
    assert result.stats.orphans_requeued > 0
    # the orphan table holds no entries stolen by the dead rank anymore
    assert all(job.thief_rank != 2
               for job in runtime.ft.stolen_out.values())
